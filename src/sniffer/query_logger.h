#ifndef CACHEPORTAL_SNIFFER_QUERY_LOGGER_H_
#define CACHEPORTAL_SNIFFER_QUERY_LOGGER_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "server/jdbc.h"
#include "sniffer/query_log.h"

namespace cacheportal::sniffer {

/// The paper's JDBC wrapper (Section 3.2): a Driver that delegates to the
/// actual driver while recording every query string with receive and
/// result-delivery timestamps. Because all database access paths (explicit
/// drivers, connection pools, data sources) bottom out in a Driver, this
/// single wrapper captures everything, independent of how queries are
/// generated — the non-invasive property the paper needs.
///
/// The inner driver's URL is carried inside the wrapper URL:
///   "jdbc:cacheportal-log:<inner-url>"
class QueryLoggingDriver : public server::Driver {
 public:
  /// Wraps `inner` (not owned). Records into `log` using `clock`.
  QueryLoggingDriver(server::Driver* inner, QueryLog* log,
                     const Clock* clock)
      : inner_(inner), log_(log), clock_(clock) {}

  bool AcceptsUrl(const std::string& url) const override;
  Result<std::unique_ptr<server::Connection>> Connect(
      const std::string& url) override;

  /// Wraps an already-open connection (used when the pool was created
  /// before CachePortal attached). `inner` is not owned.
  std::unique_ptr<server::Connection> WrapConnection(
      server::Connection* inner) const;

  static constexpr char kUrlPrefix[] = "jdbc:cacheportal-log:";

 private:
  server::Driver* inner_;
  QueryLog* log_;
  const Clock* clock_;
};

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_QUERY_LOGGER_H_
