#include "sniffer/request_log.h"

#include <cstddef>

namespace cacheportal::sniffer {

uint64_t RequestLog::Open(const std::string& servlet_name,
                          const std::string& request_string,
                          const std::string& cookie_string,
                          const std::string& post_string,
                          const std::string& page_key, Micros receive_time) {
  RequestLogEntry entry;
  entry.id = next_id_++;
  entry.servlet_name = servlet_name;
  entry.request_string = request_string;
  entry.cookie_string = cookie_string;
  entry.post_string = post_string;
  entry.page_key = page_key;
  entry.receive_time = receive_time;
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

void RequestLog::Close(uint64_t id, Micros delivery_time) {
  // IDs are dense and 1-based.
  if (id == 0 || id > entries_.size()) return;
  entries_[id - 1].delivery_time = delivery_time;
}

std::vector<RequestLogEntry> RequestLog::ReadSince(uint64_t after_id) const {
  std::vector<RequestLogEntry> out;
  if (after_id >= entries_.size()) return out;
  out.assign(entries_.begin() + static_cast<ptrdiff_t>(after_id),
             entries_.end());
  return out;
}

}  // namespace cacheportal::sniffer
