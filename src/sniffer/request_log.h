#ifndef CACHEPORTAL_SNIFFER_REQUEST_LOG_H_
#define CACHEPORTAL_SNIFFER_REQUEST_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "http/url.h"

namespace cacheportal::sniffer {

/// One record of the HTTP request/delivery log (Section 3.1): a unique
/// ID, the request string (page name + GET parameters), the cookie and
/// POST strings, and receive/delivery timestamps. `page_key` is the
/// page's cache identity after narrowing to the servlet's key parameters.
struct RequestLogEntry {
  uint64_t id = 0;
  std::string servlet_name;
  std::string request_string;  // "/path?get_params"
  std::string cookie_string;
  std::string post_string;
  std::string page_key;  // Canonical cache key (http::PageId::CacheKey()).
  Micros receive_time = 0;
  Micros delivery_time = -1;  // -1 while in flight.

  bool completed() const { return delivery_time >= 0; }
};

/// Append-only request log written by the request logger and consumed by
/// the request-to-query mapper.
class RequestLog {
 public:
  RequestLog() = default;

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Opens an entry at receive time; returns its ID.
  uint64_t Open(const std::string& servlet_name,
                const std::string& request_string,
                const std::string& cookie_string,
                const std::string& post_string, const std::string& page_key,
                Micros receive_time);

  /// Completes the entry with its delivery timestamp.
  void Close(uint64_t id, Micros delivery_time);

  const std::vector<RequestLogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// Entries with id > `after_id` (for incremental consumption).
  std::vector<RequestLogEntry> ReadSince(uint64_t after_id) const;

 private:
  std::vector<RequestLogEntry> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_REQUEST_LOG_H_
