#include "sniffer/request_logger.h"

#include <algorithm>

#include "common/strings.h"

namespace cacheportal::sniffer {

namespace {

/// Copies the entries of `from` named in `keys` into `to`; with no keys
/// configured, copies everything (conservative identity).
void CopyKeyParams(const http::ParamMap& from,
                   const std::vector<std::string>& keys, bool have_config,
                   http::ParamMap* to) {
  if (!have_config) {
    *to = from;
    return;
  }
  for (const std::string& key : keys) {
    auto it = from.find(key);
    if (it != from.end()) (*to)[key] = it->second;
  }
}

}  // namespace

void RequestLogger::RegisterServlet(const server::ServletConfig& config) {
  configs_[config.name] = config;
}

const server::ServletConfig* RequestLogger::FindConfig(
    const std::string& servlet_name) const {
  auto it = configs_.find(servlet_name);
  return it == configs_.end() ? nullptr : &it->second;
}

RequestLogger::ServletStats RequestLogger::StatsFor(
    const std::string& servlet_name) const {
  auto it = stats_.find(servlet_name);
  return it == stats_.end() ? ServletStats{} : it->second;
}

http::PageId RequestLogger::NarrowToKeys(
    const http::HttpRequest& request, const server::ServletConfig* config) {
  http::PageId id(request.host, request.path);
  bool have = config != nullptr;
  CopyKeyParams(request.get_params,
                have ? config->key_get_params : std::vector<std::string>{},
                have, &id.get_params());
  CopyKeyParams(request.post_params,
                have ? config->key_post_params : std::vector<std::string>{},
                have, &id.post_params());
  CopyKeyParams(request.cookies,
                have ? config->key_cookie_params : std::vector<std::string>{},
                have, &id.cookie_params());
  return id;
}

uint64_t RequestLogger::BeforeService(const std::string& servlet_name,
                                      const http::HttpRequest& request) {
  const server::ServletConfig* config = FindConfig(servlet_name);
  http::PageId page = NarrowToKeys(request, config);

  std::string request_string = request.path;
  std::string query = http::BuildQueryString(request.get_params);
  if (!query.empty()) request_string += "?" + query;

  return log_->Open(servlet_name, request_string,
                    http::BuildCookieString(request.cookies),
                    http::BuildQueryString(request.post_params),
                    page.CacheKey(), clock_->NowMicros());
}

void RequestLogger::AfterService(uint64_t token,
                                 const std::string& servlet_name,
                                 const http::HttpRequest& /*request*/,
                                 http::HttpResponse* response) {
  log_->Close(token, clock_->NowMicros());
  ServletStats& stats = stats_[servlet_name];
  ++stats.requests;

  // Decide cacheability of this servlet's pages.
  const server::ServletConfig* config = FindConfig(servlet_name);
  bool eligible = true;
  if (config != nullptr && config->temporal_sensitivity > 0 &&
      config->temporal_sensitivity < invalidation_cycle_) {
    eligible = false;  // More sensitive than CachePortal can accommodate.
  }
  if (eligible && oracle_ && !oracle_(servlet_name)) {
    eligible = false;
  }

  http::CacheControl cc = response->GetCacheControl();
  if (cc.no_store) {
    ++stats.kept_non_cacheable;
    return;  // Never override an explicit no-store.
  }
  bool marked_non_cacheable =
      cc.no_cache || (!cc.is_private && !cc.is_public &&
                      !cc.max_age_seconds.has_value());
  if (!marked_non_cacheable) {
    ++stats.already_cacheable;
    return;
  }

  if (!eligible) {
    ++stats.kept_non_cacheable;
    // Make the non-cacheable marking explicit.
    http::CacheControl out;
    out.no_cache = true;
    response->SetCacheControl(out);
    return;
  }
  ++stats.rewritten_cacheable;
  // The translation from Section 3.1: private, owner="cacheportal".
  http::CacheControl out;
  out.is_private = true;
  out.owner = http::kCachePortalOwner;
  out.max_age_seconds = cc.max_age_seconds;
  response->SetCacheControl(out);
}

}  // namespace cacheportal::sniffer
