#ifndef CACHEPORTAL_SNIFFER_REQUEST_LOGGER_H_
#define CACHEPORTAL_SNIFFER_REQUEST_LOGGER_H_

#include <functional>
#include <map>
#include <string>

#include "common/clock.h"
#include "server/app_server.h"
#include "server/servlet.h"
#include "sniffer/request_log.h"

namespace cacheportal::sniffer {

/// The sniffer's servlet wrapper (Section 3.1). It is installed as the
/// application server's interceptor and, per request:
///  - derives the page's cache identity by narrowing the request's GET,
///    POST, and cookie parameters to the servlet's registered key
///    parameters;
///  - writes the request log entry (receive/delivery timestamps);
///  - rewrites `Cache-Control: no-cache` (or a missing cache directive)
///    into `Cache-Control: private, owner="cacheportal"` so CachePortal-
///    compliant caches may cache the page — unless the servlet is more
///    temporally sensitive than the invalidation cycle or the invalidator
///    has flagged it non-cacheable.
class RequestLogger : public server::ServletInterceptor {
 public:
  /// Records into `log` with timestamps from `clock` (neither owned).
  RequestLogger(RequestLog* log, const Clock* clock)
      : log_(log), clock_(clock) {}

  /// Registers servlet metadata (key parameters, temporal sensitivity).
  /// Unregistered servlets fall back to using all parameters as keys.
  void RegisterServlet(const server::ServletConfig& config);

  /// Feedback hook from the invalidator: returns false when pages of this
  /// servlet must not be cached (Section 3.1 discusses this feedback; the
  /// default accepts everything).
  void SetCacheabilityOracle(std::function<bool(const std::string&)> oracle) {
    oracle_ = std::move(oracle);
  }

  /// The invalidation cycle CachePortal can sustain; servlets whose
  /// temporal sensitivity is tighter than this stay non-cacheable.
  void SetInvalidationCycle(Micros cycle) { invalidation_cycle_ = cycle; }

  /// Computes the cache identity of `request` under `config` (exposed for
  /// the caching proxy, which must use the same narrowing).
  static http::PageId NarrowToKeys(const http::HttpRequest& request,
                                   const server::ServletConfig* config);

  /// Config registered for `servlet_name`, or nullptr.
  const server::ServletConfig* FindConfig(
      const std::string& servlet_name) const;

  /// Per-servlet counters (Section 3.1's "associated statistics ... used
  /// in fine tuning the invalidation process").
  struct ServletStats {
    uint64_t requests = 0;
    uint64_t rewritten_cacheable = 0;   // no-cache -> private owner=....
    uint64_t kept_non_cacheable = 0;    // Sensitivity or policy veto.
    uint64_t already_cacheable = 0;     // Left untouched.
  };

  /// Statistics for `servlet_name` (zeros when never seen).
  ServletStats StatsFor(const std::string& servlet_name) const;

  // server::ServletInterceptor:
  uint64_t BeforeService(const std::string& servlet_name,
                         const http::HttpRequest& request) override;
  void AfterService(uint64_t token, const std::string& servlet_name,
                    const http::HttpRequest& request,
                    http::HttpResponse* response) override;

 private:
  RequestLog* log_;
  const Clock* clock_;
  std::map<std::string, server::ServletConfig> configs_;
  std::map<std::string, ServletStats> stats_;
  std::function<bool(const std::string&)> oracle_;
  Micros invalidation_cycle_ = kMicrosPerSecond;  // 1 s default.
};

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_REQUEST_LOGGER_H_
