#include "sql/analyzer.h"

#include <algorithm>

#include "sql/eval.h"

namespace cacheportal::sql {

namespace {

/// True if `expr` contains no column references or parameters, i.e. it can
/// be fully evaluated now.
bool IsConstant(const Expression& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef:
    case ExprKind::kParameter:
      return false;
    case ExprKind::kUnary:
      return IsConstant(static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return IsConstant(b.left()) && IsConstant(b.right());
    }
    case ExprKind::kFunctionCall:
      return false;  // Aggregates are never scalar-constant.
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      if (!IsConstant(in.operand())) return false;
      return std::all_of(in.items().begin(), in.items().end(),
                         [](const ExpressionPtr& e) { return IsConstant(*e); });
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      return IsConstant(bt.operand()) && IsConstant(bt.low()) &&
             IsConstant(bt.high());
    }
    case ExprKind::kIsNull:
      return IsConstant(static_cast<const IsNullExpr&>(expr).operand());
  }
  return false;
}

/// Folds a constant expression to a literal node; on evaluation error
/// (type mismatch in dead code, etc.) returns the original clone so the
/// residual keeps the information.
ExpressionPtr FoldToLiteral(const Expression& expr) {
  EmptyResolver no_columns;
  Result<Value> v = EvalExpr(expr, no_columns);
  if (!v.ok()) return expr.Clone();
  return std::make_unique<LiteralExpr>(std::move(v).value());
}

/// Classification of a folded subtree for the logical-identity rules.
enum class TriState { kTrue, kFalse, kNull, kOther };

TriState Classify(const Expression& expr) {
  if (expr.kind() != ExprKind::kLiteral) return TriState::kOther;
  const Value& v = static_cast<const LiteralExpr&>(expr).value();
  if (v.is_null()) return TriState::kNull;
  if (v.is_bool()) return v.AsBool() ? TriState::kTrue : TriState::kFalse;
  return TriState::kOther;
}

ExpressionPtr MakeBool(bool b) {
  return std::make_unique<LiteralExpr>(Value::Bool(b));
}
ExpressionPtr MakeNull() {
  return std::make_unique<LiteralExpr>(Value::Null());
}

/// Bottom-up simplification; returns a (possibly literal) expression.
ExpressionPtr SimplifyRec(const Expression& expr) {
  if (IsConstant(expr)) return FoldToLiteral(expr);

  switch (expr.kind()) {
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      ExpressionPtr inner = SimplifyRec(u.operand());
      if (u.op() == UnaryOp::kNot) {
        switch (Classify(*inner)) {
          case TriState::kTrue:
            return MakeBool(false);
          case TriState::kFalse:
            return MakeBool(true);
          case TriState::kNull:
            return MakeNull();
          case TriState::kOther:
            break;
        }
      }
      auto out = std::make_unique<UnaryExpr>(u.op(), std::move(inner));
      if (IsConstant(*out)) return FoldToLiteral(*out);
      return out;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      ExpressionPtr left = SimplifyRec(b.left());
      ExpressionPtr right = SimplifyRec(b.right());
      if (b.op() == BinaryOp::kAnd) {
        TriState lt = Classify(*left), rt = Classify(*right);
        if (lt == TriState::kFalse || rt == TriState::kFalse) {
          return MakeBool(false);
        }
        if (lt == TriState::kTrue) return right;
        if (rt == TriState::kTrue) return left;
        // NULL AND residual stays residual (could still fold to false).
        if (lt == TriState::kNull && rt == TriState::kNull) return MakeNull();
      } else if (b.op() == BinaryOp::kOr) {
        TriState lt = Classify(*left), rt = Classify(*right);
        if (lt == TriState::kTrue || rt == TriState::kTrue) {
          return MakeBool(true);
        }
        if (lt == TriState::kFalse) return right;
        if (rt == TriState::kFalse) return left;
        if (lt == TriState::kNull && rt == TriState::kNull) return MakeNull();
      }
      auto out = std::make_unique<BinaryExpr>(b.op(), std::move(left),
                                              std::move(right));
      if (IsConstant(*out)) return FoldToLiteral(*out);
      return out;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      ExpressionPtr operand = SimplifyRec(in.operand());
      std::vector<ExpressionPtr> items;
      items.reserve(in.items().size());
      for (const auto& item : in.items()) items.push_back(SimplifyRec(*item));
      auto out = std::make_unique<InListExpr>(std::move(operand),
                                              std::move(items), in.negated());
      if (IsConstant(*out)) return FoldToLiteral(*out);
      return out;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      auto out = std::make_unique<BetweenExpr>(
          SimplifyRec(bt.operand()), SimplifyRec(bt.low()),
          SimplifyRec(bt.high()), bt.negated());
      if (IsConstant(*out)) return FoldToLiteral(*out);
      return out;
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      auto out = std::make_unique<IsNullExpr>(SimplifyRec(n.operand()),
                                              n.negated());
      if (IsConstant(*out)) return FoldToLiteral(*out);
      return out;
    }
    default:
      return expr.Clone();
  }
}

void CollectTablesRec(const Expression& expr,
                      std::vector<std::string>* tables,
                      std::set<std::string>* seen) {
  for (const ColumnRefExpr* ref : CollectColumnRefs(expr)) {
    if (seen->insert(ref->table()).second) tables->push_back(ref->table());
  }
}

void CollectRefsRec(const Expression& expr,
                    std::vector<const ColumnRefExpr*>* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return;
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(&expr));
      return;
    case ExprKind::kUnary:
      CollectRefsRec(static_cast<const UnaryExpr&>(expr).operand(), out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectRefsRec(b.left(), out);
      CollectRefsRec(b.right(), out);
      return;
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(expr);
      for (const auto& a : f.args()) CollectRefsRec(*a, out);
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      CollectRefsRec(in.operand(), out);
      for (const auto& item : in.items()) CollectRefsRec(*item, out);
      return;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      CollectRefsRec(bt.operand(), out);
      CollectRefsRec(bt.low(), out);
      CollectRefsRec(bt.high(), out);
      return;
    }
    case ExprKind::kIsNull:
      CollectRefsRec(static_cast<const IsNullExpr&>(expr).operand(), out);
      return;
  }
}

/// Generic rewriting walk: applies `leaf` to column refs and parameters,
/// rebuilding interior nodes.
using LeafRewriter = std::function<ExpressionPtr(const Expression&)>;

ExpressionPtr RewriteRec(const Expression& expr, const LeafRewriter& leaf) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return expr.Clone();
    case ExprKind::kColumnRef:
    case ExprKind::kParameter:
      return leaf(expr);
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      return std::make_unique<UnaryExpr>(u.op(), RewriteRec(u.operand(), leaf));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return std::make_unique<BinaryExpr>(b.op(), RewriteRec(b.left(), leaf),
                                          RewriteRec(b.right(), leaf));
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(expr);
      std::vector<ExpressionPtr> args;
      args.reserve(f.args().size());
      for (const auto& a : f.args()) args.push_back(RewriteRec(*a, leaf));
      return std::make_unique<FunctionCallExpr>(f.name(), std::move(args),
                                                f.star());
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      std::vector<ExpressionPtr> items;
      items.reserve(in.items().size());
      for (const auto& item : in.items()) {
        items.push_back(RewriteRec(*item, leaf));
      }
      return std::make_unique<InListExpr>(RewriteRec(in.operand(), leaf),
                                          std::move(items), in.negated());
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      return std::make_unique<BetweenExpr>(
          RewriteRec(bt.operand(), leaf), RewriteRec(bt.low(), leaf),
          RewriteRec(bt.high(), leaf), bt.negated());
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      return std::make_unique<IsNullExpr>(RewriteRec(n.operand(), leaf),
                                          n.negated());
    }
  }
  return expr.Clone();
}

}  // namespace

ExpressionPtr SubstituteColumns(const Expression& expr,
                                const ColumnSubstituter& sub) {
  return RewriteRec(expr, [&sub](const Expression& leaf) -> ExpressionPtr {
    if (leaf.kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(leaf);
      std::optional<Value> v = sub(ref.table(), ref.column());
      if (v.has_value()) return std::make_unique<LiteralExpr>(std::move(*v));
    }
    return leaf.Clone();
  });
}

Result<ExpressionPtr> BindParameters(const Expression& expr,
                                     const std::vector<Value>& bindings) {
  Status error = Status::OK();
  ExpressionPtr out =
      RewriteRec(expr, [&](const Expression& leaf) -> ExpressionPtr {
        if (leaf.kind() == ExprKind::kParameter) {
          int ordinal = static_cast<const ParameterExpr&>(leaf).ordinal();
          if (ordinal < 1 || static_cast<size_t>(ordinal) > bindings.size()) {
            if (error.ok()) {
              error = Status::InvalidArgument(
                  "parameter ordinal out of range of bindings");
            }
            return leaf.Clone();
          }
          return std::make_unique<LiteralExpr>(bindings[ordinal - 1]);
        }
        return leaf.Clone();
      });
  if (!error.ok()) return error;
  return out;
}

FoldResult FoldConstants(const Expression& expr) {
  ExpressionPtr simplified = SimplifyRec(expr);
  FoldResult result;
  switch (Classify(*simplified)) {
    case TriState::kTrue:
      result.outcome = FoldOutcome::kTrue;
      return result;
    case TriState::kFalse:
      result.outcome = FoldOutcome::kFalse;
      return result;
    case TriState::kNull:
      result.outcome = FoldOutcome::kNull;
      return result;
    case TriState::kOther:
      result.outcome = FoldOutcome::kResidual;
      result.residual = std::move(simplified);
      return result;
  }
  return result;
}

std::vector<std::string> CollectTables(const Expression& expr) {
  std::vector<std::string> tables;
  std::set<std::string> seen;
  CollectTablesRec(expr, &tables, &seen);
  return tables;
}

std::vector<const ColumnRefExpr*> CollectColumnRefs(const Expression& expr) {
  std::vector<const ColumnRefExpr*> refs;
  CollectRefsRec(expr, &refs);
  return refs;
}

bool ContainsParameters(const Expression& expr) {
  switch (expr.kind()) {
    case ExprKind::kParameter:
      return true;
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kUnary:
      return ContainsParameters(
          static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return ContainsParameters(b.left()) || ContainsParameters(b.right());
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(expr);
      for (const auto& a : f.args()) {
        if (ContainsParameters(*a)) return true;
      }
      return false;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      if (ContainsParameters(in.operand())) return true;
      for (const auto& item : in.items()) {
        if (ContainsParameters(*item)) return true;
      }
      return false;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      return ContainsParameters(bt.operand()) ||
             ContainsParameters(bt.low()) || ContainsParameters(bt.high());
    }
    case ExprKind::kIsNull:
      return ContainsParameters(
          static_cast<const IsNullExpr&>(expr).operand());
  }
  return false;
}

std::vector<const Expression*> SplitConjuncts(const Expression& expr) {
  std::vector<const Expression*> conjuncts;
  if (expr.kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(expr);
    if (b.op() == BinaryOp::kAnd) {
      auto left = SplitConjuncts(b.left());
      auto right = SplitConjuncts(b.right());
      conjuncts.insert(conjuncts.end(), left.begin(), left.end());
      conjuncts.insert(conjuncts.end(), right.begin(), right.end());
      return conjuncts;
    }
  }
  conjuncts.push_back(&expr);
  return conjuncts;
}

namespace {

/// True if any node of `expr` is an aggregate function call.
bool ContainsAggregate(const Expression& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kParameter:
      return false;
    case ExprKind::kUnary:
      return ContainsAggregate(static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return ContainsAggregate(b.left()) || ContainsAggregate(b.right());
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (call.IsAggregate()) return true;
      for (const ExpressionPtr& arg : call.args()) {
        if (ContainsAggregate(*arg)) return true;
      }
      return false;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      if (ContainsAggregate(in.operand())) return true;
      for (const ExpressionPtr& item : in.items()) {
        if (ContainsAggregate(*item)) return true;
      }
      return false;
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      return ContainsAggregate(between.operand()) ||
             ContainsAggregate(between.low()) ||
             ContainsAggregate(between.high());
    }
    case ExprKind::kIsNull:
      return ContainsAggregate(static_cast<const IsNullExpr&>(expr).operand());
  }
  return false;
}

/// Walks a WHERE clause checking every node is row-decidable under 3VL.
/// Returns the first blocker found ("" when clean). The disallowed forms
/// are exactly the ones whose 3VL outcome the exact strategy's
/// row-substitution evaluation cannot be trusted to mirror the executor
/// on (LIKE), or the paper's single-table algorithm excludes outright
/// (NULL comparands, function calls standing in for subqueries).
std::string WhereBlocker(const Expression& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      if (static_cast<const LiteralExpr&>(expr).value().is_null()) {
        return "NULL comparand";
      }
      return "";
    case ExprKind::kColumnRef:
    case ExprKind::kParameter:
      return "";
    case ExprKind::kUnary:
      return WhereBlocker(static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (b.op() == BinaryOp::kLike) return "LIKE pattern";
      std::string blocker = WhereBlocker(b.left());
      if (!blocker.empty()) return blocker;
      return WhereBlocker(b.right());
    }
    case ExprKind::kFunctionCall:
      return static_cast<const FunctionCallExpr&>(expr).IsAggregate()
                 ? "aggregation"
                 : "unsupported function call";
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      std::string blocker = WhereBlocker(in.operand());
      if (!blocker.empty()) return blocker;
      for (const ExpressionPtr& item : in.items()) {
        blocker = WhereBlocker(*item);
        if (!blocker.empty()) return blocker;
      }
      return "";
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      std::string blocker = WhereBlocker(between.operand());
      if (!blocker.empty()) return blocker;
      blocker = WhereBlocker(between.low());
      if (!blocker.empty()) return blocker;
      return WhereBlocker(between.high());
    }
    case ExprKind::kIsNull:
      // IS [NOT] NULL is the sanctioned way to mention NULL: its outcome
      // is two-valued and row-decidable.
      return WhereBlocker(static_cast<const IsNullExpr&>(expr).operand());
  }
  return "";
}

}  // namespace

TemplateShape ClassifyTemplateShape(const SelectStatement& statement) {
  TemplateShape shape;

  // FROM shape. A table aliased twice is a self-join even though the
  // aliases differ — what matters is one relation's delta reaching the
  // statement through two scans.
  shape.single_table = statement.from.size() == 1;
  for (size_t i = 0; i < statement.from.size() && !shape.self_join; ++i) {
    for (size_t j = i + 1; j < statement.from.size(); ++j) {
      if (statement.from[i].table.size() == statement.from[j].table.size() &&
          std::equal(statement.from[i].table.begin(),
                     statement.from[i].table.end(),
                     statement.from[j].table.begin(),
                     [](char a, char b) {
                       return std::tolower(static_cast<unsigned char>(a)) ==
                              std::tolower(static_cast<unsigned char>(b));
                     })) {
        shape.self_join = true;
        break;
      }
    }
  }

  // Aggregation anywhere: select items, GROUP BY / HAVING presence, or an
  // aggregate call inside WHERE (the parser admits it; the executor does
  // not evaluate it per row).
  shape.has_aggregation = !statement.group_by.empty() ||
                          statement.having != nullptr;
  for (const SelectItem& item : statement.items) {
    if (!shape.has_aggregation && item.expr != nullptr &&
        ContainsAggregate(*item.expr)) {
      shape.has_aggregation = true;
    }
  }
  if (!shape.has_aggregation && statement.where != nullptr &&
      ContainsAggregate(*statement.where)) {
    shape.has_aggregation = true;
  }

  std::string where_blocker;
  if (statement.where != nullptr) {
    where_blocker = WhereBlocker(*statement.where);
  }
  shape.where_row_decidable = where_blocker.empty();

  // First disqualifier wins, in severity order: the census counts these
  // strings, so they must be deterministic per template.
  if (shape.self_join) {
    shape.blocker = "self-join";
  } else if (!shape.single_table) {
    shape.blocker = "multi-table FROM";
  } else if (shape.has_aggregation) {
    shape.blocker = "aggregation";
  } else if (shape.has_subquery) {
    shape.blocker = "subquery";
  } else if (!where_blocker.empty()) {
    shape.blocker = where_blocker;
  }
  return shape;
}

ExpressionPtr QualifyColumns(
    const Expression& expr,
    const std::function<std::optional<std::string>(const std::string&)>&
        owner_of) {
  return RewriteRec(expr, [&](const Expression& leaf) -> ExpressionPtr {
    if (leaf.kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(leaf);
      if (ref.table().empty()) {
        std::optional<std::string> owner = owner_of(ref.column());
        if (owner.has_value()) {
          return std::make_unique<ColumnRefExpr>(*owner, ref.column());
        }
      }
    }
    return leaf.Clone();
  });
}

}  // namespace cacheportal::sql
