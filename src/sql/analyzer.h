#ifndef CACHEPORTAL_SQL_ANALYZER_H_
#define CACHEPORTAL_SQL_ANALYZER_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace cacheportal::sql {

/// Maps a column reference to a substitution value. Returning std::nullopt
/// leaves the reference in place.
using ColumnSubstituter = std::function<std::optional<Value>(
    const std::string& table, const std::string& column)>;

/// Returns a copy of `expr` in which every column reference for which
/// `sub` returns a value is replaced by the corresponding literal.
/// This implements the paper's condition substitution step: plugging an
/// updated tuple's attribute values into a query's WHERE condition.
ExpressionPtr SubstituteColumns(const Expression& expr,
                                const ColumnSubstituter& sub);

/// Returns a copy of `expr` with parameters $i replaced by
/// `bindings[i-1]` as literals. Fails if an ordinal is out of range.
Result<ExpressionPtr> BindParameters(const Expression& expr,
                                     const std::vector<Value>& bindings);

/// Outcome of constant folding a predicate.
enum class FoldOutcome {
  kTrue,      // Provably satisfied.
  kFalse,     // Provably not satisfied.
  kNull,      // Folds to SQL NULL (not satisfied).
  kResidual,  // Depends on remaining column references.
};

/// Result of FoldConstants: a definitive three-valued outcome, or a
/// simplified residual expression mentioning only unresolved columns.
struct FoldResult {
  FoldOutcome outcome = FoldOutcome::kResidual;
  ExpressionPtr residual;  // Set iff outcome == kResidual.
};

/// Simplifies `expr` bottom-up: constant subtrees are evaluated; AND/OR
/// identities are applied (TRUE AND x -> x, FALSE AND x -> FALSE,
/// TRUE OR x -> TRUE, FALSE OR x -> x, and the NULL rows of Kleene logic).
/// Never errors on unresolved columns — they simply stay in the residual.
FoldResult FoldConstants(const Expression& expr);

/// Collects the distinct table qualifiers appearing in column references
/// of `expr`, in first-appearance order. Unqualified references contribute
/// the empty string.
std::vector<std::string> CollectTables(const Expression& expr);

/// Collects pointers to all column references in `expr`, pre-order.
std::vector<const ColumnRefExpr*> CollectColumnRefs(const Expression& expr);

/// True if `expr` contains any ParameterExpr.
bool ContainsParameters(const Expression& expr);

/// Splits a conjunctive expression into its top-level AND conjuncts
/// (a non-AND expression yields a single conjunct). Returned pointers
/// alias `expr`.
std::vector<const Expression*> SplitConjuncts(const Expression& expr);

/// Qualifies unqualified column references using `owner_of`, which maps a
/// column name to the effective table name owning it (or nullopt if
/// ambiguous/unknown — left untouched then). Used to normalize queries
/// before impact analysis.
ExpressionPtr QualifyColumns(
    const Expression& expr,
    const std::function<std::optional<std::string>(const std::string& column)>&
        owner_of);

/// Structural classification of a query template, the input to per-type
/// invalidation strategy selection (DESIGN.md §16). Purely syntactic:
/// schema resolution (does every referenced column exist in the FROM
/// table?) is the caller's concern — this layer must not know schemas.
struct TemplateShape {
  bool single_table = false;   // Exactly one FROM entry.
  bool self_join = false;      // The same table appears twice in FROM.
  bool has_aggregation = false;  // Aggregate call, GROUP BY, or HAVING.
  bool has_subquery = false;   // The grammar cannot express subqueries
                               // today; kept so the eligibility contract
                               // is explicit when it learns to.
  /// The WHERE clause (if any) can be decided from a single row of the
  /// FROM table under 3VL: only literals, parameters, column references,
  /// NOT/negation, AND/OR, arithmetic, comparisons, IN, BETWEEN, and
  /// IS [NOT] NULL — no LIKE, no NULL comparands, no function calls.
  bool where_row_decidable = false;

  /// Empty when the template qualifies for the exact single-table
  /// invalidation tier; otherwise the first disqualifier, phrased for
  /// the strategy census ("multi-table FROM", "self-join",
  /// "aggregation", "LIKE pattern", "NULL comparand", ...).
  std::string blocker;

  bool exact_eligible() const { return blocker.empty(); }
};

/// Classifies `statement` for strategy selection. Deterministic: equal
/// templates always classify identically, so tier assignment is
/// shard-count- and worker-count-invariant.
TemplateShape ClassifyTemplateShape(const SelectStatement& statement);

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_ANALYZER_H_
