#include "sql/ast.h"

#include "common/strings.h"

namespace cacheportal::sql {

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLt:
    case BinaryOp::kLtEq:
    case BinaryOp::kGt:
    case BinaryOp::kGtEq:
    case BinaryOp::kLike:
      return true;
    default:
      return false;
  }
}

bool IsLogicalOp(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return true;
    default:
      return false;
  }
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

bool LiteralExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kLiteral) return false;
  return value_ == static_cast<const LiteralExpr&>(other).value();
}

bool ColumnRefExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kColumnRef) return false;
  const auto& o = static_cast<const ColumnRefExpr&>(other);
  return table_ == o.table_ && column_ == o.column_;
}

bool ParameterExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kParameter) return false;
  const auto& o = static_cast<const ParameterExpr&>(other);
  return ordinal_ == o.ordinal_ && name_ == o.name_;
}

bool UnaryExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kUnary) return false;
  const auto& o = static_cast<const UnaryExpr&>(other);
  return op_ == o.op_ && operand_->Equals(*o.operand_);
}

bool BinaryExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kBinary) return false;
  const auto& o = static_cast<const BinaryExpr&>(other);
  return op_ == o.op_ && left_->Equals(*o.left_) && right_->Equals(*o.right_);
}

bool FunctionCallExpr::IsAggregate() const {
  return name_ == "COUNT" || name_ == "SUM" || name_ == "MIN" ||
         name_ == "MAX" || name_ == "AVG";
}

ExpressionPtr FunctionCallExpr::Clone() const {
  std::vector<ExpressionPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  return std::make_unique<FunctionCallExpr>(name_, std::move(args), star_);
}

bool FunctionCallExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kFunctionCall) return false;
  const auto& o = static_cast<const FunctionCallExpr&>(other);
  if (name_ != o.name_ || star_ != o.star_ || args_.size() != o.args_.size()) {
    return false;
  }
  for (size_t i = 0; i < args_.size(); ++i) {
    if (!args_[i]->Equals(*o.args_[i])) return false;
  }
  return true;
}

ExpressionPtr InListExpr::Clone() const {
  std::vector<ExpressionPtr> items;
  items.reserve(items_.size());
  for (const auto& item : items_) items.push_back(item->Clone());
  return std::make_unique<InListExpr>(operand_->Clone(), std::move(items),
                                      negated_);
}

bool InListExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kInList) return false;
  const auto& o = static_cast<const InListExpr&>(other);
  if (negated_ != o.negated_ || items_.size() != o.items_.size() ||
      !operand_->Equals(*o.operand_)) {
    return false;
  }
  for (size_t i = 0; i < items_.size(); ++i) {
    if (!items_[i]->Equals(*o.items_[i])) return false;
  }
  return true;
}

bool BetweenExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kBetween) return false;
  const auto& o = static_cast<const BetweenExpr&>(other);
  return negated_ == o.negated_ && operand_->Equals(*o.operand_) &&
         low_->Equals(*o.low_) && high_->Equals(*o.high_);
}

bool IsNullExpr::Equals(const Expression& other) const {
  if (other.kind() != ExprKind::kIsNull) return false;
  const auto& o = static_cast<const IsNullExpr&>(other);
  return negated_ == o.negated_ && operand_->Equals(*o.operand_);
}

std::unique_ptr<SelectStatement> SelectStatement::Clone() const {
  auto out = std::make_unique<SelectStatement>();
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& item : items) out->items.push_back(item.Clone());
  out->from = from;
  out->where = where ? where->Clone() : nullptr;
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  out->having = having ? having->Clone() : nullptr;
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  return out;
}

std::unique_ptr<InsertStatement> InsertStatement::Clone() const {
  auto out = std::make_unique<InsertStatement>();
  out->table = table;
  out->columns = columns;
  out->values.reserve(values.size());
  for (const auto& v : values) out->values.push_back(v->Clone());
  return out;
}

std::unique_ptr<DeleteStatement> DeleteStatement::Clone() const {
  auto out = std::make_unique<DeleteStatement>();
  out->table = table;
  out->where = where ? where->Clone() : nullptr;
  return out;
}

std::unique_ptr<UpdateStatement> UpdateStatement::Clone() const {
  auto out = std::make_unique<UpdateStatement>();
  out->table = table;
  out->assignments.reserve(assignments.size());
  for (const auto& [col, expr] : assignments) {
    out->assignments.emplace_back(col, expr->Clone());
  }
  out->where = where ? where->Clone() : nullptr;
  return out;
}

bool ExprEquals(const Expression* a, const Expression* b) {
  if (a == nullptr && b == nullptr) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->Equals(*b);
}

ExpressionPtr ConjoinExprs(ExpressionPtr left, ExpressionPtr right) {
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  return std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                      std::move(right));
}

}  // namespace cacheportal::sql
