#ifndef CACHEPORTAL_SQL_AST_H_
#define CACHEPORTAL_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sql/value.h"

namespace cacheportal::sql {

class Expression;
using ExpressionPtr = std::unique_ptr<Expression>;

/// Expression node discriminator.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParameter,
  kUnary,
  kBinary,
  kFunctionCall,
  kInList,
  kBetween,
  kIsNull,
};

/// Binary operators, in precedence-relevant groups.
enum class BinaryOp {
  // Logical.
  kAnd,
  kOr,
  // Comparison.
  kEq,
  kNotEq,
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kLike,
  // Arithmetic.
  kAdd,
  kSub,
  kMul,
  kDiv,
};

/// Unary operators.
enum class UnaryOp { kNot, kNeg };

/// Returns true for comparison operators (=, <>, <, <=, >, >=, LIKE).
bool IsComparisonOp(BinaryOp op);
/// Returns true for AND/OR.
bool IsLogicalOp(BinaryOp op);
/// Returns true for +,-,*,/.
bool IsArithmeticOp(BinaryOp op);
/// SQL spelling of an operator ("=", "AND", ...).
const char* BinaryOpName(BinaryOp op);

/// Base class for all expression AST nodes. Nodes are immutable after
/// construction; tree rewrites (template extraction, substitution) build
/// new trees via Clone().
class Expression {
 public:
  virtual ~Expression() = default;

  ExprKind kind() const { return kind_; }

  /// Deep copy.
  virtual ExpressionPtr Clone() const = 0;

  /// Structural equality (literal values compare with Value::operator==).
  virtual bool Equals(const Expression& other) const = 0;

 protected:
  explicit Expression(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// A constant value, e.g. 42 or 'Toyota'.
class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value value)
      : Expression(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }
  bool Equals(const Expression& other) const override;

 private:
  Value value_;
};

/// A (possibly table-qualified) column reference, e.g. Car.price or price.
class ColumnRefExpr : public Expression {
 public:
  ColumnRefExpr(std::string table, std::string column)
      : Expression(ExprKind::kColumnRef),
        table_(std::move(table)),
        column_(std::move(column)) {}

  /// Table (or alias) qualifier; empty when unqualified.
  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }

  /// "table.column" or "column".
  std::string FullName() const {
    return table_.empty() ? column_ : table_ + "." + column_;
  }

  ExpressionPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(table_, column_);
  }
  bool Equals(const Expression& other) const override;

 private:
  std::string table_;
  std::string column_;
};

/// A positional parameter ($1, $2, ... or ?). `ordinal` is 1-based; 0 means
/// an anonymous `?` placeholder. `name` preserves `$V1`-style names.
class ParameterExpr : public Expression {
 public:
  explicit ParameterExpr(int ordinal, std::string name = "")
      : Expression(ExprKind::kParameter),
        ordinal_(ordinal),
        name_(std::move(name)) {}

  int ordinal() const { return ordinal_; }
  const std::string& name() const { return name_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<ParameterExpr>(ordinal_, name_);
  }
  bool Equals(const Expression& other) const override;

 private:
  int ordinal_;
  std::string name_;
};

/// NOT expr, or -expr.
class UnaryExpr : public Expression {
 public:
  UnaryExpr(UnaryOp op, ExpressionPtr operand)
      : Expression(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const Expression& operand() const { return *operand_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->Clone());
  }
  bool Equals(const Expression& other) const override;

 private:
  UnaryOp op_;
  ExpressionPtr operand_;
};

/// left OP right for all binary operators.
class BinaryExpr : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExpressionPtr left, ExpressionPtr right)
      : Expression(ExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const Expression& left() const { return *left_; }
  const Expression& right() const { return *right_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
  }
  bool Equals(const Expression& other) const override;

 private:
  BinaryOp op_;
  ExpressionPtr left_;
  ExpressionPtr right_;
};

/// Aggregate / scalar function call: COUNT(*), SUM(x), MIN(x), MAX(x),
/// AVG(x). `star` is true for COUNT(*).
class FunctionCallExpr : public Expression {
 public:
  FunctionCallExpr(std::string name, std::vector<ExpressionPtr> args,
                   bool star = false)
      : Expression(ExprKind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)),
        star_(star) {}

  /// Upper-cased function name.
  const std::string& name() const { return name_; }
  const std::vector<ExpressionPtr>& args() const { return args_; }
  bool star() const { return star_; }

  /// True if this is one of the recognized aggregate functions.
  bool IsAggregate() const;

  ExpressionPtr Clone() const override;
  bool Equals(const Expression& other) const override;

 private:
  std::string name_;
  std::vector<ExpressionPtr> args_;
  bool star_;
};

/// expr [NOT] IN (v1, v2, ...).
class InListExpr : public Expression {
 public:
  InListExpr(ExpressionPtr operand, std::vector<ExpressionPtr> items,
             bool negated)
      : Expression(ExprKind::kInList),
        operand_(std::move(operand)),
        items_(std::move(items)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  const std::vector<ExpressionPtr>& items() const { return items_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override;
  bool Equals(const Expression& other) const override;

 private:
  ExpressionPtr operand_;
  std::vector<ExpressionPtr> items_;
  bool negated_;
};

/// expr [NOT] BETWEEN low AND high.
class BetweenExpr : public Expression {
 public:
  BetweenExpr(ExpressionPtr operand, ExpressionPtr low, ExpressionPtr high,
              bool negated)
      : Expression(ExprKind::kBetween),
        operand_(std::move(operand)),
        low_(std::move(low)),
        high_(std::move(high)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  const Expression& low() const { return *low_; }
  const Expression& high() const { return *high_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<BetweenExpr>(operand_->Clone(), low_->Clone(),
                                         high_->Clone(), negated_);
  }
  bool Equals(const Expression& other) const override;

 private:
  ExpressionPtr operand_;
  ExpressionPtr low_;
  ExpressionPtr high_;
  bool negated_;
};

/// expr IS [NOT] NULL.
class IsNullExpr : public Expression {
 public:
  IsNullExpr(ExpressionPtr operand, bool negated)
      : Expression(ExprKind::kIsNull),
        operand_(std::move(operand)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<IsNullExpr>(operand_->Clone(), negated_);
  }
  bool Equals(const Expression& other) const override;

 private:
  ExpressionPtr operand_;
  bool negated_;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// Statement discriminator.
enum class StatementKind {
  kSelect,
  kInsert,
  kDelete,
  kUpdate,
  kCreateTable,
  kCreateIndex,
};

/// Base class for parsed SQL statements.
class Statement {
 public:
  virtual ~Statement() = default;

  StatementKind kind() const { return kind_; }

  virtual std::unique_ptr<Statement> CloneStatement() const = 0;

 protected:
  explicit Statement(StatementKind kind) : kind_(kind) {}

 private:
  StatementKind kind_;
};

using StatementPtr = std::unique_ptr<Statement>;

/// One item of a SELECT list: either `*` (optionally table-qualified) or an
/// expression with an optional alias.
struct SelectItem {
  bool star = false;
  std::string star_table;  // For "t.*"; empty for plain "*".
  ExpressionPtr expr;      // Null when star.
  std::string alias;       // Optional AS alias.

  SelectItem Clone() const {
    SelectItem item;
    item.star = star;
    item.star_table = star_table;
    item.expr = expr ? expr->Clone() : nullptr;
    item.alias = alias;
    return item;
  }
};

/// A table in a FROM clause with an optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // Empty when none.

  /// Name by which columns reference this table (alias if present).
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }

  bool operator==(const TableRef& other) const = default;
};

/// ORDER BY item.
struct OrderByItem {
  ExpressionPtr expr;
  bool ascending = true;

  OrderByItem Clone() const {
    OrderByItem item;
    item.expr = expr->Clone();
    item.ascending = ascending;
    return item;
  }
};

/// SELECT [DISTINCT] items FROM tables [WHERE cond] [GROUP BY cols]
/// [ORDER BY items] [LIMIT n]. JOIN ... ON is normalized by the parser into
/// the FROM list plus WHERE conjuncts.
class SelectStatement : public Statement {
 public:
  SelectStatement() : Statement(StatementKind::kSelect) {}

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExpressionPtr where;  // May be null.
  std::vector<ExpressionPtr> group_by;
  ExpressionPtr having;  // May be null; only with GROUP BY/aggregates.
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;

  std::unique_ptr<SelectStatement> Clone() const;
  StatementPtr CloneStatement() const override { return Clone(); }
};

/// INSERT INTO table [(cols)] VALUES (exprs).
class InsertStatement : public Statement {
 public:
  InsertStatement() : Statement(StatementKind::kInsert) {}

  std::string table;
  std::vector<std::string> columns;  // Empty = schema order.
  std::vector<ExpressionPtr> values;

  std::unique_ptr<InsertStatement> Clone() const;
  StatementPtr CloneStatement() const override { return Clone(); }
};

/// DELETE FROM table [WHERE cond].
class DeleteStatement : public Statement {
 public:
  DeleteStatement() : Statement(StatementKind::kDelete) {}

  std::string table;
  ExpressionPtr where;  // May be null (delete all).

  std::unique_ptr<DeleteStatement> Clone() const;
  StatementPtr CloneStatement() const override { return Clone(); }
};

/// UPDATE table SET col = expr, ... [WHERE cond].
class UpdateStatement : public Statement {
 public:
  UpdateStatement() : Statement(StatementKind::kUpdate) {}

  std::string table;
  std::vector<std::pair<std::string, ExpressionPtr>> assignments;
  ExpressionPtr where;  // May be null (update all).

  std::unique_ptr<UpdateStatement> Clone() const;
  StatementPtr CloneStatement() const override { return Clone(); }
};

/// Column type names accepted by CREATE TABLE: INT, DOUBLE, TEXT.
struct ColumnSpec {
  std::string name;
  std::string type;  // Upper-cased type keyword.

  bool operator==(const ColumnSpec&) const = default;
};

/// CREATE TABLE name (col type, ...).
class CreateTableStatement : public Statement {
 public:
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}

  std::string table;
  std::vector<ColumnSpec> columns;

  std::unique_ptr<CreateTableStatement> Clone() const {
    auto out = std::make_unique<CreateTableStatement>();
    out->table = table;
    out->columns = columns;
    return out;
  }
  StatementPtr CloneStatement() const override { return Clone(); }
};

/// CREATE INDEX ON table (column).
class CreateIndexStatement : public Statement {
 public:
  CreateIndexStatement() : Statement(StatementKind::kCreateIndex) {}

  std::string table;
  std::string column;

  std::unique_ptr<CreateIndexStatement> Clone() const {
    auto out = std::make_unique<CreateIndexStatement>();
    out->table = table;
    out->column = column;
    return out;
  }
  StatementPtr CloneStatement() const override { return Clone(); }
};

/// Structural equality helper tolerating null pointers (both null = equal).
bool ExprEquals(const Expression* a, const Expression* b);

/// Builds `left AND right`; if either side is null returns the other.
ExpressionPtr ConjoinExprs(ExpressionPtr left, ExpressionPtr right);

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_AST_H_
