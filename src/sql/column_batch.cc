#include "sql/column_batch.h"

#include <algorithm>
#include <cmath>

namespace cacheportal::sql {

ColumnBatch ColumnBatch::FromRows(
    const std::vector<const std::vector<Value>*>& rows) {
  ColumnBatch batch;
  batch.num_rows_ = rows.size();
  size_t width = 0;
  for (const std::vector<Value>* row : rows) {
    width = std::max(width, row->size());
  }
  batch.sel_.resize(rows.size());
  for (uint32_t i = 0; i < rows.size(); ++i) batch.sel_[i] = i;

  batch.columns_.resize(width);
  for (ColumnVector& col : batch.columns_) {
    col.klass.resize(rows.size(), CellClass::kAlways);
    col.num.resize(rows.size(), 0.0);
    col.str.resize(rows.size(), nullptr);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::vector<Value>& row = *rows[i];
    for (size_t c = 0; c < row.size(); ++c) {
      ColumnVector& col = batch.columns_[c];
      const Value& v = row[c];
      if (v.is_numeric()) {
        // The same key normalization the bind index uses: widen like
        // Value::Compare, fold -0.0 into +0.0 (equal but hashes apart),
        // and route NaN to the always lane (unordered against every
        // comparand; a NaN key would also corrupt the sorted maps).
        double d = v.NumericAsDouble();
        if (!std::isnan(d)) {
          col.klass[i] = CellClass::kNumeric;
          col.num[i] = d == 0.0 ? 0.0 : d;
          ++col.num_count;
        }
      } else if (v.is_string()) {
        col.klass[i] = CellClass::kString;
        col.str[i] = &v.AsString();
        ++col.str_count;
      }
      // NULL / boolean cells keep the kAlways default.
    }
  }
  batch.missing_.klass.resize(rows.size(), CellClass::kAlways);
  batch.missing_.num.resize(rows.size(), 0.0);
  batch.missing_.str.resize(rows.size(), nullptr);
  return batch;
}

void RowBitmap::AppendSetRows(std::vector<uint32_t>* out) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
      out->push_back(static_cast<uint32_t>((w << 6) | bit));
      word &= word - 1;
    }
  }
}

void RowBitmap::AppendSetRows(const std::vector<uint32_t>& sel,
                              std::vector<uint32_t>* out) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
      out->push_back(sel[(w << 6) | bit]);
      word &= word - 1;
    }
  }
}

void OrSatisfyingRows(const ColumnVector& col, BatchRel rel, double key,
                      double high, RowBitmap* out) {
  const size_t n = col.size();
  const CellClass* klass = col.klass.data();
  const double* num = col.num.data();
  // One comparison per row against a loop-invariant key; the class
  // check masks non-numeric lanes (their num slot is 0 but must not
  // match). NaN cells are kAlways, so every comparison here is ordered.
  switch (rel) {
    case BatchRel::kEq:
      for (size_t i = 0; i < n; ++i) {
        if (klass[i] == CellClass::kNumeric && num[i] == key) {
          out->Set(static_cast<uint32_t>(i));
        }
      }
      break;
    case BatchRel::kLt:
      for (size_t i = 0; i < n; ++i) {
        if (klass[i] == CellClass::kNumeric && num[i] < key) {
          out->Set(static_cast<uint32_t>(i));
        }
      }
      break;
    case BatchRel::kLtEq:
      for (size_t i = 0; i < n; ++i) {
        if (klass[i] == CellClass::kNumeric && num[i] <= key) {
          out->Set(static_cast<uint32_t>(i));
        }
      }
      break;
    case BatchRel::kGt:
      for (size_t i = 0; i < n; ++i) {
        if (klass[i] == CellClass::kNumeric && num[i] > key) {
          out->Set(static_cast<uint32_t>(i));
        }
      }
      break;
    case BatchRel::kGtEq:
      for (size_t i = 0; i < n; ++i) {
        if (klass[i] == CellClass::kNumeric && num[i] >= key) {
          out->Set(static_cast<uint32_t>(i));
        }
      }
      break;
    case BatchRel::kBetween:
      for (size_t i = 0; i < n; ++i) {
        if (klass[i] == CellClass::kNumeric && key <= num[i] &&
            num[i] <= high) {
          out->Set(static_cast<uint32_t>(i));
        }
      }
      break;
  }
}

void OrSatisfyingRows(const ColumnVector& col, BatchRel rel,
                      const std::string& key, const std::string& high,
                      RowBitmap* out) {
  const size_t n = col.size();
  for (size_t i = 0; i < n; ++i) {
    if (col.klass[i] != CellClass::kString) continue;
    const std::string& s = *col.str[i];
    bool satisfied = false;
    switch (rel) {
      case BatchRel::kEq:
        satisfied = s == key;
        break;
      case BatchRel::kLt:
        satisfied = s < key;
        break;
      case BatchRel::kLtEq:
        satisfied = s <= key;
        break;
      case BatchRel::kGt:
        satisfied = s > key;
        break;
      case BatchRel::kGtEq:
        satisfied = s >= key;
        break;
      case BatchRel::kBetween:
        satisfied = key <= s && s <= high;
        break;
    }
    if (satisfied) out->Set(static_cast<uint32_t>(i));
  }
}

void OrRowsOfClass(const ColumnVector& col, CellClass klass, RowBitmap* out) {
  const size_t n = col.size();
  for (size_t i = 0; i < n; ++i) {
    if (col.klass[i] == klass) out->Set(static_cast<uint32_t>(i));
  }
}

SortedColumnKeys SortColumnKeys(const ColumnVector& col) {
  SortedColumnKeys keys;
  const size_t n = col.size();
  for (uint32_t i = 0; i < n; ++i) {
    switch (col.klass[i]) {
      case CellClass::kNumeric:
        keys.num.emplace_back(col.num[i], i);
        break;
      case CellClass::kString:
        keys.str.emplace_back(col.str[i], i);
        break;
      case CellClass::kAlways:
        keys.always.push_back(i);
        break;
    }
  }
  std::sort(keys.num.begin(), keys.num.end());
  std::sort(keys.str.begin(), keys.str.end(),
            [](const std::pair<const std::string*, uint32_t>& a,
               const std::pair<const std::string*, uint32_t>& b) {
              int c = a.first->compare(*b.first);
              return c != 0 ? c < 0 : a.second < b.second;
            });
  return keys;
}

}  // namespace cacheportal::sql
