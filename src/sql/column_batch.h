#ifndef CACHEPORTAL_SQL_COLUMN_BATCH_H_
#define CACHEPORTAL_SQL_COLUMN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sql/value.h"

namespace cacheportal::sql {

/// Class of one cell in a column batch, from the point of view of a
/// compiled anchor predicate (`column REL comparand`). The three-valued
/// contract mirrors EvalExpression exactly — exclusion downstream is
/// only sound on a definite FALSE:
///  - kNumeric / kString cells carry a comparable key; a same-class
///    comparison can fold FALSE, so only these rows are ever excluded.
///  - kAlways cells can never fold a comparison to FALSE: NULL makes
///    every comparison NULL, booleans are outside the indexed classes,
///    a missing cell (row shorter than the column index) is treated as
///    malformed and analyzed by everyone, and a NaN numeric key is
///    unordered against every comparand (and would break the sorted
///    probe maps' strict weak ordering), so it rides the always lane.
enum class CellClass : uint8_t {
  kNumeric = 0,
  kString,
  kAlways,
};

/// One column of a batch: a class tag per row plus parallel key arrays.
/// `num[i]` is meaningful only where `klass[i] == kNumeric` (the
/// Value::Compare widening of the cell, with -0.0 folded into +0.0 and
/// never NaN); `str[i]` only where `klass[i] == kString` (borrowed from
/// the source row). The flat tag + key layout keeps the per-entry
/// evaluation kernels branch-light and auto-vectorizable.
struct ColumnVector {
  std::vector<CellClass> klass;
  std::vector<double> num;
  std::vector<const std::string*> str;
  /// Rows per comparable class (kAlways is the remainder); a probe
  /// skips a whole value class — its kernels AND its always-candidate
  /// list — when the batch holds no rows of that class.
  size_t num_count = 0;
  size_t str_count = 0;

  size_t size() const { return klass.size(); }
};

/// A cycle delta materialized column-wise: one ColumnVector per source
/// column, plus a selection vector mapping batch positions back to the
/// source row list (identity today — the whole merged view is selected;
/// kernels report positions through it so a future filtered batch keeps
/// the same call sites). Rows are borrowed; the batch must not outlive
/// them.
class ColumnBatch {
 public:
  ColumnBatch() = default;

  /// Materializes `rows` (each a borrowed db::Row, i.e. a
  /// vector<Value>). The batch is as wide as the widest row; shorter
  /// rows' missing cells classify as kAlways.
  static ColumnBatch FromRows(const std::vector<const std::vector<Value>*>& rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<uint32_t>& selection() const { return sel_; }

  /// Column `c`, or an all-kAlways vector when `c` is out of range (an
  /// anchor on a column no row carries can exclude nothing).
  const ColumnVector& Column(size_t c) const {
    return c < columns_.size() ? columns_[c] : missing_;
  }

 private:
  size_t num_rows_ = 0;
  std::vector<uint32_t> sel_;
  std::vector<ColumnVector> columns_;
  ColumnVector missing_;
};

/// A bitmap over batch rows; the accumulation target of the evaluation
/// kernels. OR-ing per-entry results into one bitmap both dedups (an IN
/// anchor may match a row through several items) and keeps the final
/// row list ascending for free.
class RowBitmap {
 public:
  explicit RowBitmap(size_t num_rows) : words_((num_rows + 63) / 64, 0) {}

  void Set(uint32_t row) { words_[row >> 6] |= uint64_t{1} << (row & 63); }
  bool Test(uint32_t row) const {
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  /// Appends the set rows, ascending — raw batch positions, or mapped
  /// through a selection vector.
  void AppendSetRows(std::vector<uint32_t>* out) const;
  void AppendSetRows(const std::vector<uint32_t>& sel,
                     std::vector<uint32_t>* out) const;

 private:
  std::vector<uint64_t> words_;
};

/// Relation of a batch predicate kernel; `kBetween` uses both bounds.
enum class BatchRel : uint8_t { kEq, kLt, kLtEq, kGt, kGtEq, kBetween };

/// Tight per-column kernels: set the bit of every row whose cell
/// DEFINITELY satisfies `cell REL key` (for kBetween: `key <= cell <=
/// high`). Only same-class rows can satisfy — kAlways rows and rows of
/// the other class are left untouched, exactly as EvalExpression folds
/// cross-class comparisons to NULL (never FALSE): their candidacy is
/// owed to other entries (always-candidate lists), not these kernels.
void OrSatisfyingRows(const ColumnVector& col, BatchRel rel, double key,
                      double high, RowBitmap* out);
void OrSatisfyingRows(const ColumnVector& col, BatchRel rel,
                      const std::string& key, const std::string& high,
                      RowBitmap* out);

/// Sets the bit of every row of class `klass` (the always-candidate
/// lists' kernel: e.g. every numeric row is a candidate for an
/// instance on the numeric always list).
void OrRowsOfClass(const ColumnVector& col, CellClass klass, RowBitmap* out);

/// The batch's probe keys, sorted for merging against the bind index's
/// sorted maps: numeric keys ascending by Value::Compare's widening,
/// string keys ascending lexicographically, ties broken by row so the
/// per-key row groups come out ascending. kAlways rows are listed
/// separately (they match every instance and never probe).
struct SortedColumnKeys {
  std::vector<std::pair<double, uint32_t>> num;
  std::vector<std::pair<const std::string*, uint32_t>> str;
  std::vector<uint32_t> always;
};

SortedColumnKeys SortColumnKeys(const ColumnVector& col);

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_COLUMN_BATCH_H_
