#include "sql/eval.h"

#include "common/strings.h"
#include "sql/printer.h"

namespace cacheportal::sql {

namespace {

/// Truth value of a Value used in a boolean context: NULL -> nullopt,
/// bool -> itself, nonzero numerics -> true. Strings are an error.
Result<std::optional<bool>> Truthiness(const Value& v) {
  if (v.is_null()) return std::optional<bool>(std::nullopt);
  if (v.is_bool()) return std::optional<bool>(v.AsBool());
  if (v.is_numeric()) return std::optional<bool>(v.NumericAsDouble() != 0.0);
  return Status::InvalidArgument("string value used in boolean context");
}

Value FromTruth(std::optional<bool> t) {
  if (!t.has_value()) return Value::Null();
  return Value::Bool(*t);
}

Result<Value> EvalComparison(BinaryOp op, const Value& left,
                             const Value& right) {
  if (op == BinaryOp::kLike) {
    if (left.is_null() || right.is_null()) return Value::Null();
    if (!left.is_string() || !right.is_string()) {
      return Status::InvalidArgument("LIKE requires string operands");
    }
    return Value::Bool(SqlLikeMatch(left.AsString(), right.AsString()));
  }
  std::optional<int> cmp = left.Compare(right);
  if (!cmp.has_value()) {
    // NULL involved, or incomparable types. SQL says comparisons with NULL
    // are NULL; we extend that to type-mismatched comparisons, which keeps
    // the invalidator conservative.
    return Value::Null();
  }
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(*cmp == 0);
    case BinaryOp::kNotEq:
      return Value::Bool(*cmp != 0);
    case BinaryOp::kLt:
      return Value::Bool(*cmp < 0);
    case BinaryOp::kLtEq:
      return Value::Bool(*cmp <= 0);
    case BinaryOp::kGt:
      return Value::Bool(*cmp > 0);
    case BinaryOp::kGtEq:
      return Value::Bool(*cmp >= 0);
    default:
      return Status::Internal("non-comparison op in EvalComparison");
  }
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& left,
                             const Value& right) {
  if (left.is_null() || right.is_null()) return Value::Null();
  if (!left.is_numeric() || !right.is_numeric()) {
    return Status::InvalidArgument("arithmetic requires numeric operands");
  }
  if (left.is_int() && right.is_int() && op != BinaryOp::kDiv) {
    int64_t a = left.AsInt(), b = right.AsInt();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(a + b);
      case BinaryOp::kSub:
        return Value::Int(a - b);
      case BinaryOp::kMul:
        return Value::Int(a * b);
      default:
        break;
    }
  }
  double a = left.NumericAsDouble(), b = right.NumericAsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Value::Null();  // SQL: division by zero -> NULL here.
      return Value::Double(a / b);
    default:
      return Status::Internal("non-arithmetic op in EvalArithmetic");
  }
}

}  // namespace

bool SqlLikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matching with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> EvalExpr(const Expression& expr,
                       const ColumnResolver& resolver) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      std::optional<Value> v = resolver.Resolve(ref.table(), ref.column());
      if (!v.has_value()) {
        return Status::InvalidArgument(
            StrCat("unresolved column reference: ", ref.FullName()));
      }
      return *v;
    }
    case ExprKind::kParameter: {
      const auto& p = static_cast<const ParameterExpr&>(expr);
      return Status::InvalidArgument(
          StrCat("unbound parameter $", p.ordinal()));
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      CACHEPORTAL_ASSIGN_OR_RETURN(Value v, EvalExpr(u.operand(), resolver));
      if (u.op() == UnaryOp::kNeg) {
        if (v.is_null()) return Value::Null();
        if (v.is_int()) return Value::Int(-v.AsInt());
        if (v.is_double()) return Value::Double(-v.AsDouble());
        return Status::InvalidArgument("unary minus on non-numeric value");
      }
      // NOT, Kleene.
      CACHEPORTAL_ASSIGN_OR_RETURN(std::optional<bool> t, Truthiness(v));
      if (!t.has_value()) return Value::Null();
      return Value::Bool(!*t);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (IsLogicalOp(b.op())) {
        CACHEPORTAL_ASSIGN_OR_RETURN(Value lv, EvalExpr(b.left(), resolver));
        CACHEPORTAL_ASSIGN_OR_RETURN(std::optional<bool> lt, Truthiness(lv));
        // Short-circuit where three-valued logic allows it.
        if (b.op() == BinaryOp::kAnd && lt.has_value() && !*lt) {
          return Value::Bool(false);
        }
        if (b.op() == BinaryOp::kOr && lt.has_value() && *lt) {
          return Value::Bool(true);
        }
        CACHEPORTAL_ASSIGN_OR_RETURN(Value rv, EvalExpr(b.right(), resolver));
        CACHEPORTAL_ASSIGN_OR_RETURN(std::optional<bool> rt, Truthiness(rv));
        if (b.op() == BinaryOp::kAnd) {
          if (rt.has_value() && !*rt) return Value::Bool(false);
          if (!lt.has_value() || !rt.has_value()) return Value::Null();
          return Value::Bool(true);
        }
        if (rt.has_value() && *rt) return Value::Bool(true);
        if (!lt.has_value() || !rt.has_value()) return Value::Null();
        return Value::Bool(false);
      }
      CACHEPORTAL_ASSIGN_OR_RETURN(Value lv, EvalExpr(b.left(), resolver));
      CACHEPORTAL_ASSIGN_OR_RETURN(Value rv, EvalExpr(b.right(), resolver));
      if (IsComparisonOp(b.op())) return EvalComparison(b.op(), lv, rv);
      return EvalArithmetic(b.op(), lv, rv);
    }
    case ExprKind::kFunctionCall:
      // Aggregates are evaluated by the executor over row groups, never by
      // scalar evaluation.
      return Status::NotSupported(
          "aggregate function in scalar expression context");
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      CACHEPORTAL_ASSIGN_OR_RETURN(Value v, EvalExpr(in.operand(), resolver));
      bool saw_null = v.is_null();
      bool found = false;
      for (const auto& item : in.items()) {
        CACHEPORTAL_ASSIGN_OR_RETURN(Value iv, EvalExpr(*item, resolver));
        std::optional<int> cmp = v.Compare(iv);
        if (!cmp.has_value()) {
          if (iv.is_null() || v.is_null()) saw_null = true;
          continue;
        }
        if (*cmp == 0) {
          found = true;
          break;
        }
      }
      std::optional<bool> result;
      if (found) {
        result = true;
      } else if (saw_null) {
        result = std::nullopt;
      } else {
        result = false;
      }
      if (in.negated()) {
        if (!result.has_value()) return Value::Null();
        return Value::Bool(!*result);
      }
      return FromTruth(result);
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      CACHEPORTAL_ASSIGN_OR_RETURN(Value v, EvalExpr(bt.operand(), resolver));
      CACHEPORTAL_ASSIGN_OR_RETURN(Value lo, EvalExpr(bt.low(), resolver));
      CACHEPORTAL_ASSIGN_OR_RETURN(Value hi, EvalExpr(bt.high(), resolver));
      std::optional<int> c1 = v.Compare(lo);
      std::optional<int> c2 = v.Compare(hi);
      if (!c1.has_value() || !c2.has_value()) return Value::Null();
      bool in_range = *c1 >= 0 && *c2 <= 0;
      return Value::Bool(bt.negated() ? !in_range : in_range);
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      CACHEPORTAL_ASSIGN_OR_RETURN(Value v, EvalExpr(n.operand(), resolver));
      bool is_null = v.is_null();
      return Value::Bool(n.negated() ? !is_null : is_null);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<std::optional<bool>> EvalPredicate(const Expression& expr,
                                          const ColumnResolver& resolver) {
  CACHEPORTAL_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, resolver));
  return Truthiness(v);
}

}  // namespace cacheportal::sql
