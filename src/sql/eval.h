#ifndef CACHEPORTAL_SQL_EVAL_H_
#define CACHEPORTAL_SQL_EVAL_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace cacheportal::sql {

/// Resolves column references to values during expression evaluation.
/// Implementations are provided by the executor (row bindings) and by the
/// invalidator (tuple substitution).
class ColumnResolver {
 public:
  virtual ~ColumnResolver() = default;

  /// Returns the value bound to `table`.`column` (table may be empty for
  /// unqualified references), or std::nullopt if the reference cannot be
  /// resolved by this resolver.
  virtual std::optional<Value> Resolve(const std::string& table,
                                       const std::string& column) const = 0;
};

/// A resolver that resolves nothing; evaluating any column reference
/// against it is an error. Useful for constant expressions.
class EmptyResolver : public ColumnResolver {
 public:
  std::optional<Value> Resolve(const std::string&,
                               const std::string&) const override {
    return std::nullopt;
  }
};

/// Evaluates `expr` with columns resolved through `resolver`.
/// SQL three-valued logic: comparisons involving NULL yield NULL;
/// AND/OR follow Kleene logic. Unresolvable columns and unbound parameters
/// are errors (the caller must substitute/bind them first).
Result<Value> EvalExpr(const Expression& expr, const ColumnResolver& resolver);

/// Evaluates a predicate to a three-valued outcome: true, false, or
/// std::nullopt for SQL NULL/unknown.
Result<std::optional<bool>> EvalPredicate(const Expression& expr,
                                          const ColumnResolver& resolver);

/// SQL LIKE matching. '%' matches any run (including empty), '_' matches
/// exactly one character. Matching is case-sensitive.
bool SqlLikeMatch(std::string_view text, std::string_view pattern);

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_EVAL_H_
