#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace cacheportal::sql {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto& kKeywords = *new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "AND",    "OR",     "NOT",    "INSERT",
      "INTO",   "VALUES", "DELETE", "UPDATE", "SET",    "NULL",   "LIKE",
      "IN",     "BETWEEN", "IS",    "AS",     "ORDER",  "BY",     "ASC",
      "DESC",   "DISTINCT", "TRUE", "FALSE",  "LIMIT",  "JOIN",   "INNER",
      "ON",     "HAVING", "CREATE", "TABLE",  "INDEX",  "COUNT",  "SUM",    "MIN",    "MAX",    "AVG",    "GROUP",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsSqlKeyword(const std::string& upper_word) {
  return KeywordSet().contains(upper_word);
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

Result<std::vector<Token>> Lexer::Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenType type, std::string text, size_t offset) {
    tokens.push_back(Token{type, std::move(text), offset});
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentCont(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = AsciiToUpper(word);
      if (IsSqlKeyword(upper)) {
        push(TokenType::kKeyword, std::move(upper), start);
      } else {
        push(TokenType::kIdentifier, std::move(word), start);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      push(is_double ? TokenType::kDoubleLiteral : TokenType::kIntLiteral,
           input.substr(start, i - start), start);
      continue;
    }
    switch (c) {
      case '\'': {
        // String literal; '' is an escaped quote.
        std::string content;
        ++i;
        bool closed = false;
        while (i < n) {
          if (input[i] == '\'') {
            if (i + 1 < n && input[i + 1] == '\'') {
              content += '\'';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            content += input[i];
            ++i;
          }
        }
        if (!closed) {
          return Status::ParseError(
              StrCat("unterminated string literal at offset ", start));
        }
        push(TokenType::kStringLiteral, std::move(content), start);
        break;
      }
      case '$': {
        ++i;
        size_t num_start = i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
        if (i == num_start) {
          // `$V1`-style named parameters (paper's notation): accept an
          // identifier suffix and keep its text.
          while (i < n && IsIdentCont(input[i])) ++i;
          if (i == num_start) {
            return Status::ParseError(
                StrCat("expected parameter number after '$' at offset ",
                       start));
          }
        }
        push(TokenType::kParameter, input.substr(num_start, i - num_start),
             start);
        break;
      }
      case '?':
        push(TokenType::kParameter, "", start);
        ++i;
        break;
      case ',':
        push(TokenType::kComma, ",", start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, ".", start);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, ")", start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, "*", start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, "+", start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, "-", start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, "/", start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, ";", start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNotEq, "!=", start);
          i += 2;
        } else {
          return Status::ParseError(
              StrCat("unexpected character '!' at offset ", start));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLtEq, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNotEq, "<>", start);
          i += 2;
        } else {
          push(TokenType::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGtEq, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGt, ">", start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StrCat("unexpected character '", std::string(1, c),
                   "' at offset ", start));
    }
  }
  tokens.push_back(Token{TokenType::kEof, "", n});
  return tokens;
}

}  // namespace cacheportal::sql
