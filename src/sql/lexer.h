#ifndef CACHEPORTAL_SQL_LEXER_H_
#define CACHEPORTAL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace cacheportal::sql {

/// Tokenizes a SQL string into a token vector (terminated by a kEof token).
/// The lexer recognizes the dialect subset described in DESIGN.md:
/// identifiers, keywords, integer/double/string literals, positional
/// parameters ($1 / ?), and the usual punctuation and comparison operators.
class Lexer {
 public:
  /// Tokenizes `input`. On success the result always ends with kEof.
  static Result<std::vector<Token>> Tokenize(const std::string& input);
};

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_LEXER_H_
