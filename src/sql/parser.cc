#include "sql/parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "sql/lexer.h"

namespace cacheportal::sql {

namespace {

/// Recognized function names (normalized upper-case).
bool IsKnownFunction(const std::string& upper) {
  return upper == "COUNT" || upper == "SUM" || upper == "MIN" ||
         upper == "MAX" || upper == "AVG";
}

}  // namespace

bool Parser::Match(TokenType type) {
  if (Check(type)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const char* what) {
  if (Check(type)) {
    Advance();
    return Status::OK();
  }
  return ErrorHere(StrCat("expected ", what));
}

Status Parser::ExpectKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return Status::OK();
  }
  return ErrorHere(StrCat("expected keyword ", kw));
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string got = t.type == TokenType::kEof ? "<end of input>" : t.text;
  return Status::ParseError(
      StrCat(message, ", got '", got, "' at offset ", t.offset));
}

Result<StatementPtr> Parser::Parse(const std::string& input) {
  CACHEPORTAL_ASSIGN_OR_RETURN(auto tokens, Lexer::Tokenize(input));
  Parser parser(std::move(tokens));
  CACHEPORTAL_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
  parser.Match(TokenType::kSemicolon);
  if (!parser.Check(TokenType::kEof)) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect(
    const std::string& input) {
  CACHEPORTAL_ASSIGN_OR_RETURN(StatementPtr stmt, Parse(input));
  if (stmt->kind() != StatementKind::kSelect) {
    return Status::InvalidArgument("statement is not a SELECT");
  }
  return std::unique_ptr<SelectStatement>(
      static_cast<SelectStatement*>(stmt.release()));
}

Result<std::vector<StatementPtr>> Parser::ParseScript(
    const std::string& input) {
  CACHEPORTAL_ASSIGN_OR_RETURN(auto tokens, Lexer::Tokenize(input));
  Parser parser(std::move(tokens));
  std::vector<StatementPtr> statements;
  while (!parser.Check(TokenType::kEof)) {
    if (parser.Match(TokenType::kSemicolon)) continue;
    CACHEPORTAL_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
    statements.push_back(std::move(stmt));
  }
  return statements;
}

Result<StatementPtr> Parser::ParseStatement() {
  if (CheckKeyword("SELECT")) return ParseSelectStatement();
  if (CheckKeyword("INSERT")) return ParseInsertStatement();
  if (CheckKeyword("DELETE")) return ParseDeleteStatement();
  if (CheckKeyword("UPDATE")) return ParseUpdateStatement();
  if (CheckKeyword("CREATE")) return ParseCreateStatement();
  return ErrorHere("expected SELECT, INSERT, DELETE, UPDATE, or CREATE");
}

Result<StatementPtr> Parser::ParseCreateStatement() {
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    auto create = std::make_unique<CreateTableStatement>();
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected table name");
    }
    create->table = Advance().text;
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    do {
      ColumnSpec spec;
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected column name");
      }
      spec.name = Advance().text;
      // Type names are plain identifiers (INT, DOUBLE, TEXT).
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected column type (INT, DOUBLE, or TEXT)");
      }
      spec.type = AsciiToUpper(Advance().text);
      if (spec.type != "INT" && spec.type != "DOUBLE" &&
          spec.type != "TEXT") {
        return Status::ParseError(
            StrCat("unknown column type ", spec.type,
                   " (expected INT, DOUBLE, or TEXT)"));
      }
      create->columns.push_back(std::move(spec));
    } while (Match(TokenType::kComma));
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    if (create->columns.empty()) {
      return Status::ParseError("CREATE TABLE requires at least one column");
    }
    return StatementPtr(std::move(create));
  }
  if (MatchKeyword("INDEX")) {
    auto create = std::make_unique<CreateIndexStatement>();
    CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("ON"));
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected table name");
    }
    create->table = Advance().text;
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name");
    }
    create->column = Advance().text;
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return StatementPtr(std::move(create));
  }
  return ErrorHere("expected TABLE or INDEX after CREATE");
}

Result<StatementPtr> Parser::ParseSelectStatement() {
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto select = std::make_unique<SelectStatement>();
  select->distinct = MatchKeyword("DISTINCT");

  // Select list.
  do {
    CACHEPORTAL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    select->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("FROM"));

  // FROM list with optional INNER JOIN ... ON, normalized to the table
  // list plus WHERE conjuncts.
  ExpressionPtr join_conditions;
  CACHEPORTAL_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
  select->from.push_back(std::move(first));
  while (true) {
    if (Match(TokenType::kComma)) {
      CACHEPORTAL_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
      select->from.push_back(std::move(t));
      continue;
    }
    if (CheckKeyword("JOIN") || CheckKeyword("INNER")) {
      MatchKeyword("INNER");
      CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      CACHEPORTAL_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
      select->from.push_back(std::move(t));
      CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("ON"));
      CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr cond, ParseExpression());
      join_conditions =
          ConjoinExprs(std::move(join_conditions), std::move(cond));
      continue;
    }
    break;
  }

  if (MatchKeyword("WHERE")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr where, ParseExpression());
    select->where = std::move(where);
  }
  select->where =
      ConjoinExprs(std::move(join_conditions), std::move(select->where));

  if (MatchKeyword("GROUP")) {
    CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr g, ParseExpression());
      select->group_by.push_back(std::move(g));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("HAVING")) {
    if (select->group_by.empty()) {
      return ErrorHere("HAVING requires a GROUP BY clause");
    }
    CACHEPORTAL_ASSIGN_OR_RETURN(select->having, ParseExpression());
  }

  if (MatchKeyword("ORDER")) {
    CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      CACHEPORTAL_ASSIGN_OR_RETURN(item.expr, ParseExpression());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      select->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenType::kIntLiteral)) {
      return ErrorHere("expected integer after LIMIT");
    }
    select->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
  }

  return StatementPtr(std::move(select));
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // "*" or "t.*".
  if (Check(TokenType::kStar)) {
    Advance();
    item.star = true;
    return item;
  }
  if (Check(TokenType::kIdentifier) && PeekAt(1).type == TokenType::kDot &&
      PeekAt(2).type == TokenType::kStar) {
    item.star = true;
    item.star_table = Advance().text;
    Advance();  // '.'
    Advance();  // '*'
    return item;
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(item.expr, ParseExpression());
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected alias after AS");
    }
    item.alias = Advance().text;
  } else if (Check(TokenType::kIdentifier)) {
    // Bare alias: SELECT price p ...
    item.alias = Advance().text;
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  TableRef ref;
  ref.table = Advance().text;
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected alias after AS");
    }
    ref.alias = Advance().text;
  } else if (Check(TokenType::kIdentifier)) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<StatementPtr> Parser::ParseInsertStatement() {
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto insert = std::make_unique<InsertStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  insert->table = Advance().text;
  if (Match(TokenType::kLParen)) {
    do {
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected column name");
      }
      insert->columns.push_back(Advance().text);
    } while (Match(TokenType::kComma));
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  }
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
  do {
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr v, ParseExpression());
    insert->values.push_back(std::move(v));
  } while (Match(TokenType::kComma));
  CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  return StatementPtr(std::move(insert));
}

Result<StatementPtr> Parser::ParseDeleteStatement() {
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto del = std::make_unique<DeleteStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  del->table = Advance().text;
  if (MatchKeyword("WHERE")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(del->where, ParseExpression());
  }
  return StatementPtr(std::move(del));
}

Result<StatementPtr> Parser::ParseUpdateStatement() {
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  auto update = std::make_unique<UpdateStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return ErrorHere("expected table name");
  }
  update->table = Advance().text;
  CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("SET"));
  do {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column name");
    }
    std::string column = Advance().text;
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr value, ParseExpression());
    update->assignments.emplace_back(std::move(column), std::move(value));
  } while (Match(TokenType::kComma));
  if (MatchKeyword("WHERE")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(update->where, ParseExpression());
  }
  return StatementPtr(std::move(update));
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

namespace {

/// RAII depth guard for the recursive-descent expression grammar.
class DepthGuard {
 public:
  explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
  ~DepthGuard() { --*depth_; }

 private:
  int* depth_;
};

}  // namespace

Result<ExpressionPtr> Parser::ParseExpression() {
  DepthGuard guard(&expression_depth_);
  if (expression_depth_ > kMaxExpressionDepth) {
    return Status::ParseError("expression nesting too deep");
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExpressionPtr> Parser::ParseAnd() {
  CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExpressionPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr operand, ParseNot());
    return ExpressionPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParsePredicate();
}

Result<ExpressionPtr> Parser::ParsePredicate() {
  CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr left, ParseAdditive());

  // IS [NOT] NULL.
  if (MatchKeyword("IS")) {
    bool negated = MatchKeyword("NOT");
    CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("NULL"));
    return ExpressionPtr(
        std::make_unique<IsNullExpr>(std::move(left), negated));
  }

  // [NOT] IN / BETWEEN / LIKE.
  bool negated = false;
  if (CheckKeyword("NOT") &&
      (PeekAt(1).IsKeyword("IN") || PeekAt(1).IsKeyword("BETWEEN") ||
       PeekAt(1).IsKeyword("LIKE"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("IN")) {
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<ExpressionPtr> items;
    do {
      CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr item, ParseAdditive());
      items.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return ExpressionPtr(std::make_unique<InListExpr>(
        std::move(left), std::move(items), negated));
  }
  if (MatchKeyword("BETWEEN")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr low, ParseAdditive());
    CACHEPORTAL_RETURN_NOT_OK(ExpectKeyword("AND"));
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr high, ParseAdditive());
    return ExpressionPtr(std::make_unique<BetweenExpr>(
        std::move(left), std::move(low), std::move(high), negated));
  }
  if (MatchKeyword("LIKE")) {
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr pattern, ParseAdditive());
    ExpressionPtr like = std::make_unique<BinaryExpr>(
        BinaryOp::kLike, std::move(left), std::move(pattern));
    if (negated) {
      like = std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(like));
    }
    return like;
  }
  if (negated) return ErrorHere("expected IN, BETWEEN, or LIKE after NOT");

  // Plain comparison.
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNotEq:
      op = BinaryOp::kNotEq;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLtEq:
      op = BinaryOp::kLtEq;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGtEq:
      op = BinaryOp::kGtEq;
      break;
    default:
      return left;  // Not a comparison.
  }
  Advance();
  CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr right, ParseAdditive());
  return ExpressionPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                                    std::move(right)));
}

Result<ExpressionPtr> Parser::ParseAdditive() {
  CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr left, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    BinaryOp op =
        Advance().type == TokenType::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExpressionPtr> Parser::ParseMultiplicative() {
  CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr left, ParsePrimary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    BinaryOp op =
        Advance().type == TokenType::kStar ? BinaryOp::kMul : BinaryOp::kDiv;
    CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr right, ParsePrimary());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExpressionPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      int64_t v = std::strtoll(Advance().text.c_str(), nullptr, 10);
      return ExpressionPtr(std::make_unique<LiteralExpr>(Value::Int(v)));
    }
    case TokenType::kDoubleLiteral: {
      double v = std::strtod(Advance().text.c_str(), nullptr);
      return ExpressionPtr(std::make_unique<LiteralExpr>(Value::Double(v)));
    }
    case TokenType::kStringLiteral: {
      return ExpressionPtr(
          std::make_unique<LiteralExpr>(Value::String(Advance().text)));
    }
    case TokenType::kParameter: {
      std::string text = Advance().text;
      int ordinal = 0;
      std::string name;
      if (!text.empty() &&
          std::isdigit(static_cast<unsigned char>(text[0]))) {
        ordinal = static_cast<int>(std::strtol(text.c_str(), nullptr, 10));
      } else if (!text.empty()) {
        name = text;
        ordinal = next_anon_param_++;
      } else {
        ordinal = next_anon_param_++;
      }
      return ExpressionPtr(std::make_unique<ParameterExpr>(ordinal, name));
    }
    case TokenType::kMinus: {
      Advance();
      CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr operand, ParsePrimary());
      return ExpressionPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
    }
    case TokenType::kLParen: {
      Advance();
      CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr inner, ParseExpression());
      CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kKeyword: {
      if (t.text == "NULL") {
        Advance();
        return ExpressionPtr(std::make_unique<LiteralExpr>(Value::Null()));
      }
      if (t.text == "TRUE" || t.text == "FALSE") {
        bool v = Advance().text == "TRUE";
        return ExpressionPtr(std::make_unique<LiteralExpr>(Value::Bool(v)));
      }
      if (IsKnownFunction(t.text)) {
        std::string name = Advance().text;
        CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        if (Match(TokenType::kStar)) {
          CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
          return ExpressionPtr(std::make_unique<FunctionCallExpr>(
              name, std::vector<ExpressionPtr>{}, /*star=*/true));
        }
        std::vector<ExpressionPtr> args;
        if (!Check(TokenType::kRParen)) {
          do {
            CACHEPORTAL_ASSIGN_OR_RETURN(ExpressionPtr arg, ParseExpression());
            args.push_back(std::move(arg));
          } while (Match(TokenType::kComma));
        }
        CACHEPORTAL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return ExpressionPtr(
            std::make_unique<FunctionCallExpr>(name, std::move(args)));
      }
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenType::kIdentifier: {
      std::string first = Advance().text;
      if (Match(TokenType::kDot)) {
        if (!Check(TokenType::kIdentifier)) {
          return ErrorHere("expected column name after '.'");
        }
        std::string column = Advance().text;
        return ExpressionPtr(
            std::make_unique<ColumnRefExpr>(first, std::move(column)));
      }
      return ExpressionPtr(std::make_unique<ColumnRefExpr>("", first));
    }
    default:
      return ErrorHere("expected expression");
  }
}

}  // namespace cacheportal::sql
