#ifndef CACHEPORTAL_SQL_PARSER_H_
#define CACHEPORTAL_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace cacheportal::sql {

/// Recursive-descent parser for the SQL dialect subset described in
/// DESIGN.md: SELECT (with joins, DISTINCT, GROUP BY, ORDER BY, LIMIT,
/// aggregates), INSERT ... VALUES, DELETE, and UPDATE. Expressions support
/// AND/OR/NOT, the six comparisons, LIKE, IN, BETWEEN, IS [NOT] NULL,
/// arithmetic, literals, column references, and positional parameters.
class Parser {
 public:
  /// Parses a single statement (a trailing ';' is allowed).
  static Result<StatementPtr> Parse(const std::string& input);

  /// Parses and requires a SELECT statement.
  static Result<std::unique_ptr<SelectStatement>> ParseSelect(
      const std::string& input);

  /// Parses a semicolon-separated script into individual statements.
  static Result<std::vector<StatementPtr>> ParseScript(
      const std::string& input);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatement();
  Result<StatementPtr> ParseSelectStatement();
  Result<StatementPtr> ParseCreateStatement();
  Result<StatementPtr> ParseInsertStatement();
  Result<StatementPtr> ParseDeleteStatement();
  Result<StatementPtr> ParseUpdateStatement();

  Result<ExpressionPtr> ParseExpression();   // OR level.
  Result<ExpressionPtr> ParseAnd();
  Result<ExpressionPtr> ParseNot();
  Result<ExpressionPtr> ParsePredicate();    // Comparisons, IN, BETWEEN, ...
  Result<ExpressionPtr> ParseAdditive();
  Result<ExpressionPtr> ParseMultiplicative();
  Result<ExpressionPtr> ParsePrimary();

  Result<SelectItem> ParseSelectItem();
  Result<TableRef> ParseTableRef();

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t ahead) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }
  bool Match(TokenType type);
  bool MatchKeyword(const char* kw);
  Status Expect(TokenType type, const char* what);
  Status ExpectKeyword(const char* kw);
  Status ErrorHere(const std::string& message) const;

  /// Guards against stack exhaustion on adversarial nesting; generous
  /// for any real application query.
  static constexpr int kMaxExpressionDepth = 200;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_anon_param_ = 1;
  int expression_depth_ = 0;
};

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_PARSER_H_
