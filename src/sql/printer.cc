#include "sql/printer.h"

#include "common/strings.h"

namespace cacheportal::sql {

namespace {

/// Operator precedence for minimal parenthesization. Higher binds tighter.
int Precedence(const Expression& expr) {
  if (expr.kind() != ExprKind::kBinary) return 100;
  switch (static_cast<const BinaryExpr&>(expr).op()) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLt:
    case BinaryOp::kLtEq:
    case BinaryOp::kGt:
    case BinaryOp::kGtEq:
    case BinaryOp::kLike:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 100;
}

void AppendExpr(const Expression& expr, int parent_prec, std::string* out);

void AppendChild(const Expression& child, int parent_prec, std::string* out) {
  bool parens = Precedence(child) < parent_prec;
  if (parens) out->push_back('(');
  AppendExpr(child, Precedence(child), out);
  if (parens) out->push_back(')');
}

void AppendExpr(const Expression& expr, int /*parent_prec*/,
                std::string* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      out->append(static_cast<const LiteralExpr&>(expr).value().ToSqlLiteral());
      return;
    case ExprKind::kColumnRef:
      out->append(static_cast<const ColumnRefExpr&>(expr).FullName());
      return;
    case ExprKind::kParameter: {
      const auto& p = static_cast<const ParameterExpr&>(expr);
      out->push_back('$');
      out->append(std::to_string(p.ordinal()));
      return;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      if (u.op() == UnaryOp::kNot) {
        out->append("NOT ");
        // NOT binds loosely; always parenthesize non-trivial operands.
        bool parens = u.operand().kind() == ExprKind::kBinary;
        if (parens) out->push_back('(');
        AppendExpr(u.operand(), 0, out);
        if (parens) out->push_back(')');
      } else {
        out->push_back('-');
        AppendChild(u.operand(), 6, out);
      }
      return;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      int prec = Precedence(expr);
      AppendChild(b.left(), prec, out);
      out->push_back(' ');
      out->append(BinaryOpName(b.op()));
      out->push_back(' ');
      // Right side at prec+1 so non-associative chains stay parenthesized.
      AppendChild(b.right(), IsLogicalOp(b.op()) ? prec : prec + 1, out);
      return;
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(expr);
      out->append(f.name());
      out->push_back('(');
      if (f.star()) {
        out->push_back('*');
      } else {
        for (size_t i = 0; i < f.args().size(); ++i) {
          if (i > 0) out->append(", ");
          AppendExpr(*f.args()[i], 0, out);
        }
      }
      out->push_back(')');
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      AppendChild(in.operand(), 4, out);
      out->append(in.negated() ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < in.items().size(); ++i) {
        if (i > 0) out->append(", ");
        AppendExpr(*in.items()[i], 0, out);
      }
      out->push_back(')');
      return;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      AppendChild(bt.operand(), 4, out);
      out->append(bt.negated() ? " NOT BETWEEN " : " BETWEEN ");
      AppendChild(bt.low(), 4, out);
      out->append(" AND ");
      AppendChild(bt.high(), 4, out);
      return;
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      AppendChild(n.operand(), 4, out);
      out->append(n.negated() ? " IS NOT NULL" : " IS NULL");
      return;
    }
  }
}

std::string SelectToSql(const SelectStatement& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = s.items[i];
    if (item.star) {
      if (!item.star_table.empty()) {
        out += item.star_table;
        out += ".";
      }
      out += "*";
    } else {
      out += ExprToSql(*item.expr);
      if (!item.alias.empty()) {
        out += " AS ";
        out += item.alias;
      }
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < s.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += s.from[i].table;
    if (!s.from[i].alias.empty()) {
      out += " ";
      out += s.from[i].alias;
    }
  }
  if (s.where != nullptr) {
    out += " WHERE ";
    out += ExprToSql(*s.where);
  }
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(*s.group_by[i]);
    }
  }
  if (s.having != nullptr) {
    out += " HAVING ";
    out += ExprToSql(*s.having);
  }
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(*s.order_by[i].expr);
      if (!s.order_by[i].ascending) out += " DESC";
    }
  }
  if (s.limit.has_value()) {
    out += " LIMIT ";
    out += std::to_string(*s.limit);
  }
  return out;
}

std::string CreateTableToSql(const CreateTableStatement& s) {
  std::string out = "CREATE TABLE ";
  out += s.table;
  out += " (";
  for (size_t i = 0; i < s.columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += s.columns[i].name;
    out += " ";
    out += s.columns[i].type;
  }
  out += ")";
  return out;
}

std::string CreateIndexToSql(const CreateIndexStatement& s) {
  return StrCat("CREATE INDEX ON ", s.table, " (", s.column, ")");
}

std::string InsertToSql(const InsertStatement& s) {
  std::string out = "INSERT INTO ";
  out += s.table;
  if (!s.columns.empty()) {
    out += " (";
    out += StrJoin(s.columns, ", ");
    out += ")";
  }
  out += " VALUES (";
  for (size_t i = 0; i < s.values.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExprToSql(*s.values[i]);
  }
  out += ")";
  return out;
}

std::string DeleteToSql(const DeleteStatement& s) {
  std::string out = "DELETE FROM ";
  out += s.table;
  if (s.where != nullptr) {
    out += " WHERE ";
    out += ExprToSql(*s.where);
  }
  return out;
}

std::string UpdateToSql(const UpdateStatement& s) {
  std::string out = "UPDATE ";
  out += s.table;
  out += " SET ";
  for (size_t i = 0; i < s.assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += s.assignments[i].first;
    out += " = ";
    out += ExprToSql(*s.assignments[i].second);
  }
  if (s.where != nullptr) {
    out += " WHERE ";
    out += ExprToSql(*s.where);
  }
  return out;
}

}  // namespace

std::string ExprToSql(const Expression& expr) {
  std::string out;
  AppendExpr(expr, 0, &out);
  return out;
}

std::string StatementToSql(const Statement& stmt) {
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      return SelectToSql(static_cast<const SelectStatement&>(stmt));
    case StatementKind::kInsert:
      return InsertToSql(static_cast<const InsertStatement&>(stmt));
    case StatementKind::kDelete:
      return DeleteToSql(static_cast<const DeleteStatement&>(stmt));
    case StatementKind::kUpdate:
      return UpdateToSql(static_cast<const UpdateStatement&>(stmt));
    case StatementKind::kCreateTable:
      return CreateTableToSql(
          static_cast<const CreateTableStatement&>(stmt));
    case StatementKind::kCreateIndex:
      return CreateIndexToSql(
          static_cast<const CreateIndexStatement&>(stmt));
  }
  return "";
}

}  // namespace cacheportal::sql
