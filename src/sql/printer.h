#ifndef CACHEPORTAL_SQL_PRINTER_H_
#define CACHEPORTAL_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace cacheportal::sql {

/// Renders an expression back to SQL text. The output is canonical:
/// keywords upper-case, single spaces, parentheses around nested logical
/// operators, `<>` for inequality. Round-trips through the Parser.
std::string ExprToSql(const Expression& expr);

/// Renders a statement back to canonical SQL text (no trailing ';').
std::string StatementToSql(const Statement& stmt);

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_PRINTER_H_
