#include "sql/template.h"

#include <algorithm>

#include "sql/analyzer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::sql {

namespace {

/// Rewrites `expr`, turning literals into parameters and renumbering any
/// existing parameters, appending to `bindings` (existing parameters bind
/// a NULL placeholder since their value is unknown).
ExpressionPtr Parameterize(const Expression& expr, int* next_ordinal,
                           std::vector<Value>* bindings) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      // NULL / boolean literals shape the predicate itself (IS NULL
      // rewrites, constant guards); keep them structural.
      if (v.is_null() || v.is_bool()) return expr.Clone();
      bindings->push_back(v);
      return std::make_unique<ParameterExpr>((*next_ordinal)++);
    }
    case ExprKind::kParameter: {
      bindings->push_back(Value::Null());
      return std::make_unique<ParameterExpr>((*next_ordinal)++);
    }
    case ExprKind::kColumnRef:
      return expr.Clone();
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      return std::make_unique<UnaryExpr>(
          u.op(), Parameterize(u.operand(), next_ordinal, bindings));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      ExpressionPtr left = Parameterize(b.left(), next_ordinal, bindings);
      ExpressionPtr right = Parameterize(b.right(), next_ordinal, bindings);
      return std::make_unique<BinaryExpr>(b.op(), std::move(left),
                                          std::move(right));
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(expr);
      std::vector<ExpressionPtr> args;
      args.reserve(f.args().size());
      for (const auto& a : f.args()) {
        args.push_back(Parameterize(*a, next_ordinal, bindings));
      }
      return std::make_unique<FunctionCallExpr>(f.name(), std::move(args),
                                                f.star());
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      ExpressionPtr operand =
          Parameterize(in.operand(), next_ordinal, bindings);
      std::vector<ExpressionPtr> items;
      items.reserve(in.items().size());
      for (const auto& item : in.items()) {
        items.push_back(Parameterize(*item, next_ordinal, bindings));
      }
      return std::make_unique<InListExpr>(std::move(operand),
                                          std::move(items), in.negated());
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      ExpressionPtr operand =
          Parameterize(bt.operand(), next_ordinal, bindings);
      ExpressionPtr low = Parameterize(bt.low(), next_ordinal, bindings);
      ExpressionPtr high = Parameterize(bt.high(), next_ordinal, bindings);
      return std::make_unique<BetweenExpr>(std::move(operand), std::move(low),
                                           std::move(high), bt.negated());
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      return std::make_unique<IsNullExpr>(
          Parameterize(n.operand(), next_ordinal, bindings), n.negated());
    }
  }
  return expr.Clone();
}

}  // namespace

QueryTemplate QueryTemplate::Clone() const {
  QueryTemplate out;
  out.statement = statement ? statement->Clone() : nullptr;
  out.canonical_text = canonical_text;
  out.type_id = type_id;
  out.bindings = bindings;
  return out;
}

uint64_t HashQueryText(const std::string& text) {
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis.
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;  // FNV prime.
  }
  return hash;
}

Result<QueryTemplate> ExtractTemplate(const SelectStatement& instance) {
  QueryTemplate tmpl;
  tmpl.statement = instance.Clone();
  int next_ordinal = 1;
  if (tmpl.statement->where != nullptr) {
    tmpl.statement->where =
        Parameterize(*tmpl.statement->where, &next_ordinal, &tmpl.bindings);
  }
  tmpl.canonical_text = StatementToSql(*tmpl.statement);
  tmpl.type_id = HashQueryText(tmpl.canonical_text);
  return tmpl;
}

Result<QueryTemplate> ExtractTemplateFromSql(const std::string& sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(auto select, Parser::ParseSelect(sql));
  return ExtractTemplate(*select);
}

namespace {

int MaxParameterOrdinal(const Expression& expr) {
  int max_ordinal = 0;
  switch (expr.kind()) {
    case ExprKind::kParameter:
      max_ordinal = static_cast<const ParameterExpr&>(expr).ordinal();
      break;
    case ExprKind::kUnary:
      max_ordinal =
          MaxParameterOrdinal(static_cast<const UnaryExpr&>(expr).operand());
      break;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      max_ordinal = std::max(MaxParameterOrdinal(b.left()),
                             MaxParameterOrdinal(b.right()));
      break;
    }
    case ExprKind::kFunctionCall:
      for (const auto& a : static_cast<const FunctionCallExpr&>(expr).args()) {
        max_ordinal = std::max(max_ordinal, MaxParameterOrdinal(*a));
      }
      break;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      max_ordinal = MaxParameterOrdinal(in.operand());
      for (const auto& item : in.items()) {
        max_ordinal = std::max(max_ordinal, MaxParameterOrdinal(*item));
      }
      break;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      max_ordinal = std::max({MaxParameterOrdinal(bt.operand()),
                              MaxParameterOrdinal(bt.low()),
                              MaxParameterOrdinal(bt.high())});
      break;
    }
    case ExprKind::kIsNull:
      max_ordinal =
          MaxParameterOrdinal(static_cast<const IsNullExpr&>(expr).operand());
      break;
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      break;
  }
  return max_ordinal;
}

}  // namespace

size_t ParameterSlotCount(const QueryTemplate& tmpl) {
  if (tmpl.statement == nullptr || tmpl.statement->where == nullptr) return 0;
  int max_ordinal = MaxParameterOrdinal(*tmpl.statement->where);
  return max_ordinal < 0 ? 0 : static_cast<size_t>(max_ordinal);
}

Result<std::unique_ptr<SelectStatement>> InstantiateTemplate(
    const QueryTemplate& tmpl, const std::vector<Value>& bindings) {
  if (tmpl.statement == nullptr) {
    return Status::InvalidArgument("template has no statement");
  }
  auto out = tmpl.statement->Clone();
  if (out->where != nullptr) {
    CACHEPORTAL_ASSIGN_OR_RETURN(out->where,
                                 BindParameters(*out->where, bindings));
  }
  return out;
}

}  // namespace cacheportal::sql
