#ifndef CACHEPORTAL_SQL_TEMPLATE_H_
#define CACHEPORTAL_SQL_TEMPLATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace cacheportal::sql {

/// A query type in the paper's sense: a SQL statement whose literal
/// constants have been replaced by positional parameters $1..$n. All query
/// instances issued by the same application code map to one QueryTemplate
/// regardless of the bound values, which is what allows the invalidator to
/// manage instances in groups (Section 4.1.2 of the paper).
struct QueryTemplate {
  /// The parameterized SELECT (literals in WHERE replaced by $i).
  std::unique_ptr<SelectStatement> statement;

  /// Canonical SQL text of `statement`; used as the type's identity.
  std::string canonical_text;

  /// FNV-1a hash of canonical_text; stable across runs.
  uint64_t type_id = 0;

  /// The literal values extracted from the instance this template was
  /// derived from, in $1..$n order.
  std::vector<Value> bindings;

  QueryTemplate() = default;
  QueryTemplate(QueryTemplate&&) = default;
  QueryTemplate& operator=(QueryTemplate&&) = default;

  QueryTemplate Clone() const;
};

/// Derives the query type of a SELECT instance: every literal constant in
/// the WHERE clause (except NULL and booleans, whose identity is
/// structural) becomes a positional parameter in left-to-right order.
/// Already-present parameters are renumbered into the same sequence.
Result<QueryTemplate> ExtractTemplate(const SelectStatement& instance);

/// Convenience overload: parses `sql` first.
Result<QueryTemplate> ExtractTemplateFromSql(const std::string& sql);

/// Rebinds a template with new values, producing a concrete query
/// instance (the inverse of ExtractTemplate).
Result<std::unique_ptr<SelectStatement>> InstantiateTemplate(
    const QueryTemplate& tmpl, const std::vector<Value>& bindings);

/// Stable FNV-1a 64-bit hash used for query-type identity.
uint64_t HashQueryText(const std::string& text);

/// Number of bind slots a template exposes: the highest parameter ordinal
/// appearing in its WHERE clause (extraction places parameters nowhere
/// else). A template's `bindings` vector has exactly this many entries,
/// which is what lets the invalidator's TypeMatcher resolve a compiled
/// `col OP $k` predicate against any instance's bind values.
size_t ParameterSlotCount(const QueryTemplate& tmpl);

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_TEMPLATE_H_
