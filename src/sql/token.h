#ifndef CACHEPORTAL_SQL_TOKEN_H_
#define CACHEPORTAL_SQL_TOKEN_H_

#include <string>

namespace cacheportal::sql {

/// Lexical token categories produced by the Lexer.
enum class TokenType {
  kEof = 0,
  kIdentifier,     // table, column, alias names (case preserved)
  kKeyword,        // SELECT, FROM, ... (normalized to upper case in text)
  kIntLiteral,     // 42
  kDoubleLiteral,  // 3.14
  kStringLiteral,  // 'abc' (text holds the unescaped content)
  kParameter,      // $1, $2, ... or ? (text holds "1", "2", or "" for ?)
  kComma,          // ,
  kDot,            // .
  kLParen,         // (
  kRParen,         // )
  kStar,           // *
  kPlus,           // +
  kMinus,          // -
  kSlash,          // /
  kEq,             // =
  kNotEq,          // <> or !=
  kLt,             // <
  kLtEq,           // <=
  kGt,             // >
  kGtEq,           // >=
  kSemicolon,      // ;
};

/// A single lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // Normalized text (keywords uppercased).
  size_t offset = 0;  // Byte offset in the input.

  bool IsKeyword(const char* kw) const;
};

/// Returns true if `word` (any case) is a reserved SQL keyword recognized
/// by this dialect.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_TOKEN_H_
