#include "sql/value.h"

#include <functional>

#include "common/strings.h"

namespace cacheportal::sql {

ValueType Value::type() const {
  if (is_null()) return ValueType::kNull;
  if (is_int()) return ValueType::kInt;
  if (is_double()) return ValueType::kDouble;
  if (is_string()) return ValueType::kString;
  return ValueType::kBool;
}

std::optional<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) return std::nullopt;
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericAsDouble(), b = other.NumericAsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    int a = AsBool() ? 1 : 0, b = other.AsBool() ? 1 : 0;
    return a - b;
  }
  return std::nullopt;  // Incomparable types.
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = StrCat(AsDouble());
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "NULL";
}

std::string Value::ToString() const {
  if (is_string()) return AsString();
  return ToSqlLiteral();
}

size_t Value::Hash() const {
  size_t type_salt = static_cast<size_t>(type()) * 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case ValueType::kNull:
      return type_salt;
    case ValueType::kInt:
      return type_salt ^ std::hash<int64_t>{}(AsInt());
    case ValueType::kDouble:
      return type_salt ^ std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return type_salt ^ std::hash<std::string>{}(AsString());
    case ValueType::kBool:
      return type_salt ^ std::hash<bool>{}(AsBool());
  }
  return type_salt;
}

}  // namespace cacheportal::sql
