#ifndef CACHEPORTAL_SQL_VALUE_H_
#define CACHEPORTAL_SQL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace cacheportal::sql {

/// Runtime type of a Value.
enum class ValueType { kNull = 0, kInt, kDouble, kString, kBool };

/// A SQL scalar value: NULL, 64-bit integer, double, string, or boolean.
/// Values are small, copyable, and ordered; they are used both as table
/// cell contents (src/db) and as literals bound into query instances.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : rep_(NullRep{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bool(bool v) { return Value(Rep(BoolRep{v})); }

  ValueType type() const;

  bool is_null() const { return std::holds_alternative<NullRep>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_bool() const { return std::holds_alternative<BoolRep>(rep_); }

  /// True for int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  /// Accessors; behavior is undefined if the type does not match (callers
  /// check type() / is_*() first).
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<BoolRep>(rep_).value; }

  /// Numeric value widened to double (valid for int and double).
  double NumericAsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// SQL three-valued comparison. Returns std::nullopt when either side is
  /// NULL or the types are incomparable (e.g. string vs int). Numeric types
  /// compare after widening to double. Returns <0, 0, >0 otherwise.
  std::optional<int> Compare(const Value& other) const;

  /// Strict equality of representation (NULL == NULL here, unlike SQL `=`;
  /// used for container keys and tests).
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// SQL literal syntax: NULL, 42, 3.5, 'text' (quotes doubled), TRUE.
  std::string ToSqlLiteral() const;

  /// Debug form (strings unquoted).
  std::string ToString() const;

  /// Hash usable for unordered containers keyed on Value.
  size_t Hash() const;

 private:
  struct NullRep {
    bool operator==(const NullRep&) const = default;
  };
  struct BoolRep {
    bool value;
    bool operator==(const BoolRep&) const = default;
  };
  using Rep = std::variant<NullRep, int64_t, double, std::string, BoolRep>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Hash functor for unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace cacheportal::sql

#endif  // CACHEPORTAL_SQL_VALUE_H_
