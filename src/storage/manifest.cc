#include "storage/manifest.h"

#include <optional>
#include <vector>

#include "common/file_util.h"
#include "common/strings.h"

namespace cacheportal::storage {

namespace {

/// Line format, guarded by a trailing CRC over everything before it:
///   cacheportal-manifest 1
///   snapshot <file name, or "-" for none>
///   snapshot_size N
///   snapshot_crc C
///   wal_start K
///   crc C
constexpr char kManifestMagic[] = "cacheportal-manifest 1";

}  // namespace

Status WriteManifest(Env* env, const std::string& dir,
                     const Manifest& manifest) {
  std::string body = StrCat(
      kManifestMagic, "\n",
      "snapshot ",
      manifest.snapshot_file.empty() ? "-" : manifest.snapshot_file, "\n",
      "snapshot_size ", manifest.snapshot_size, "\n",
      "snapshot_crc ", manifest.snapshot_crc, "\n",
      "wal_start ", manifest.wal_start, "\n",
      "next_seq ", manifest.next_seq, "\n");
  std::string contents = StrCat(body, "crc ", Crc32(body), "\n");
  return AtomicFileWriter::Write(env, StrCat(dir, "/", kManifestFileName),
                                 contents);
}

Result<Manifest> ReadManifest(Env* env, const std::string& dir) {
  std::string path = StrCat(dir, "/", kManifestFileName);
  Result<std::string> content = env->ReadFile(path);
  if (!content.ok()) return content.status();

  // Split off the trailing "crc N" line and verify it first: any flip
  // anywhere in the file is one detectable failure, not five.
  size_t crc_line = content->rfind("crc ");
  if (crc_line == std::string::npos || crc_line == 0 ||
      (*content)[crc_line - 1] != '\n') {
    return Status::ParseError("manifest missing crc line");
  }
  std::string body = content->substr(0, crc_line);
  std::vector<std::string> crc_fields =
      StrSplit(StrSplit(content->substr(crc_line), '\n')[0], ' ');
  if (crc_fields.size() != 2) {
    return Status::ParseError("malformed manifest crc line");
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t stored_crc, ParseUint64(crc_fields[1]));
  if (stored_crc != Crc32(body)) {
    return Status::ParseError("manifest crc mismatch");
  }

  std::vector<std::string> lines = StrSplit(body, '\n');
  if (lines.empty() || lines[0] != kManifestMagic) {
    return Status::ParseError("not a cacheportal manifest");
  }
  Manifest out;
  bool saw_snapshot = false, saw_size = false, saw_crc = false,
       saw_start = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> fields = StrSplit(lines[i], ' ');
    if (fields.size() != 2) {
      return Status::ParseError(StrCat("malformed manifest line: ", lines[i]));
    }
    if (fields[0] == "snapshot") {
      out.snapshot_file = fields[1] == "-" ? "" : fields[1];
      saw_snapshot = true;
    } else if (fields[0] == "snapshot_size") {
      CACHEPORTAL_ASSIGN_OR_RETURN(out.snapshot_size, ParseUint64(fields[1]));
      saw_size = true;
    } else if (fields[0] == "snapshot_crc") {
      CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t crc, ParseUint64(fields[1]));
      out.snapshot_crc = static_cast<uint32_t>(crc);
      saw_crc = true;
    } else if (fields[0] == "wal_start") {
      CACHEPORTAL_ASSIGN_OR_RETURN(out.wal_start, ParseUint64(fields[1]));
      saw_start = true;
    } else if (fields[0] == "next_seq") {
      CACHEPORTAL_ASSIGN_OR_RETURN(out.next_seq, ParseUint64(fields[1]));
    } else {
      return Status::ParseError(StrCat("unknown manifest record: ", lines[i]));
    }
  }
  if (!saw_snapshot || !saw_size || !saw_crc || !saw_start ||
      out.wal_start == 0) {
    return Status::ParseError("incomplete manifest");
  }
  return out;
}

}  // namespace cacheportal::storage
