#ifndef CACHEPORTAL_STORAGE_MANIFEST_H_
#define CACHEPORTAL_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/status.h"

namespace cacheportal::storage {

/// The store's root pointer: which snapshot is live and which WAL
/// segment recovery starts replaying from. Installed atomically
/// (AtomicFileWriter), so at any kill point the directory holds either
/// the old manifest or the new one — never a torn mix.
struct Manifest {
  /// File name (within the store directory) of the live snapshot; ""
  /// means no snapshot yet (genesis — replay every segment).
  std::string snapshot_file;
  /// CRC-32 and length of the snapshot payload; recovery refuses a
  /// snapshot whose bytes don't match (bit rot is detected, not
  /// deserialized).
  uint32_t snapshot_crc = 0;
  uint64_t snapshot_size = 0;
  /// First WAL segment recovery must replay (segments below it are
  /// covered by the snapshot and garbage-collected).
  uint64_t wal_start = 1;
  /// The store's record sequence at manifest-write time — the floor for
  /// new sequence numbers when recovery finds no replayable records
  /// (so a restart never reuses a sequence the old incarnation burned).
  uint64_t next_seq = 1;
};

/// Serialized name inside the store directory.
inline constexpr char kManifestFileName[] = "MANIFEST";

/// Atomically (re)writes `dir`/MANIFEST.
Status WriteManifest(Env* env, const std::string& dir,
                     const Manifest& manifest);

/// Reads and validates `dir`/MANIFEST. NotFound when the store has never
/// written one (fresh directory or genesis crash); ParseError when the
/// bytes are corrupt — loud, never a silent empty store.
Result<Manifest> ReadManifest(Env* env, const std::string& dir);

}  // namespace cacheportal::storage

#endif  // CACHEPORTAL_STORAGE_MANIFEST_H_
