#include "storage/metadata_store.h"

#include <algorithm>
#include <utility>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/strings.h"

namespace cacheportal::storage {

DurableMetadataStore::DurableMetadataStore(Env* env, std::string dir,
                                           StoreOptions options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

Status DurableMetadataStore::Open(RecoveredState* out) {
  std::lock_guard<std::mutex> lock(mu_);
  out->snapshot.clear();
  out->records.clear();
  CACHEPORTAL_RETURN_NOT_OK(env_->CreateDir(dir_));

  // ---- Root pointer. ----
  Result<Manifest> manifest = ReadManifest(env_, dir_);
  if (manifest.ok()) {
    manifest_ = *manifest;
  } else if (manifest.status().IsNotFound()) {
    manifest_ = Manifest{};  // Genesis: no snapshot, replay from segment 1.
  } else {
    return manifest.status();  // Corrupt manifest: loud, never silent-empty.
  }

  // ---- Snapshot (the recovery base — its integrity is not optional). ----
  if (!manifest_.snapshot_file.empty()) {
    CACHEPORTAL_ASSIGN_OR_RETURN(
        out->snapshot,
        env_->ReadFile(StrCat(dir_, "/", manifest_.snapshot_file)));
    if (out->snapshot.size() != manifest_.snapshot_size ||
        Crc32(out->snapshot) != manifest_.snapshot_crc) {
      return Status::ParseError(
          StrCat("snapshot ", manifest_.snapshot_file,
                 " does not match its manifest checksum"));
    }
  }

  // ---- The WAL chain. ----
  CACHEPORTAL_ASSIGN_OR_RETURN(std::vector<std::string> names,
                               env_->ListDir(dir_));
  std::vector<uint64_t> segments;
  for (const std::string& name : names) {
    Result<uint64_t> number = ParseWalSegmentFileName(name);
    if (number.ok() && *number >= manifest_.wal_start) {
      segments.push_back(*number);
    }
  }
  std::sort(segments.begin(), segments.end());

  uint64_t next_seq = manifest_.next_seq;
  uint64_t expected_seq = 0;  // First replayed record: any seq.
  // Where the writer resumes: reopen the last clean segment, or create
  // a fresh one after corruption / a fully-torn tail segment.
  bool reopen_last = false;
  uint64_t last_segment = 0;
  uint64_t last_valid_bytes = 0;
  uint64_t create_segment = manifest_.wal_start;

  for (size_t i = 0; i < segments.size(); ++i) {
    // The chain must be contiguous: our writer only ever creates
    // segment N+1 after N, so a hole means files were lost.
    if (i > 0 && segments[i] != segments[i - 1] + 1) {
      stats_.last_quarantine_reason =
          StrCat("WAL chain hole: segment ", segments[i - 1] + 1,
                 " missing before ", segments[i]);
      CACHEPORTAL_RETURN_NOT_OK(QuarantineSegmentLocked(segments[i]));
      reopen_last = false;
      create_segment = segments[i];
      break;
    }
    std::string path = StrCat(dir_, "/", WalSegmentFileName(segments[i]));
    Result<WalSegmentContents> read =
        ReadWalSegment(env_, path, expected_seq);
    if (!read.ok()) {
      // Unreadable file / foreign magic: corruption-class.
      stats_.last_quarantine_reason = read.status().message();
      CACHEPORTAL_RETURN_NOT_OK(QuarantineSegmentLocked(segments[i]));
      reopen_last = false;
      create_segment = segments[i];
      break;
    }
    for (WalRecord& record : read->records) {
      expected_seq = record.seq + 1;
      next_seq = std::max(next_seq, record.seq + 1);
      out->records.push_back(std::move(record));
      ++stats_.records_recovered;
    }
    bool is_last = i + 1 == segments.size();
    if (read->quarantined_bytes > 0) {
      if (read->torn_tail && is_last) {
        // Benign crash residue: un-fsynced bytes at the end of the
        // chain. Truncate and keep appending to this segment.
        stats_.torn_tail_bytes_truncated += read->quarantined_bytes;
        stats_.last_quarantine_reason = read->quarantine_reason;
        if (read->valid_bytes > 0) {
          CACHEPORTAL_RETURN_NOT_OK(
              env_->TruncateFile(path, read->valid_bytes));
          reopen_last = true;
          last_segment = segments[i];
          last_valid_bytes = read->valid_bytes;
        } else {
          // Even the segment header is gone; recreate the file whole.
          CACHEPORTAL_RETURN_NOT_OK(env_->DeleteFile(path));
          reopen_last = false;
          create_segment = segments[i];
        }
      } else {
        // Active corruption (bad CRC, sequence break, bad type) or a
        // tear with more chain after it: refuse everything from here,
        // move it aside, and surface the byte count.
        stats_.quarantined_bytes += read->quarantined_bytes;
        stats_.last_quarantine_reason = read->quarantine_reason;
        CACHEPORTAL_RETURN_NOT_OK(QuarantineSegmentLocked(segments[i]));
        reopen_last = false;
        create_segment = segments[i];
      }
      break;
    }
    if (is_last) {
      reopen_last = true;
      last_segment = segments[i];
      last_valid_bytes = read->valid_bytes;
    }
  }
  if (segments.empty()) {
    reopen_last = false;
    create_segment = manifest_.wal_start;
  }

  if (reopen_last && options_.max_segment_bytes > 0 &&
      last_valid_bytes >= options_.max_segment_bytes) {
    // Full segment: start the next one rather than ping-ponging over
    // the size limit on every restart.
    reopen_last = false;
    create_segment = last_segment + 1;
  }

  if (reopen_last) {
    CACHEPORTAL_ASSIGN_OR_RETURN(
        writer_, WalWriter::OpenForAppend(env_, dir_, last_segment,
                                          last_valid_bytes, next_seq));
  } else {
    CACHEPORTAL_ASSIGN_OR_RETURN(
        writer_, WalWriter::Create(env_, dir_, create_segment, next_seq));
    ++stats_.segments_created;
  }
  opened_ = true;
  return Status::OK();
}

Status DurableMetadataStore::QuarantineSegmentLocked(uint64_t segment_number) {
  // Move this segment and everything after it aside: a replay chain
  // with a hole in the middle would silently hide the records past the
  // hole on the NEXT recovery, so the chain must stay contiguous.
  CACHEPORTAL_ASSIGN_OR_RETURN(std::vector<std::string> names,
                               env_->ListDir(dir_));
  for (const std::string& name : names) {
    Result<uint64_t> number = ParseWalSegmentFileName(name);
    if (!number.ok() || *number < segment_number) continue;
    std::string from = StrCat(dir_, "/", name);
    std::string to = StrCat(dir_, "/quarantine-", name);
    int suffix = 0;
    while (env_->FileExists(to)) {
      to = StrCat(dir_, "/quarantine-", name, ".", ++suffix);
    }
    CACHEPORTAL_RETURN_NOT_OK(env_->RenameFile(from, to));
    ++stats_.segments_quarantined;
  }
  return env_->SyncDir(dir_);
}

Status DurableMetadataStore::Append(RecordType type,
                                    std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return Status::Internal("store not opened");
  if (options_.max_segment_bytes > 0 &&
      writer_->bytes() >= options_.max_segment_bytes) {
    CACHEPORTAL_RETURN_NOT_OK(RotateWalLocked());
  }
  CACHEPORTAL_RETURN_NOT_OK(writer_->Append(type, payload));
  ++stats_.records_appended;
  return Status::OK();
}

Status DurableMetadataStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return Status::Internal("store not opened");
  CACHEPORTAL_RETURN_NOT_OK(writer_->Sync());
  ++stats_.syncs;
  return Status::OK();
}

Status DurableMetadataStore::RotateWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return Status::Internal("store not opened");
  return RotateWalLocked();
}

Status DurableMetadataStore::RotateWalLocked() {
  // The old segment must be durable before the chain grows past it —
  // a successor full of synced records after an unsynced predecessor
  // would read as a mid-chain tear.
  CACHEPORTAL_RETURN_NOT_OK(writer_->Sync());
  ++stats_.syncs;
  CACHEPORTAL_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> next,
      WalWriter::Create(env_, dir_, writer_->segment_number() + 1,
                        writer_->next_seq()));
  writer_ = std::move(next);
  ++stats_.segments_created;
  return Status::OK();
}

Status DurableMetadataStore::InstallSnapshot(std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return Status::Internal("store not opened");
  // Unique name per install: the writer's segment advances with every
  // rotation, and next_seq disambiguates installs within one segment —
  // reusing a name could pair an old manifest with new bytes.
  std::string name = StrCat("snap-", writer_->segment_number(), "-",
                            writer_->next_seq(), ".ckpt");
  CACHEPORTAL_RETURN_NOT_OK(
      AtomicFileWriter::Write(env_, StrCat(dir_, "/", name), payload));

  Manifest next;
  next.snapshot_file = name;
  next.snapshot_crc = Crc32(payload);
  next.snapshot_size = payload.size();
  next.wal_start = writer_->segment_number();
  next.next_seq = writer_->next_seq();
  CACHEPORTAL_RETURN_NOT_OK(WriteManifest(env_, dir_, next));
  manifest_ = next;
  ++stats_.snapshots_written;

  // GC: everything the new manifest no longer references. Best effort —
  // a segment that survives deletion is simply skipped by the next
  // replay (it is below wal_start), so failures here don't matter for
  // correctness.
  Result<std::vector<std::string>> names = env_->ListDir(dir_);
  if (names.ok()) {
    for (const std::string& entry : *names) {
      Result<uint64_t> number = ParseWalSegmentFileName(entry);
      bool stale_segment = number.ok() && *number < manifest_.wal_start;
      // Catches superseded snapshots AND leftover snap-*.tmp files from
      // an install that crashed mid-write.
      bool stale_snapshot = entry.rfind("snap-", 0) == 0 &&
                            entry != manifest_.snapshot_file;
      bool old_quarantine = entry.rfind("quarantine-", 0) == 0;
      if (stale_segment || stale_snapshot || old_quarantine) {
        if (env_->DeleteFile(StrCat(dir_, "/", entry)).ok()) {
          ++stats_.segments_deleted;
        }
      }
    }
    (void)env_->SyncDir(dir_);
  }
  return Status::OK();
}

uint64_t DurableMetadataStore::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_ == nullptr ? 0 : writer_->next_seq();
}

uint64_t DurableMetadataStore::current_segment() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_ == nullptr ? 0 : writer_->segment_number();
}

StoreStats DurableMetadataStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string DurableMetadataStore::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrCat(
      "storage: segment=", writer_ == nullptr ? 0 : writer_->segment_number(),
      " next-seq=", writer_ == nullptr ? 0 : writer_->next_seq(),
      " appended=", stats_.records_appended, " syncs=", stats_.syncs,
      " snapshots=", stats_.snapshots_written,
      " recovered=", stats_.records_recovered,
      " torn-bytes-truncated=", stats_.torn_tail_bytes_truncated,
      " quarantined-bytes=", stats_.quarantined_bytes);
  if (!stats_.last_quarantine_reason.empty()) {
    out += StrCat(" last-quarantine='", stats_.last_quarantine_reason, "'");
  }
  return out;
}

}  // namespace cacheportal::storage
