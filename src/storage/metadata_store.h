#ifndef CACHEPORTAL_STORAGE_METADATA_STORE_H_
#define CACHEPORTAL_STORAGE_METADATA_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "storage/manifest.h"
#include "storage/wal.h"

namespace cacheportal::storage {

struct StoreOptions {
  /// A segment past this size rotates before the next append (0 = never
  /// rotate on size; explicit RotateWal() still works).
  uint64_t max_segment_bytes = 4u << 20;
};

/// Lifetime counters; surfaced through Report() so recovery anomalies
/// (torn tails repaired, corrupt bytes quarantined) reach StatsReport()
/// instead of vanishing into a log nobody reads.
struct StoreStats {
  uint64_t records_appended = 0;
  uint64_t records_recovered = 0;
  uint64_t syncs = 0;
  uint64_t snapshots_written = 0;
  uint64_t segments_created = 0;
  uint64_t segments_deleted = 0;
  /// Bytes of torn tail truncated away on open (benign crash residue).
  uint64_t torn_tail_bytes_truncated = 0;
  /// Bytes refused during replay — everything from the first corrupt
  /// record (bad CRC, sequence break, bad type) to the end of the chain.
  uint64_t quarantined_bytes = 0;
  /// Segment files moved aside (quarantine-*) because of corruption.
  uint64_t segments_quarantined = 0;
  std::string last_quarantine_reason;
};

/// What Open() recovered: the live snapshot payload (the invalidator's
/// Checkpoint() string) plus the valid WAL suffix, in sequence order.
/// The caller applies the snapshot, then replays the records —
/// registrations and retirements buffered until each kCommit, so a cycle
/// that never committed leaves no half-applied trace.
struct RecoveredState {
  std::string snapshot;
  std::vector<WalRecord> records;
};

/// The durable metadata plane: one directory holding a MANIFEST, a chain
/// of WAL segments, and the newest snapshot. Writes go to the WAL
/// (Append + batched Sync); periodically the owner rotates the WAL,
/// serializes a snapshot, and InstallSnapshot() makes it live and
/// garbage-collects the covered segments — so recovery costs the
/// snapshot load plus the WAL suffix (O(delta) since the last
/// snapshot), never a full-history replay.
///
/// Thread-safe: Append may race Sync/rotation (sniffer threads register
/// while the cycle commits); one internal mutex serializes everything.
class DurableMetadataStore {
 public:
  /// `env` not owned. Nothing touches the filesystem until Open().
  DurableMetadataStore(Env* env, std::string dir, StoreOptions options = {});

  DurableMetadataStore(const DurableMetadataStore&) = delete;
  DurableMetadataStore& operator=(const DurableMetadataStore&) = delete;

  /// Recovers the directory: loads the manifest and snapshot, replays
  /// the WAL chain (repairing a torn tail, quarantining corruption), and
  /// leaves the store ready to append. Fails loudly on a corrupt
  /// manifest or snapshot (the base state cannot be trusted); WAL-suffix
  /// damage is contained — replay stops at the last valid record and the
  /// damage is counted in stats(), not crashed on.
  Status Open(RecoveredState* out);

  /// Journals one record. Buffered — not durable until Sync().
  Status Append(RecordType type, std::string_view payload);

  /// Makes every appended record durable (one batched fsync).
  Status Sync();

  /// Syncs and switches appends to a fresh segment. Call before
  /// serializing a snapshot: records landing after the rotation go to
  /// the new segment, which stays in the replay chain.
  Status RotateWal();

  /// Durably installs `payload` as the live snapshot (write-temp +
  /// fsync + rename + dirsync), points the manifest at it and at the
  /// current segment, then garbage-collects covered segments and the
  /// previous snapshot. On any failure the old manifest still governs.
  Status InstallSnapshot(std::string_view payload);

  /// Sequence number the next appended record will carry.
  uint64_t next_seq() const;
  /// Segment currently accepting appends.
  uint64_t current_segment() const;
  const std::string& dir() const { return dir_; }
  StoreStats stats() const;
  /// One-line summary for StatsReport().
  std::string Report() const;

 private:
  /// Caller holds mu_. Moves a corrupt segment (and the chain after it)
  /// aside under quarantine-* names so the next recovery's replay chain
  /// stays contiguous.
  Status QuarantineSegmentLocked(uint64_t segment_number);
  /// Caller holds mu_. Sync + fresh segment.
  Status RotateWalLocked();

  Env* env_;
  std::string dir_;
  StoreOptions options_;

  mutable std::mutex mu_;
  bool opened_ = false;
  std::unique_ptr<WalWriter> writer_;
  Manifest manifest_;
  StoreStats stats_;
};

}  // namespace cacheportal::storage

#endif  // CACHEPORTAL_STORAGE_METADATA_STORE_H_
