#include "storage/wal.h"

#include <utility>

#include "common/file_util.h"
#include "common/strings.h"

namespace cacheportal::storage {

namespace {

/// 8-byte file magic + fixed64 segment number.
constexpr char kSegmentMagic[] = "CPWAL001";
constexpr size_t kSegmentHeaderSize = 16;
/// len(4) + crc(4) + seq(8) + type(1).
constexpr size_t kRecordHeaderSize = 17;
/// A length field above this is garbage, not a big record — without a
/// cap, a bit-flipped length would masquerade as a torn tail and truncate
/// away everything after it.
constexpr uint32_t kMaxRecordLen = 1u << 30;

}  // namespace

std::string WalSegmentFileName(uint64_t segment_number) {
  std::string digits = StrCat(segment_number);
  while (digits.size() < 6) digits.insert(digits.begin(), '0');
  return StrCat("wal-", digits, ".log");
}

Result<uint64_t> ParseWalSegmentFileName(const std::string& name) {
  if (name.size() < 9 || name.substr(0, 4) != "wal-" ||
      name.substr(name.size() - 4) != ".log") {
    return Status::NotFound(StrCat("not a WAL segment name: ", name));
  }
  return ParseUint64(name.substr(4, name.size() - 8));
}

Result<WalSegmentContents> ReadWalSegment(Env* env, const std::string& path,
                                          uint64_t expect_first_seq) {
  CACHEPORTAL_ASSIGN_OR_RETURN(std::string content, env->ReadFile(path));
  WalSegmentContents out;
  if (content.size() < kSegmentHeaderSize) {
    // The file header itself never became durable — the residue of a
    // crash between segment creation and the first sync. Nothing valid
    // to keep.
    out.valid_bytes = 0;
    out.quarantined_bytes = content.size();
    out.quarantine_reason = "segment header cut short";
    out.torn_tail = true;
    return out;
  }
  if (content.compare(0, 8, kSegmentMagic, 8) != 0) {
    return Status::ParseError(StrCat("bad WAL segment magic in ", path));
  }
  out.segment_number = GetFixed64(content.data() + 8);

  size_t pos = kSegmentHeaderSize;
  uint64_t expected = expect_first_seq;
  auto stop = [&](std::string reason, bool torn) {
    out.quarantine_reason = std::move(reason);
    out.torn_tail = torn;
  };
  while (pos < content.size()) {
    if (content.size() - pos < kRecordHeaderSize) {
      stop("record header cut short", /*torn=*/true);
      break;
    }
    uint32_t len = GetFixed32(content.data() + pos);
    uint32_t crc = GetFixed32(content.data() + pos + 4);
    uint64_t seq = GetFixed64(content.data() + pos + 8);
    uint8_t type = static_cast<uint8_t>(content[pos + 16]);
    if (len > kMaxRecordLen) {
      stop(StrCat("absurd record length ", len), /*torn=*/false);
      break;
    }
    if (pos + kRecordHeaderSize + len > content.size()) {
      stop("record payload cut short", /*torn=*/true);
      break;
    }
    // The CRC covers (seq || type || payload) — exactly the bytes from
    // offset 8 of the record header through the payload's end.
    std::string_view covered(content.data() + pos + 8, 9 + len);
    if (Crc32(covered) != crc) {
      stop(StrCat("crc mismatch at seq ", seq), /*torn=*/false);
      break;
    }
    if (type < static_cast<uint8_t>(RecordType::kRegistration) ||
        type > static_cast<uint8_t>(RecordType::kCommit)) {
      stop(StrCat("unknown record type ", static_cast<uint64_t>(type)),
           /*torn=*/false);
      break;
    }
    if (expected != 0 && seq != expected) {
      stop(StrCat("sequence break: got ", seq, ", expected ", expected),
           /*torn=*/false);
      break;
    }
    WalRecord record;
    record.seq = seq;
    record.type = static_cast<RecordType>(type);
    record.payload = content.substr(pos + kRecordHeaderSize, len);
    out.records.push_back(std::move(record));
    pos += kRecordHeaderSize + len;
    expected = seq + 1;
  }
  out.valid_bytes = pos;
  out.quarantined_bytes = content.size() - pos;
  return out;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Env* env,
                                                     const std::string& dir,
                                                     uint64_t segment_number,
                                                     uint64_t next_seq) {
  std::string path = StrCat(dir, "/", WalSegmentFileName(segment_number));
  if (env->FileExists(path)) {
    return Status::AlreadyExists(StrCat("WAL segment exists: ", path));
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                               env->NewWritableFile(path, /*truncate=*/false));
  std::string header(kSegmentMagic, 8);
  PutFixed64(&header, segment_number);
  CACHEPORTAL_RETURN_NOT_OK(file->Append(header));
  // Publish the name now; the header bytes ride with the first batch
  // sync (an unsynced empty segment recovers as a torn header, which the
  // store recreates).
  CACHEPORTAL_RETURN_NOT_OK(env->SyncDir(dir));
  return std::unique_ptr<WalWriter>(new WalWriter(
      std::move(file), segment_number, next_seq, kSegmentHeaderSize));
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    Env* env, const std::string& dir, uint64_t segment_number,
    uint64_t valid_bytes, uint64_t next_seq) {
  std::string path = StrCat(dir, "/", WalSegmentFileName(segment_number));
  CACHEPORTAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                               env->NewWritableFile(path, /*truncate=*/false));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), segment_number, next_seq, valid_bytes));
}

Status WalWriter::Append(RecordType type, std::string_view payload) {
  std::string body;
  body.reserve(9 + payload.size());
  PutFixed64(&body, next_seq_);
  body.push_back(static_cast<char>(type));
  body.append(payload.data(), payload.size());
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, Crc32(body));
  record += body;
  CACHEPORTAL_RETURN_NOT_OK(file_->Append(record));
  ++next_seq_;
  bytes_ += record.size();
  return Status::OK();
}

Status WalWriter::Sync() { return file_->Sync(); }

}  // namespace cacheportal::storage
