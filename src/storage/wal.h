#ifndef CACHEPORTAL_STORAGE_WAL_H_
#define CACHEPORTAL_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace cacheportal::storage {

/// What a WAL record carries. Values are wire format — never renumber.
enum class RecordType : uint8_t {
  /// Payload: the SQL of a query instance that registered.
  kRegistration = 1,
  /// Payload: the SQL of a query instance that retired.
  kRetirement = 2,
  /// Payload: the invalidator's per-cycle durable delta (cursor
  /// positions, statistics, changed sink state). A commit marks every
  /// record before it as part of a completed cycle; recovery discards
  /// the uncommitted tail.
  kCommit = 3,
};

/// One recovered WAL record.
struct WalRecord {
  uint64_t seq = 0;
  RecordType type = RecordType::kRegistration;
  std::string payload;
};

/// The parse of one segment file. `records` is the longest valid prefix;
/// everything after it is quarantined, with a reason, rather than
/// trusted or crashed on.
struct WalSegmentContents {
  uint64_t segment_number = 0;
  std::vector<WalRecord> records;
  /// Byte length of the valid prefix (file-header included).
  uint64_t valid_bytes = 0;
  /// Bytes after the valid prefix (0 when the file parses cleanly).
  uint64_t quarantined_bytes = 0;
  /// Why parsing stopped ("" when clean). Torn tails (a record cut off
  /// mid-bytes) and corrupt records (bad CRC, bad length, sequence
  /// break) both land here; the caller decides which are repairable.
  std::string quarantine_reason;
  /// True when the quarantined suffix is a bare torn tail: a final
  /// record whose bytes simply stop early — the expected residue of a
  /// crash mid-append, safe to truncate away. False for active
  /// corruption (CRC mismatch, sequence break) inside complete records.
  bool torn_tail = false;
};

/// "wal-000042.log" for segment 42. Sorts numerically as text.
std::string WalSegmentFileName(uint64_t segment_number);
/// Inverse of WalSegmentFileName; NotFound for non-WAL names.
Result<uint64_t> ParseWalSegmentFileName(const std::string& name);

/// Parses segment file `path`. `expect_first_seq` of 0 accepts any
/// starting sequence; otherwise the first record must carry exactly that
/// seq (cross-segment continuity). Each record must chain +1 from its
/// predecessor — duplicates and reorderings quarantine the suffix.
/// Only I/O errors and a bad file header fail the call.
Result<WalSegmentContents> ReadWalSegment(Env* env, const std::string& path,
                                          uint64_t expect_first_seq);

/// Appender for one open segment. Records are framed
///   [len u32][crc u32][seq u64][type u8][payload]
/// little-endian, CRC-32 over (seq || type || payload); `len` counts the
/// payload alone. Appends buffer in the env; Sync() makes the batch
/// durable.
class WalWriter {
 public:
  /// Creates segment `segment_number` in `dir` (fails if the file
  /// exists). `next_seq` numbers the first record appended.
  static Result<std::unique_ptr<WalWriter>> Create(Env* env,
                                                   const std::string& dir,
                                                   uint64_t segment_number,
                                                   uint64_t next_seq);

  /// Reopens an existing, fully validated segment for append.
  /// `valid_bytes`/`next_seq` come from ReadWalSegment (the caller has
  /// already truncated any torn tail).
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      Env* env, const std::string& dir, uint64_t segment_number,
      uint64_t valid_bytes, uint64_t next_seq);

  Status Append(RecordType type, std::string_view payload);
  Status Sync();

  uint64_t segment_number() const { return segment_number_; }
  /// Sequence the next appended record will carry.
  uint64_t next_seq() const { return next_seq_; }
  /// Segment size if every appended byte reaches the file.
  uint64_t bytes() const { return bytes_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, uint64_t segment_number,
            uint64_t next_seq, uint64_t bytes)
      : file_(std::move(file)),
        segment_number_(segment_number),
        next_seq_(next_seq),
        bytes_(bytes) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t segment_number_;
  uint64_t next_seq_;
  uint64_t bytes_;
};

}  // namespace cacheportal::storage

#endif  // CACHEPORTAL_STORAGE_WAL_H_
