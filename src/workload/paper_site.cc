#include "workload/paper_site.h"

#include "common/strings.h"

namespace cacheportal::workload {

const char* PageClassName(PageClass cls) {
  switch (cls) {
    case PageClass::kLight:
      return "light";
    case PageClass::kMedium:
      return "medium";
    case PageClass::kHeavy:
      return "heavy";
  }
  return "?";
}

std::string PaperSite::PageSql(PageClass cls, int grp) {
  switch (cls) {
    case PageClass::kLight:
      return StrCat("SELECT id, val FROM SmallT WHERE grp = ", grp,
                    " ORDER BY id");
    case PageClass::kMedium:
      return StrCat("SELECT id, val FROM LargeT WHERE grp = ", grp,
                    " ORDER BY id");
    case PageClass::kHeavy:
      return StrCat(
          "SELECT COUNT(*) AS pairs, MAX(LargeT.val) AS best FROM SmallT, "
          "LargeT WHERE SmallT.grp = LargeT.grp AND SmallT.grp = ",
          grp);
  }
  return "";
}

std::string PaperSite::RenderBody(PageClass cls, int grp,
                                  const db::QueryResult& result) {
  return StrCat("<html><h1>", PageClassName(cls), " page, group ", grp,
                "</h1><pre>", result.ToString(), "</pre></html>");
}

PaperSite::PaperSite(PaperSiteOptions options)
    : options_(options), db_(&clock_), rng_(options.seed) {
  // ---- Schema and data (Section 5.2.1). ----
  db_.CreateTable(db::TableSchema("SmallT",
                                  {{"id", db::ColumnType::kInt},
                                   {"grp", db::ColumnType::kInt},
                                   {"val", db::ColumnType::kInt}}))
      .ok();
  db_.CreateTable(db::TableSchema("LargeT",
                                  {{"id", db::ColumnType::kInt},
                                   {"grp", db::ColumnType::kInt},
                                   {"val", db::ColumnType::kInt}}))
      .ok();
  db_.CreateIndex("SmallT", "grp").ok();
  db_.CreateIndex("LargeT", "grp").ok();
  for (int i = 0; i < options_.small_rows; ++i) {
    db_.ExecuteSql(StrCat("INSERT INTO SmallT VALUES (", next_small_id_++,
                          ", ", rng_.Uniform(options_.join_values), ", ",
                          rng_.Uniform(10000), ")"))
        .value();
  }
  for (int i = 0; i < options_.large_rows; ++i) {
    db_.ExecuteSql(StrCat("INSERT INTO LargeT VALUES (", next_large_id_++,
                          ", ", rng_.Uniform(options_.join_values), ", ",
                          rng_.Uniform(10000), ")"))
        .value();
  }

  // ---- CachePortal attaches to the populated site. ----
  core::CachePortalOptions portal_options = options_.portal;
  portal_options.page_cache_capacity = options_.cache_capacity;
  portal_ = std::make_unique<core::CachePortal>(&db_, &clock_,
                                                portal_options);

  // ---- JDBC wiring with the sniffer's query logger. ----
  auto raw = std::make_unique<server::MemoryDbDriver>();
  raw->BindDatabase("papersite", &db_);
  drivers_.RegisterDriver(portal_->WrapDriver(raw.get()));
  raw_driver_ = std::move(raw);
  pool_ = std::move(
      server::ConnectionPool::Create(
          "pool", "jdbc:cacheportal-log:jdbc:cacheportal:papersite", 4,
          &drivers_)
          .value());

  // ---- Servlets. ----
  app_ = std::make_unique<server::ApplicationServer>(pool_.get());
  auto register_page = [this](const std::string& path, PageClass cls) {
    app_->RegisterServlet(
            path,
            std::make_unique<server::FunctionServlet>(
                [this, cls](const http::HttpRequest& req,
                            server::ServletContext* ctx) {
                  int grp = 0;
                  if (auto it = req.get_params.find("grp");
                      it != req.get_params.end()) {
                    grp = static_cast<int>(
                        std::strtol(it->second.c_str(), nullptr, 10));
                  }
                  clock_.Advance(500);  // Servlet compute time.
                  auto result =
                      ctx->connection->ExecuteQuery(PageSql(cls, grp));
                  if (!result.ok()) {
                    return http::HttpResponse::ServerError(
                        result.status().ToString());
                  }
                  return http::HttpResponse::Ok(
                      RenderBody(cls, grp, *result));
                }),
            server::ServletConfig{})
        .ok();
    server::ServletConfig config;
    config.name = path;
    config.key_get_params = {"grp"};
    portal_->RegisterServlet(config);
  };
  register_page("/light", PageClass::kLight);
  register_page("/medium", PageClass::kMedium);
  register_page("/heavy", PageClass::kHeavy);

  portal_->AttachTo(app_.get());
  proxy_ = portal_->CreateProxy(app_.get());
}

http::HttpResponse PaperSite::Request(PageClass cls, int grp) {
  const char* path = cls == PageClass::kLight    ? "/light"
                     : cls == PageClass::kMedium ? "/medium"
                                                 : "/heavy";
  auto req = http::HttpRequest::Get(
      StrCat("http://papersite", path, "?grp=", grp));
  clock_.Advance(200);
  return proxy_->Handle(*req);
}

void PaperSite::RandomUpdate() {
  bool small = rng_.OneIn(0.5);
  const char* table = small ? "SmallT" : "LargeT";
  int* next_id = small ? &next_small_id_ : &next_large_id_;
  clock_.Advance(100);
  if (rng_.OneIn(0.5) || *next_id == 0) {
    db_.ExecuteSql(StrCat("INSERT INTO ", table, " VALUES (", (*next_id)++,
                          ", ", rng_.Uniform(options_.join_values), ", ",
                          rng_.Uniform(10000), ")"))
        .value();
  } else {
    // Delete a random id; may be a no-op if already deleted.
    db_.ExecuteSql(StrCat("DELETE FROM ", table, " WHERE id = ",
                          rng_.Uniform(static_cast<uint64_t>(*next_id))))
        .value();
  }
}

Result<invalidator::CycleReport> PaperSite::RunCycle() {
  clock_.Advance(kMicrosPerSecond);  // One synchronization interval.
  return portal_->RunCycle();
}

Result<std::string> PaperSite::FreshBody(PageClass cls, int grp) {
  CACHEPORTAL_ASSIGN_OR_RETURN(db::QueryResult result,
                               db_.ExecuteSql(PageSql(cls, grp)));
  return RenderBody(cls, grp, result);
}

}  // namespace cacheportal::workload
