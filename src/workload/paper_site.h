#ifndef CACHEPORTAL_WORKLOAD_PAPER_SITE_H_
#define CACHEPORTAL_WORKLOAD_PAPER_SITE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"

namespace cacheportal::workload {

/// The paper's page classes (Section 5.2.1): a light page selects on the
/// small table, a medium page on the large table, a heavy page runs a
/// select-join over both.
enum class PageClass { kLight = 0, kMedium = 1, kHeavy = 2 };

const char* PageClassName(PageClass cls);

/// Construction parameters mirroring Section 5.2.1's application: one
/// small and one large table sharing a join attribute with
/// `join_values` uniformly distributed values (selectivity
/// 1/join_values).
struct PaperSiteOptions {
  int small_rows = 500;
  int large_rows = 2500;
  int join_values = 10;
  size_t cache_capacity = 10000;
  uint64_t seed = 42;
  core::CachePortalOptions portal;
};

/// A complete database-driven site with CachePortal attached — the
/// "simple database driven e-commerce application" the paper evaluates,
/// built on the real library (not the simulator). Used by the stress
/// tests, the end-to-end benchmark, and as a template for deployments.
///
/// Pages:
///   /light?grp=G   rows of the small table in group G
///   /medium?grp=G  rows of the large table in group G
///   /heavy?grp=G   COUNT of the join restricted to group G
///
/// `grp` is the only key parameter of each servlet.
class PaperSite {
 public:
  explicit PaperSite(PaperSiteOptions options = {});

  PaperSite(const PaperSite&) = delete;
  PaperSite& operator=(const PaperSite&) = delete;

  /// Serves one request through the front cache. `grp` must be in
  /// [0, join_values).
  http::HttpResponse Request(PageClass cls, int grp);

  /// Applies one random update (insert or delete, small or large table).
  void RandomUpdate();

  /// Applies `n` random updates.
  void RandomUpdates(int n) {
    for (int i = 0; i < n; ++i) RandomUpdate();
  }

  /// One CachePortal synchronization point (mapper + invalidation cycle).
  Result<invalidator::CycleReport> RunCycle();

  /// Ground truth: the body the servlet would produce right now,
  /// computed directly against the database. A cached HIT whose body
  /// differs from this is stale.
  Result<std::string> FreshBody(PageClass cls, int grp);

  core::CachePortal* portal() { return portal_.get(); }
  core::CachingProxy* proxy() { return proxy_; }
  db::Database* database() { return &db_; }
  ManualClock* clock() { return &clock_; }
  const PaperSiteOptions& options() const { return options_; }
  int join_values() const { return options_.join_values; }

 private:
  static std::string PageSql(PageClass cls, int grp);
  static std::string RenderBody(PageClass cls, int grp,
                                const db::QueryResult& result);

  PaperSiteOptions options_;
  ManualClock clock_;
  db::Database db_;
  // Created after the tables are seeded, so the invalidator attaches at
  // the post-seeding log position.
  std::unique_ptr<core::CachePortal> portal_;
  std::unique_ptr<server::Driver> raw_driver_;
  server::DriverManager drivers_;
  std::unique_ptr<server::ConnectionPool> pool_;
  std::unique_ptr<server::ApplicationServer> app_;
  core::CachingProxy* proxy_ = nullptr;
  Random rng_;
  int next_small_id_ = 0;
  int next_large_id_ = 0;
};

}  // namespace cacheportal::workload

#endif  // CACHEPORTAL_WORKLOAD_PAPER_SITE_H_
