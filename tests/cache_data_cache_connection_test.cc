#include <gtest/gtest.h>

#include "cache/data_cache_connection.h"
#include "common/clock.h"
#include "db/database.h"

namespace cacheportal::cache {
namespace {

using sql::Value;

class DataCacheConnectionTest : public ::testing::Test {
 protected:
  DataCacheConnectionTest() : db_(&clock_) {}

  void SetUp() override {
    db_.ExecuteSql("CREATE TABLE Item (name TEXT, price INT)").value();
    db_.ExecuteSql("INSERT INTO Item VALUES ('pen', 2)").value();
    driver_.BindDatabase("shop", &db_);
    inner_ = std::move(driver_.Connect("jdbc:cacheportal:shop").value());
    conn_ = std::make_unique<DataCacheConnection>(inner_.get(), 100);
  }

  ManualClock clock_;
  db::Database db_;
  server::MemoryDbDriver driver_;
  std::unique_ptr<server::Connection> inner_;
  std::unique_ptr<DataCacheConnection> conn_;
};

TEST_F(DataCacheConnectionTest, RepeatedSelectsServedFromCache) {
  uint64_t before = db_.queries_executed();
  conn_->ExecuteQuery("SELECT * FROM Item").value();
  conn_->ExecuteQuery("SELECT * FROM Item").value();
  conn_->ExecuteQuery("SELECT * FROM Item").value();
  EXPECT_EQ(db_.queries_executed(), before + 1);
  EXPECT_EQ(conn_->stats().hits, 2u);
}

TEST_F(DataCacheConnectionTest, OwnWritesInvalidateImmediately) {
  conn_->ExecuteQuery("SELECT * FROM Item").value();
  EXPECT_EQ(conn_->ExecuteUpdate("INSERT INTO Item VALUES ('ink', 5)")
                .value(),
            1);
  // The next read sees the new row without any synchronization step.
  auto rows = conn_->ExecuteQuery("SELECT * FROM Item");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
}

TEST_F(DataCacheConnectionTest, ForeignWritesNeedSynchronization) {
  conn_->ExecuteQuery("SELECT * FROM Item").value();
  uint64_t seq = db_.update_log().LastSeq();
  // An update through ANOTHER path (backend process).
  db_.ExecuteSql("INSERT INTO Item VALUES ('ink', 5)").value();

  // Without synchronization the cache is stale (by design — this is the
  // consistency cost the paper charges Configuration II for).
  EXPECT_EQ(conn_->ExecuteQuery("SELECT * FROM Item")->rows.size(), 1u);

  db::DeltaSet deltas =
      db::DeltaSet::FromRecords(db_.update_log().ReadSince(seq));
  EXPECT_EQ(conn_->Synchronize(deltas), 1u);
  EXPECT_EQ(conn_->ExecuteQuery("SELECT * FROM Item")->rows.size(), 2u);
}

TEST_F(DataCacheConnectionTest, DistinctQueriesCachedSeparately) {
  conn_->ExecuteQuery("SELECT * FROM Item WHERE price < 10").value();
  conn_->ExecuteQuery("SELECT * FROM Item WHERE price < 99").value();
  EXPECT_EQ(conn_->size(), 2u);
}

TEST_F(DataCacheConnectionTest, ErrorsPassThroughUncached) {
  EXPECT_FALSE(conn_->ExecuteQuery("SELECT * FROM Nope").ok());
  EXPECT_FALSE(conn_->ExecuteQuery("garbage").ok());
  EXPECT_EQ(conn_->size(), 0u);
}

}  // namespace
}  // namespace cacheportal::cache
