#include <gtest/gtest.h>

#include "cache/data_cache.h"

namespace cacheportal::cache {
namespace {

using sql::Value;

db::QueryResult OneCell(int64_t v) {
  db::QueryResult r;
  r.columns = {"x"};
  r.rows = {{Value::Int(v)}};
  return r;
}

db::UpdateRecord Update(const std::string& table) {
  db::UpdateRecord rec;
  rec.seq = 1;
  rec.table = table;
  rec.op = db::UpdateOp::kInsert;
  rec.row = {Value::Int(0)};
  return rec;
}

TEST(DataCacheTest, MissThenHit) {
  DataCache cache(10);
  EXPECT_FALSE(cache.Lookup("SELECT 1").has_value());
  cache.Store("SELECT 1", OneCell(1), {"Car"});
  auto hit = cache.Lookup("SELECT 1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rows[0][0], Value::Int(1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DataCacheTest, SynchronizeInvalidatesTouchedTables) {
  DataCache cache(10);
  cache.Store("q1", OneCell(1), {"Car"});
  cache.Store("q2", OneCell(2), {"Mileage"});
  cache.Store("q3", OneCell(3), {"Car", "Mileage"});

  db::DeltaSet deltas;
  deltas.Add(Update("Car"));
  EXPECT_EQ(cache.Synchronize(deltas), 2u);  // q1 and q3.
  EXPECT_FALSE(cache.Lookup("q1").has_value());
  EXPECT_TRUE(cache.Lookup("q2").has_value());
  EXPECT_FALSE(cache.Lookup("q3").has_value());
  EXPECT_EQ(cache.stats().synchronizations, 1u);
  EXPECT_EQ(cache.stats().entries_invalidated, 2u);
}

TEST(DataCacheTest, SynchronizeTableNamesCaseInsensitive) {
  DataCache cache(10);
  cache.Store("q", OneCell(1), {"CAR"});
  db::DeltaSet deltas;
  deltas.Add(Update("car"));
  EXPECT_EQ(cache.Synchronize(deltas), 1u);
}

TEST(DataCacheTest, EmptySynchronizeIsNoOp) {
  DataCache cache(10);
  cache.Store("q", OneCell(1), {"Car"});
  db::DeltaSet deltas;
  EXPECT_EQ(cache.Synchronize(deltas), 0u);
  EXPECT_TRUE(cache.Lookup("q").has_value());
}

TEST(DataCacheTest, InvalidateTable) {
  DataCache cache(10);
  cache.Store("q1", OneCell(1), {"Car"});
  cache.Store("q2", OneCell(2), {"Other"});
  EXPECT_EQ(cache.InvalidateTable("Car"), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DataCacheTest, LruEviction) {
  DataCache cache(2);
  cache.Store("q1", OneCell(1), {"T"});
  cache.Store("q2", OneCell(2), {"T"});
  cache.Lookup("q1");  // q2 becomes the victim.
  cache.Store("q3", OneCell(3), {"T"});
  EXPECT_TRUE(cache.Lookup("q1").has_value());
  EXPECT_FALSE(cache.Lookup("q2").has_value());
  EXPECT_TRUE(cache.Lookup("q3").has_value());
}

TEST(DataCacheTest, StoreReplaces) {
  DataCache cache(10);
  cache.Store("q", OneCell(1), {"A"});
  cache.Store("q", OneCell(2), {"B"});
  EXPECT_EQ(cache.Lookup("q")->rows[0][0], Value::Int(2));
  // The replacement's table set wins: sync on A must not invalidate.
  db::DeltaSet deltas;
  deltas.Add(Update("A"));
  EXPECT_EQ(cache.Synchronize(deltas), 0u);
}

TEST(DataCacheTest, Clear) {
  DataCache cache(10);
  cache.Store("q", OneCell(1), {"T"});
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace cacheportal::cache
