#include <gtest/gtest.h>

#include "cache/page_cache.h"
#include "common/clock.h"

namespace cacheportal::cache {
namespace {

http::PageId Page(const std::string& path, const std::string& model = "") {
  http::PageId id("shop", path);
  if (!model.empty()) id.get_params()["model"] = model;
  return id;
}

http::HttpResponse CacheableResponse(const std::string& body) {
  http::HttpResponse resp = http::HttpResponse::Ok(body);
  http::CacheControl cc;
  cc.is_private = true;
  cc.owner = http::kCachePortalOwner;
  resp.SetCacheControl(cc);
  return resp;
}

class PageCacheTest : public ::testing::Test {
 protected:
  ManualClock clock_;
};

TEST_F(PageCacheTest, MissThenHit) {
  PageCache cache(10, &clock_);
  http::PageId page = Page("/cars", "Avalon");
  EXPECT_FALSE(cache.Lookup(page).has_value());
  EXPECT_TRUE(cache.Store(page, CacheableResponse("body")));
  auto hit = cache.Lookup(page);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, "body");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().HitRatio(), 0.5, 1e-9);
}

TEST_F(PageCacheTest, DifferentKeyParamsDifferentEntries) {
  PageCache cache(10, &clock_);
  cache.Store(Page("/cars", "Avalon"), CacheableResponse("a"));
  cache.Store(Page("/cars", "Civic"), CacheableResponse("c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(Page("/cars", "Avalon"))->body, "a");
  EXPECT_EQ(cache.Lookup(Page("/cars", "Civic"))->body, "c");
}

TEST_F(PageCacheTest, NonCacheableResponsesRejected) {
  PageCache cache(10, &clock_);
  http::HttpResponse no_cache = http::HttpResponse::Ok("x");
  http::CacheControl cc;
  cc.no_cache = true;
  no_cache.SetCacheControl(cc);
  EXPECT_FALSE(cache.Store(Page("/a"), no_cache));

  http::HttpResponse foreign = http::HttpResponse::Ok("x");
  http::CacheControl cc2;
  cc2.is_private = true;
  cc2.owner = "someone-else";
  foreign.SetCacheControl(cc2);
  EXPECT_FALSE(cache.Store(Page("/b"), foreign));
  EXPECT_EQ(cache.stats().rejected_stores, 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PageCacheTest, PublicResponsesCacheable) {
  PageCache cache(10, &clock_);
  http::HttpResponse resp = http::HttpResponse::Ok("x");
  http::CacheControl cc;
  cc.is_public = true;
  resp.SetCacheControl(cc);
  EXPECT_TRUE(cache.Store(Page("/a"), resp));
}

TEST_F(PageCacheTest, MaxAgeExpiry) {
  PageCache cache(10, &clock_);
  http::HttpResponse resp = CacheableResponse("x");
  http::CacheControl cc = resp.GetCacheControl();
  cc.max_age_seconds = 5;
  resp.SetCacheControl(cc);
  cache.Store(Page("/a"), resp);
  clock_.Advance(4 * kMicrosPerSecond);
  EXPECT_TRUE(cache.Lookup(Page("/a")).has_value());
  clock_.Advance(2 * kMicrosPerSecond);
  EXPECT_FALSE(cache.Lookup(Page("/a")).has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
}

TEST_F(PageCacheTest, LruEviction) {
  PageCache cache(2, &clock_);
  cache.Store(Page("/a"), CacheableResponse("a"));
  cache.Store(Page("/b"), CacheableResponse("b"));
  // Touch /a so /b is the LRU victim.
  cache.Lookup(Page("/a"));
  cache.Store(Page("/c"), CacheableResponse("c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(Page("/a")));
  EXPECT_FALSE(cache.Contains(Page("/b")));
  EXPECT_TRUE(cache.Contains(Page("/c")));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST_F(PageCacheTest, InvalidateRemovesEntry) {
  PageCache cache(10, &clock_);
  cache.Store(Page("/a"), CacheableResponse("a"));
  EXPECT_TRUE(cache.Invalidate(Page("/a")));
  EXPECT_FALSE(cache.Invalidate(Page("/a")));
  EXPECT_FALSE(cache.Lookup(Page("/a")).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST_F(PageCacheTest, EjectMessageProtocol) {
  PageCache cache(10, &clock_);
  http::PageId page = Page("/cars", "Avalon");
  cache.Store(page, CacheableResponse("stale soon"));

  // Build the invalidation message the paper describes: a normal request
  // carrying Cache-Control: eject.
  http::HttpRequest eject;
  eject.host = page.host();
  eject.path = page.path();
  eject.get_params = page.get_params();
  eject.headers.Set("Cache-Control", "eject");
  EXPECT_EQ(cache.HandleInvalidationRequest(eject).status_code, 204);
  EXPECT_FALSE(cache.Contains(page));
  // Second eject: page no longer cached.
  EXPECT_EQ(cache.HandleInvalidationRequest(eject).status_code, 404);

  // Without the directive the message is rejected.
  http::HttpRequest plain;
  plain.host = page.host();
  plain.path = page.path();
  EXPECT_EQ(cache.HandleInvalidationRequest(plain).status_code, 400);
}

TEST_F(PageCacheTest, InvalidateMatchingBulk) {
  PageCache cache(10, &clock_);
  cache.Store(Page("/cars", "Avalon"), CacheableResponse("a"));
  cache.Store(Page("/cars", "Civic"), CacheableResponse("c"));
  cache.Store(Page("/other"), CacheableResponse("o"));
  size_t removed = cache.InvalidateMatching([](const std::string& key) {
    return key.find("/cars") != std::string::npos;
  });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(PageCacheTest, StoreReplacesExisting) {
  PageCache cache(10, &clock_);
  cache.Store(Page("/a"), CacheableResponse("v1"));
  cache.Store(Page("/a"), CacheableResponse("v2"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(Page("/a"))->body, "v2");
}

TEST_F(PageCacheTest, ClearAndKeys) {
  PageCache cache(10, &clock_);
  cache.Store(Page("/a"), CacheableResponse("a"));
  cache.Store(Page("/b"), CacheableResponse("b"));
  EXPECT_EQ(cache.Keys().size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PageCacheTest, CapacityZeroBecomesOne) {
  PageCache cache(0, &clock_);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Store(Page("/a"), CacheableResponse("a"));
  cache.Store(Page("/b"), CacheableResponse("b"));
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace cacheportal::cache
