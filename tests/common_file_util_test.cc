#include "common/file_util.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/env.h"
#include "common/fault_injector.h"
#include "common/strings.h"

namespace cacheportal {
namespace {

// ---- Crc32. ----

TEST(Crc32Test, KnownVectors) {
  // The CRC-32/IEEE check value ("123456789" -> 0xCBF43926) pins the
  // polynomial, reflection, and final XOR — any implementation drift and
  // every WAL record ever written becomes unreadable.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, Chains) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    EXPECT_EQ(Crc32(data.substr(split), Crc32(data.substr(0, split))),
              Crc32(data))
        << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "invalidator metadata record";
  uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(flipped), clean);
    }
  }
}

TEST(FixedCodecTest, RoundTripsAndIsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x01020304u);
  PutFixed64(&buf, 0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 12u);
  // Wire format is little-endian regardless of host.
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(buf[4]), 0x08);
  EXPECT_EQ(GetFixed32(buf.data()), 0x01020304u);
  EXPECT_EQ(GetFixed64(buf.data() + 4), 0x0102030405060708ull);

  std::string extremes;
  PutFixed32(&extremes, 0);
  PutFixed32(&extremes, ~uint32_t{0});
  PutFixed64(&extremes, ~uint64_t{0});
  EXPECT_EQ(GetFixed32(extremes.data()), 0u);
  EXPECT_EQ(GetFixed32(extremes.data() + 4), ~uint32_t{0});
  EXPECT_EQ(GetFixed64(extremes.data() + 8), ~uint64_t{0});
}

// ---- SimEnv durability semantics. ----

TEST(SimEnvTest, UnsyncedBytesDieInACrash) {
  SimEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto file = env.NewWritableFile("d/f", /*truncate=*/false).value();
  ASSERT_TRUE(env.SyncDir("d").ok());  // Make the NAME durable too.
  ASSERT_TRUE(file->Append("synced").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("volatile").ok());
  EXPECT_EQ(env.ReadFile("d/f").value(), "syncedvolatile");

  env.Recover();  // Power cut.
  EXPECT_EQ(env.ReadFile("d/f").value(), "synced");
  // The pre-crash handle is stale; a fresh open is required.
  EXPECT_FALSE(file->Append("more").ok());
}

TEST(SimEnvTest, UnsyncedNamesDieInACrash) {
  SimEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  {
    auto file = env.NewWritableFile("d/f", false).value();
    ASSERT_TRUE(file->Append("x").ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  // Content synced, name not: the file vanishes wholesale.
  env.Recover();
  EXPECT_FALSE(env.FileExists("d/f"));

  {
    auto file = env.NewWritableFile("d/g", false).value();
    ASSERT_TRUE(file->Append("y").ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(env.SyncDir("d").ok());
  env.Recover();
  ASSERT_TRUE(env.FileExists("d/g"));
  EXPECT_EQ(env.ReadFile("d/g").value(), "y");
}

TEST(SimEnvTest, RenameIsAtomicAcrossCrash) {
  SimEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  for (const char* name : {"d/old", "d/new"}) {
    auto file = env.NewWritableFile(name, false).value();
    ASSERT_TRUE(file->Append(name).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(env.SyncDir("d").ok());
  ASSERT_TRUE(env.RenameFile("d/new", "d/old").ok());
  // Rename not yet dir-synced: the crash rolls the namespace back.
  env.Recover();
  EXPECT_EQ(env.ReadFile("d/old").value(), "d/old");
  EXPECT_EQ(env.ReadFile("d/new").value(), "d/new");
}

TEST(SimEnvTest, PartialSyncTearsTheTail) {
  FaultInjector faults(1);
  SimEnv env(&faults);
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto file = env.NewWritableFile("d/f", false).value();
  ASSERT_TRUE(env.SyncDir("d").ok());  // Name durable; content is at stake.
  ASSERT_TRUE(file->Append("0123456789").ok());

  // Find and fire the env:sync:partial point inside Sync().
  faults.ArmCrash(1u << 30);
  ASSERT_TRUE(file->Sync().ok());
  uint64_t points = faults.crash_points_seen();
  ASSERT_GE(points, 3u);  // before, partial, after.
  faults.DisarmCrash();

  auto file2 = env.NewWritableFile("d/f", false).value();
  ASSERT_TRUE(file2->Append("ABCDEFGHIJ").ok());
  faults.ArmCrash(1);  // 0 = sync:before, 1 = sync:partial.
  EXPECT_FALSE(file2->Sync().ok());
  EXPECT_EQ(faults.last_crash_point(), "env:sync:partial");
  EXPECT_TRUE(env.crashed());
  env.Recover();
  std::string after = env.ReadFile("d/f").value();
  // The first 10 bytes were durable; the torn batch left a PREFIX of the
  // new bytes — more than nothing, less than everything.
  EXPECT_TRUE(after.size() > 10 && after.size() < 20) << after;
  EXPECT_EQ(after.substr(0, 10), "0123456789");
}

TEST(SimEnvTest, CrashedEnvFailsEverythingUntilRecover) {
  FaultInjector faults(1);
  SimEnv env(&faults);
  ASSERT_TRUE(env.CreateDir("d").ok());
  faults.ArmCrash(0);
  auto file = env.NewWritableFile("d/f", false).value();
  EXPECT_FALSE(file->Append("x").ok());  // env:append:before fires.
  EXPECT_TRUE(env.crashed());
  EXPECT_FALSE(env.ReadFile("d/f").ok());
  EXPECT_FALSE(env.SyncDir("d").ok());
  env.Recover();
  EXPECT_FALSE(env.crashed());
  EXPECT_TRUE(env.ListDir("d").ok());
}

// ---- AtomicFileWriter. ----

TEST(AtomicFileWriterTest, WritesAndReplaces) {
  SimEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  ASSERT_TRUE(AtomicFileWriter::Write(&env, "d/target", "first").ok());
  EXPECT_EQ(env.ReadFile("d/target").value(), "first");
  ASSERT_TRUE(AtomicFileWriter::Write(&env, "d/target", "second").ok());
  EXPECT_EQ(env.ReadFile("d/target").value(), "second");
  // Everything it wrote survives an immediate crash un-synced-nothing.
  env.Recover();
  EXPECT_EQ(env.ReadFile("d/target").value(), "second");
}

/// The satellite-1 sweep: kill AtomicFileWriter at EVERY crash point and
/// assert the old-or-new-never-partial contract after recovery.
TEST(AtomicFileWriterTest, CrashSweepOldOrNewNeverPartial) {
  // Dry run to count the points.
  uint64_t total_points = 0;
  {
    FaultInjector faults(1);
    SimEnv env(&faults);
    ASSERT_TRUE(env.CreateDir("d").ok());
    ASSERT_TRUE(AtomicFileWriter::Write(&env, "d/target", "OLD-CONTENT").ok());
    faults.ArmCrash(1u << 30);
    ASSERT_TRUE(
        AtomicFileWriter::Write(&env, "d/target", "NEW-CONTENT!!").ok());
    total_points = faults.crash_points_seen();
    faults.DisarmCrash();
  }
  ASSERT_GE(total_points, 6u);

  for (uint64_t k = 0; k < total_points; ++k) {
    FaultInjector faults(1);
    SimEnv env(&faults);
    ASSERT_TRUE(env.CreateDir("d").ok());
    ASSERT_TRUE(AtomicFileWriter::Write(&env, "d/target", "OLD-CONTENT").ok());
    faults.ArmCrash(k);
    Status written = AtomicFileWriter::Write(&env, "d/target", "NEW-CONTENT!!");
    ASSERT_FALSE(written.ok()) << "point " << k << " did not fire";
    SCOPED_TRACE(StrCat("crash point ", k, " = ", faults.last_crash_point()));
    env.Recover();
    std::string content = env.ReadFile("d/target").value();
    EXPECT_TRUE(content == "OLD-CONTENT" || content == "NEW-CONTENT!!")
        << "partial content: '" << content << "'";
  }
}

/// A file that never existed may legitimately be absent after a crash,
/// but once Write() returned OK the new content must be there.
TEST(AtomicFileWriterTest, CrashSweepFreshFileIsAbsentOrComplete) {
  uint64_t total_points = 0;
  {
    FaultInjector faults(1);
    SimEnv env(&faults);
    ASSERT_TRUE(env.CreateDir("d").ok());
    faults.ArmCrash(1u << 30);
    ASSERT_TRUE(AtomicFileWriter::Write(&env, "d/fresh", "PAYLOAD").ok());
    total_points = faults.crash_points_seen();
    faults.DisarmCrash();
  }
  for (uint64_t k = 0; k < total_points; ++k) {
    FaultInjector faults(1);
    SimEnv env(&faults);
    ASSERT_TRUE(env.CreateDir("d").ok());
    faults.ArmCrash(k);
    ASSERT_FALSE(AtomicFileWriter::Write(&env, "d/fresh", "PAYLOAD").ok());
    env.Recover();
    if (env.FileExists("d/fresh")) {
      EXPECT_EQ(env.ReadFile("d/fresh").value(), "PAYLOAD")
          << "point " << k << " (" << faults.last_crash_point() << ")";
    }
  }
}

}  // namespace
}  // namespace cacheportal
