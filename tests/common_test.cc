#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace cacheportal {
namespace {

// ---------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("table Car");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsParseError());
  EXPECT_EQ(s.message(), "table Car");
  EXPECT_EQ(s.ToString(), "NotFound: table Car");
}

TEST(StatusTest, EachCodePredicateMatchesOnlyItself) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::Internal("x").IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Doubled(Result<int> in) {
  CACHEPORTAL_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_TRUE(Doubled(Status::Internal("boom")).status().IsInternal());
}

// ---------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------

TEST(StringsTest, StrSplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,c,", ','),
            (std::vector<std::string>{"a", "", "c", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("Cache-Control", "cache-control"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("jdbc:cacheportal:x", "jdbc:"));
  EXPECT_FALSE(StartsWith("jd", "jdbc:"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "file.cc"));
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

// ---------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SetTime(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(ClockTest, SystemClockMonotone) {
  SystemClock clock;
  Micros a = clock.NowMicros();
  Micros b = clock.NowMicros();
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------

TEST(RandomTest, DeterministicFromSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ExponentialMeanRoughlyCorrect) {
  Random rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(100.0);
  double mean = sum / kN;
  EXPECT_NEAR(mean, 100.0, 5.0);
}

TEST(RandomTest, OneInProbability) {
  Random rng(13);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.OneIn(0.7) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.7, 0.02);
}

// ---------------------------------------------------------------------
// ParseUint64
// ---------------------------------------------------------------------

TEST(ParseUint64Test, ParsesValidValues) {
  EXPECT_EQ(ParseUint64("0").value(), 0u);
  EXPECT_EQ(ParseUint64("42").value(), 42u);
  EXPECT_EQ(ParseUint64("18446744073709551615").value(), UINT64_MAX);
}

TEST(ParseUint64Test, RejectsGarbageThatStrtoullWouldAccept) {
  // strtoull("xyz") "succeeds" with 0 — the silent-corruption mode this
  // helper exists to kill. Every one of these must be a ParseError.
  EXPECT_TRUE(ParseUint64("").status().IsParseError());
  EXPECT_TRUE(ParseUint64("xyz").status().IsParseError());
  EXPECT_TRUE(ParseUint64("12a").status().IsParseError());
  EXPECT_TRUE(ParseUint64(" 12").status().IsParseError());
  EXPECT_TRUE(ParseUint64("12 ").status().IsParseError());
  EXPECT_TRUE(ParseUint64("-3").status().IsParseError());
  EXPECT_TRUE(ParseUint64("+3").status().IsParseError());
  EXPECT_TRUE(ParseUint64("0x10").status().IsParseError());
  // 2^64 overflows; strtoull would clamp to ULLONG_MAX.
  EXPECT_TRUE(
      ParseUint64("18446744073709551616").status().IsParseError());
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5}}) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(n, [&count](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), n);
  }
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No .get(): destruction must still run everything already queued.
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace cacheportal
