// core::HashRing and core::DeliveryRouter: ring determinism (the
// property the multi-process fan-out verification leans on), minimal
// remapping when a node joins, routing through a delivery queue's named
// sinks, and the batch drain stats for routed traffic.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "core/delivery_router.h"
#include "core/reliable_delivery.h"
#include "http/message.h"
#include "invalidator/invalidator.h"

namespace cacheportal::core {
namespace {

http::HttpRequest Eject(const std::string& url) {
  http::HttpRequest message = *http::HttpRequest::Get(url);
  message.headers.Set("Cache-Control", "eject");
  return message;
}

/// Records every key it receives; optionally fails everything.
class RecordingSink : public invalidator::InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    keys.push_back(cache_key);
    return fail ? Status::Unavailable("down") : Status::OK();
  }
  std::vector<std::string> keys;
  bool fail = false;
};

/// Batch-capable recording sink: counts operations and confirms a
/// configurable prefix of each batch.
class BatchRecordingSink : public invalidator::InvalidationSink,
                           public invalidator::BatchInvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    ++single_sends;
    keys.push_back(cache_key);
    return Status::OK();
  }
  invalidator::BatchSendResult SendInvalidationBatch(
      const std::vector<invalidator::BatchItem>& items) override {
    ++batch_sends;
    invalidator::BatchSendResult result;
    for (const invalidator::BatchItem& item : items) {
      if (confirm_limit >= 0 &&
          result.confirmed >= static_cast<size_t>(confirm_limit)) {
        result.status = Status::Unavailable("window closed");
        return result;
      }
      keys.push_back(*item.cache_key);
      ++result.confirmed;
    }
    return result;
  }
  std::vector<std::string> keys;
  int single_sends = 0;
  int batch_sends = 0;
  int confirm_limit = -1;  // -1 = confirm everything.
};

TEST(HashRingTest, HashIsDeterministicAndNodeChoiceIsStable) {
  // FNV-1a with fixed constants: the exact value is part of the
  // cross-process contract (a verifier in another process must compute
  // the same owners), so pin one known hash against accidental drift.
  EXPECT_EQ(HashRing::Hash(""), 14695981039346656037ULL);
  EXPECT_EQ(HashRing::Hash("a"), HashRing::Hash("a"));
  EXPECT_NE(HashRing::Hash("a"), HashRing::Hash("b"));

  HashRing ring_a;
  HashRing ring_b;
  for (const char* name : {"peer-0", "peer-1", "peer-2"}) {
    ring_a.AddNode(name);
    ring_b.AddNode(name);
  }
  for (int i = 0; i < 500; ++i) {
    std::string key = StrCat("key-", i);
    EXPECT_EQ(ring_a.NodeFor(key), ring_b.NodeFor(key));
  }
}

TEST(HashRingTest, AddNodeOrderDoesNotChangeOwnership) {
  HashRing forward;
  forward.AddNode("peer-0");
  forward.AddNode("peer-1");
  forward.AddNode("peer-2");
  HashRing reverse;
  reverse.AddNode("peer-2");
  reverse.AddNode("peer-1");
  reverse.AddNode("peer-0");
  for (int i = 0; i < 500; ++i) {
    std::string key = StrCat("key-", i);
    EXPECT_EQ(forward.NodeFor(key), reverse.NodeFor(key));
  }
}

TEST(HashRingTest, EveryNodeOwnsSomeKeysAndAllKeysAreOwned) {
  HashRing ring;
  for (int n = 0; n < 3; ++n) ring.AddNode(StrCat("peer-", n));
  std::map<std::string, int> owned;
  for (int i = 0; i < 3000; ++i) {
    std::string owner = ring.NodeFor(StrCat("key-", i));
    ASSERT_FALSE(owner.empty());
    ++owned[owner];
  }
  ASSERT_EQ(owned.size(), 3u);
  for (const auto& [name, count] : owned) {
    // Consistent hashing balances only statistically; with 64 virtual
    // nodes each peer must still own a visible share.
    EXPECT_GT(count, 100) << name << " owns almost nothing";
  }
}

TEST(HashRingTest, AddingANodeRemapsOnlyAFraction) {
  HashRing before;
  before.AddNode("peer-0");
  before.AddNode("peer-1");
  before.AddNode("peer-2");
  HashRing after;
  after.AddNode("peer-0");
  after.AddNode("peer-1");
  after.AddNode("peer-2");
  after.AddNode("peer-3");

  const int keys = 3000;
  int moved = 0;
  int moved_elsewhere = 0;
  for (int i = 0; i < keys; ++i) {
    std::string key = StrCat("key-", i);
    std::string old_owner = before.NodeFor(key);
    std::string new_owner = after.NodeFor(key);
    if (old_owner != new_owner) {
      ++moved;
      if (new_owner != "peer-3") ++moved_elsewhere;
    }
  }
  // The defining consistent-hash property: only keys the NEW node claims
  // move (never between surviving nodes), and they are a minority —
  // ideally ~1/4; allow generous statistical slack.
  EXPECT_EQ(moved_elsewhere, 0);
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, keys / 2);
}

TEST(HashRingTest, EmptyRingReturnsEmpty) {
  HashRing ring;
  EXPECT_EQ(ring.NodeFor("anything"), "");
}

TEST(DeliveryRouterTest, RoutesEachKeyToItsRingOwner) {
  ManualClock clock;
  ReliableDeliveryQueue queue(&clock, DeliveryOptions{});
  DeliveryRouter router(&queue);
  RecordingSink sinks[3];
  for (int i = 0; i < 3; ++i) {
    router.AddPeer(&sinks[i], StrCat("peer-", i));
  }

  const int count = 300;
  for (int i = 0; i < count; ++i) {
    std::string key = StrCat("key-", i);
    ASSERT_TRUE(router.SendInvalidation(
        Eject(StrCat("http://origin/p?id=", i)), key).ok());
    // Router and ring agree, and the key landed in exactly the sink the
    // ring names.
    std::string owner = router.PeerFor(key);
    int owner_index = owner.back() - '0';
    EXPECT_EQ(sinks[owner_index].keys.back(), key);
  }
  queue.DrainWith(&clock);

  size_t total = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.routed_to(StrCat("peer-", i)), sinks[i].keys.size());
    total += sinks[i].keys.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(count));
  EXPECT_EQ(router.routed_total(), static_cast<size_t>(count));
  EXPECT_EQ(queue.stats().delivered, static_cast<size_t>(count));
  EXPECT_EQ(router.PendingBacklog(), 0u);
  EXPECT_NE(router.HealthReport().find("peers=3"), std::string::npos);
}

TEST(DeliveryRouterTest, NoPeersIsAnExplicitError) {
  ManualClock clock;
  ReliableDeliveryQueue queue(&clock, DeliveryOptions{});
  DeliveryRouter router(&queue);
  Status sent = router.SendInvalidation(Eject("http://origin/p"), "key");
  EXPECT_TRUE(sent.IsInvalidArgument());
}

TEST(DeliveryRouterTest, PeerFailureStaysLocalToThatPeer) {
  // One peer down: its keys retry (and eventually escalate) while every
  // other peer keeps delivering — the fan-out isolates failure domains.
  ManualClock clock;
  DeliveryOptions options;
  options.max_attempts = 3;
  options.breaker_failure_threshold = 0;
  ReliableDeliveryQueue queue(&clock, options);
  DeliveryRouter router(&queue);
  RecordingSink sinks[2];
  sinks[1].fail = true;
  router.AddPeer(&sinks[0], "peer-0");
  router.AddPeer(&sinks[1], "peer-1");

  const int count = 100;
  for (int i = 0; i < count; ++i) {
    router.SendInvalidation(Eject(StrCat("http://origin/p?id=", i)),
                            StrCat("key-", i));
  }
  queue.DrainWith(&clock);
  uint64_t to_failing = router.routed_to("peer-1");
  ASSERT_GT(to_failing, 0u);
  EXPECT_EQ(queue.stats().delivered, count - to_failing);
  EXPECT_EQ(queue.stats().dead_lettered, to_failing);
  EXPECT_TRUE(queue.IsQuarantined("peer-1"));
  EXPECT_FALSE(queue.IsQuarantined("peer-0"));
}

TEST(ReliableDeliveryQueueTest, SendInvalidationToUnknownSinkIsAnError) {
  ManualClock clock;
  ReliableDeliveryQueue queue(&clock, DeliveryOptions{});
  Status sent = queue.SendInvalidationTo("nonexistent",
                                         Eject("http://origin/p"), "key");
  EXPECT_TRUE(sent.IsInvalidArgument());
}

TEST(ReliableDeliveryQueueTest, BatchSinkDrainsInBatchesWithStats) {
  ManualClock clock;
  DeliveryOptions options;
  options.batch_max = 16;
  ReliableDeliveryQueue queue(&clock, options);
  BatchRecordingSink sink;
  queue.AddSink(&sink, "batcher");

  http::HttpRequest eject = Eject("http://origin/p");
  for (int i = 0; i < 40; ++i) {
    // Batch-eligible sinks defer even the first message, so sends alone
    // deliver nothing.
    queue.SendInvalidation(eject, StrCat("key-", i));
  }
  EXPECT_EQ(queue.stats().delivered, 0u);
  EXPECT_EQ(queue.pending(), 40u);

  EXPECT_EQ(queue.Pump(), 40u);
  EXPECT_EQ(sink.batch_sends, 3);  // 16 + 16 + 8.
  EXPECT_EQ(sink.single_sends, 0);
  EXPECT_EQ(queue.stats().batch_flushes, 3u);
  EXPECT_EQ(queue.stats().batched_messages, 40u);
  EXPECT_EQ(queue.stats().delivered, 40u);
  EXPECT_EQ(queue.stats().delivered_first_try, 40u);
  ASSERT_EQ(sink.keys.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(sink.keys[i], StrCat("key-", i)) << "FIFO order broken";
  }
}

TEST(ReliableDeliveryQueueTest, UnconfirmedBatchSuffixRetriesInOrder) {
  ManualClock clock;
  DeliveryOptions options;
  options.batch_max = 10;
  options.max_attempts = 5;
  options.breaker_failure_threshold = 0;
  options.jitter_fraction = 0.0;
  ReliableDeliveryQueue queue(&clock, options);
  BatchRecordingSink sink;
  sink.confirm_limit = 4;  // Each operation confirms at most 4.
  queue.AddSink(&sink, "batcher");

  http::HttpRequest eject = Eject("http://origin/p");
  for (int i = 0; i < 10; ++i) {
    queue.SendInvalidation(eject, StrCat("key-", i));
  }
  queue.DrainWith(&clock);
  EXPECT_EQ(queue.stats().delivered, 10u);
  EXPECT_EQ(queue.stats().dead_lettered, 0u);
  EXPECT_GT(queue.stats().retries, 0u);
  // Confirmed prefixes concatenate to the exact FIFO order.
  ASSERT_EQ(sink.keys.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.keys[i], StrCat("key-", i));
  }
}

TEST(ReliableDeliveryQueueTest, BatchMaxOneKeepsSingleMessagePath) {
  ManualClock clock;
  DeliveryOptions options;
  options.batch_max = 1;
  ReliableDeliveryQueue queue(&clock, options);
  BatchRecordingSink sink;
  queue.AddSink(&sink, "batcher");

  http::HttpRequest eject = Eject("http://origin/p");
  for (int i = 0; i < 5; ++i) {
    queue.SendInvalidation(eject, StrCat("key-", i));
  }
  // batch_max == 1 disables batching outright: sends attempt inline like
  // any plain sink and the batch entry point is never used.
  EXPECT_EQ(queue.stats().delivered, 5u);
  EXPECT_EQ(sink.batch_sends, 0);
  EXPECT_EQ(sink.single_sends, 5);
  EXPECT_EQ(queue.stats().batch_flushes, 0u);
}

}  // namespace
}  // namespace cacheportal::core
