#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"

namespace cacheportal::core {
namespace {

/// Full-system test: database + JDBC pool (wrapped by the query logger) +
/// application server (wrapped by the request logger) + caching proxy +
/// invalidator, exactly as a site would deploy CachePortal.
class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : db_(&clock_) {}

  void SetUp() override {
    // Site database.
    ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                    "Car", {{"maker", db::ColumnType::kString},
                                            {"model", db::ColumnType::kString},
                                            {"price", db::ColumnType::kInt}}))
                    .ok());
    db_.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)")
        .value();
    db_.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)")
        .value();

    // CachePortal attaches to the already-populated site: updates that
    // predate deployment are not replayed.
    portal_holder_ = std::make_unique<CachePortal>(&db_, &clock_);

    // JDBC wiring: site driver wrapped by the sniffer's query logger.
    auto raw = std::make_unique<server::MemoryDbDriver>();
    raw->BindDatabase("shop", &db_);
    manager_.RegisterDriver(portal().WrapDriver(raw.get()));
    raw_driver_ = std::move(raw);
    pool_ = std::move(
        server::ConnectionPool::Create(
            "pool", "jdbc:cacheportal-log:jdbc:cacheportal:shop", 2,
            &manager_)
            .value());

    // Application server with one servlet: /cars?max=N lists cars cheaper
    // than N.
    app_ = std::make_unique<server::ApplicationServer>(pool_.get());
    ASSERT_TRUE(
        app_->RegisterServlet(
                "/cars",
                std::make_unique<server::FunctionServlet>(
                    [this](const http::HttpRequest& req,
                           server::ServletContext* ctx) {
                      std::string max = req.get_params.count("max")
                                            ? req.get_params.at("max")
                                            : "99999";
                      clock_.Advance(1000);  // Servlet compute time.
                      auto result = ctx->connection->ExecuteQuery(
                          "SELECT model, price FROM Car WHERE price < " +
                          max);
                      if (!result.ok()) {
                        return http::HttpResponse::ServerError(
                            result.status().ToString());
                      }
                      return http::HttpResponse::Ok(result->ToString());
                    }),
                server::ServletConfig{})
            .ok());

    // CachePortal attachment (non-invasive: only wrappers).
    portal().AttachTo(app_.get());
    server::ServletConfig config;
    config.name = "/cars";
    config.key_get_params = {"max"};
    portal().RegisterServlet(config);
    proxy_ = portal().CreateProxy(app_.get());
  }

  CachePortal& portal() { return *portal_holder_; }

  http::HttpResponse Get(const std::string& url) {
    auto req = http::HttpRequest::Get(url);
    EXPECT_TRUE(req.ok());
    clock_.Advance(100);
    return proxy_->Handle(*req);
  }

  ManualClock clock_;
  db::Database db_;
  std::unique_ptr<CachePortal> portal_holder_;
  server::DriverManager manager_;
  std::unique_ptr<server::Driver> raw_driver_;
  std::unique_ptr<server::ConnectionPool> pool_;
  std::unique_ptr<server::ApplicationServer> app_;
  CachingProxy* proxy_ = nullptr;
};

TEST_F(IntegrationTest, MissThenHitServedFromCache) {
  http::HttpResponse first = Get("http://shop/cars?max=20000");
  EXPECT_EQ(first.status_code, 200);
  EXPECT_EQ(first.headers.Get("X-Cache"), "MISS");
  EXPECT_NE(first.body.find("Civic"), std::string::npos);

  http::HttpResponse second = Get("http://shop/cars?max=20000");
  EXPECT_EQ(second.headers.Get("X-Cache"), "HIT");
  EXPECT_EQ(second.body, first.body);
  // The application server saw only the first request.
  EXPECT_EQ(app_->requests_served(), 1u);
}

TEST_F(IntegrationTest, NonKeyParametersShareTheCacheEntry) {
  Get("http://shop/cars?max=20000&utm=campaign1");
  http::HttpResponse second = Get("http://shop/cars?max=20000&utm=other");
  EXPECT_EQ(second.headers.Get("X-Cache"), "HIT");
}

TEST_F(IntegrationTest, DifferentKeyParameterIsDifferentPage) {
  Get("http://shop/cars?max=20000");
  http::HttpResponse other = Get("http://shop/cars?max=30000");
  EXPECT_EQ(other.headers.Get("X-Cache"), "MISS");
  EXPECT_EQ(portal().page_cache()->size(), 2u);
}

TEST_F(IntegrationTest, SnifferBuiltTheQiUrlMap) {
  Get("http://shop/cars?max=20000");
  portal().RunCycle().value();
  EXPECT_GE(portal().request_log().size(), 1u);
  EXPECT_GE(portal().query_log().size(), 1u);
  EXPECT_GE(portal().qiurl_map().size(), 1u);
  // The map ties the SELECT to the narrowed page key.
  auto pages = portal().qiurl_map().PagesForQuery(
      "SELECT model, price FROM Car WHERE price < 20000");
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_NE(pages[0].find("max=20000"), std::string::npos);
}

TEST_F(IntegrationTest, UpdateInvalidatesAffectedPageOnly) {
  Get("http://shop/cars?max=20000");  // Cached: cars under 20000.
  Get("http://shop/cars?max=17000");  // Cached: cars under 17000.
  portal().RunCycle().value();         // Sniffer map built; no updates yet.
  EXPECT_EQ(portal().page_cache()->size(), 2u);

  // A new 18500 car affects the max=20000 page but not max=17000.
  db_.ExecuteSql("INSERT INTO Car VALUES ('Mazda', 'Miata', 18500)").value();
  auto report = portal().RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_invalidated, 1u);
  EXPECT_EQ(portal().page_cache()->size(), 1u);

  // The stale page is regenerated with the new car; the other still hits.
  http::HttpResponse fresh = Get("http://shop/cars?max=20000");
  EXPECT_EQ(fresh.headers.Get("X-Cache"), "MISS");
  EXPECT_NE(fresh.body.find("Miata"), std::string::npos);
  EXPECT_EQ(Get("http://shop/cars?max=17000").headers.Get("X-Cache"), "HIT");
}

TEST_F(IntegrationTest, NoStalePageIsEverServedAfterACycle) {
  Get("http://shop/cars?max=20000");
  portal().RunCycle().value();
  db_.ExecuteSql("UPDATE Car SET price = 15000 WHERE model = 'Avalon'")
      .value();
  portal().RunCycle().value();
  http::HttpResponse resp = Get("http://shop/cars?max=20000");
  // The Avalon now qualifies and must appear (page was invalidated).
  EXPECT_NE(resp.body.find("Avalon"), std::string::npos);
}

TEST_F(IntegrationTest, EjectMessageThroughProxyEndpoint) {
  Get("http://shop/cars?max=20000");
  // A cache operator (or the invalidator over HTTP) can eject via the
  // proxy itself.
  auto eject = http::HttpRequest::Get("http://shop/cars?max=20000");
  eject->headers.Set("Cache-Control", "eject");
  http::HttpResponse resp = proxy_->Handle(*eject);
  EXPECT_EQ(resp.status_code, 204);
  EXPECT_EQ(Get("http://shop/cars?max=20000").headers.Get("X-Cache"),
            "MISS");
}

TEST_F(IntegrationTest, TruncateOptionBoundsUpdateLogGrowth) {
  // A portal configured as the log's sole consumer keeps it short.
  CachePortalOptions options;
  options.truncate_update_log = true;
  CachePortal truncating(&db_, &clock_, options);
  for (int i = 0; i < 5; ++i) {
    db_.ExecuteSql("INSERT INTO Car VALUES ('A', 'B', 1)").value();
    truncating.RunCycle().value();
    EXPECT_EQ(db_.update_log().size(), 0u) << "iteration " << i;
  }
  // New records continue the sequence after truncation.
  db_.ExecuteSql("INSERT INTO Car VALUES ('A', 'B', 2)").value();
  EXPECT_EQ(db_.update_log().size(), 1u);
  auto report = truncating.RunCycle().value();
  EXPECT_EQ(report.updates, 1u);
}

TEST_F(IntegrationTest, CheckpointTrimsTheConsumedLogPrefix) {
  // Checkpoint() captures the invalidator's durable state and then trims
  // the update log through the consumed cursor: crash recovery and
  // bounded log growth come from the same sync point.
  Get("http://shop/cars?max=20000");
  portal().RunCycle().value();
  db_.ExecuteSql("INSERT INTO Car VALUES ('Mazda', 'Miata', 18500)").value();
  portal().RunCycle().value();
  EXPECT_GT(db_.update_log().size(), 0u);

  std::string state = portal().Checkpoint();
  EXPECT_FALSE(state.empty());
  EXPECT_EQ(db_.update_log().size(), 0u);

  // Records appended after the checkpoint survive the trim and are
  // consumed normally.
  db_.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 16000)").value();
  EXPECT_EQ(db_.update_log().size(), 1u);
  EXPECT_TRUE(portal().Restore(state).ok());
  auto report = portal().RunCycle().value();
  EXPECT_EQ(report.updates, 1u);
}

TEST_F(IntegrationTest, CacheStatsTrackTraffic) {
  Get("http://shop/cars?max=20000");
  Get("http://shop/cars?max=20000");
  Get("http://shop/cars?max=20000");
  const cache::PageCacheStats& stats = portal().page_cache()->stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

}  // namespace
}  // namespace cacheportal::core
