#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/caching_proxy.h"

namespace cacheportal::core {
namespace {

/// Scripted upstream.
class ScriptedOrigin : public server::RequestHandler {
 public:
  http::HttpResponse Handle(const http::HttpRequest&) override {
    ++calls;
    http::HttpResponse resp = next;
    return resp;
  }
  http::HttpResponse next = http::HttpResponse::Ok("body");
  int calls = 0;
};

http::HttpResponse CacheablePage(const std::string& body) {
  http::HttpResponse resp = http::HttpResponse::Ok(body);
  http::CacheControl cc;
  cc.is_private = true;
  cc.owner = http::kCachePortalOwner;
  resp.SetCacheControl(cc);
  return resp;
}

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : cache_(16, &clock_), proxy_(&cache_, &origin_, nullptr) {}

  http::HttpResponse Get(const std::string& url) {
    return proxy_.Handle(*http::HttpRequest::Get(url));
  }

  ManualClock clock_;
  cache::PageCache cache_;
  ScriptedOrigin origin_;
  CachingProxy proxy_;
};

TEST_F(ProxyTest, MissStoresAndTagsHeaders) {
  origin_.next = CacheablePage("v1");
  http::HttpResponse first = Get("http://s/p");
  EXPECT_EQ(first.headers.Get("X-Cache"), "MISS");
  EXPECT_EQ(origin_.calls, 1);
  http::HttpResponse second = Get("http://s/p");
  EXPECT_EQ(second.headers.Get("X-Cache"), "HIT");
  EXPECT_EQ(origin_.calls, 1);
  EXPECT_EQ(second.body, "v1");
}

TEST_F(ProxyTest, NonOkResponsesNotCached) {
  origin_.next = http::HttpResponse::NotFound();
  EXPECT_EQ(Get("http://s/missing").status_code, 404);
  EXPECT_EQ(cache_.size(), 0u);
  EXPECT_EQ(Get("http://s/missing").status_code, 404);
  EXPECT_EQ(origin_.calls, 2);  // Both reached the origin.
}

TEST_F(ProxyTest, NonCacheableResponsesPassThroughUnstored) {
  http::HttpResponse resp = http::HttpResponse::Ok("private");
  http::CacheControl cc;
  cc.no_store = true;
  resp.SetCacheControl(cc);
  origin_.next = resp;
  Get("http://s/p");
  EXPECT_EQ(cache_.size(), 0u);
  Get("http://s/p");
  EXPECT_EQ(origin_.calls, 2);
}

TEST_F(ProxyTest, EjectRequestServicedWithoutTouchingOrigin) {
  origin_.next = CacheablePage("v1");
  Get("http://s/p");
  ASSERT_EQ(cache_.size(), 1u);
  auto eject = http::HttpRequest::Get("http://s/p");
  eject->headers.Set("Cache-Control", "eject");
  http::HttpResponse resp = proxy_.Handle(*eject);
  EXPECT_EQ(resp.status_code, 204);
  EXPECT_EQ(cache_.size(), 0u);
  EXPECT_EQ(origin_.calls, 1);  // Eject never goes upstream.
}

TEST_F(ProxyTest, ConfigLookupNarrowsKeys) {
  server::ServletConfig config;
  config.name = "/p";
  config.key_get_params = {"id"};
  CachingProxy narrowing(
      &cache_, &origin_,
      [&config](const std::string& path) -> const server::ServletConfig* {
        return path == "/p" ? &config : nullptr;
      });
  origin_.next = CacheablePage("v1");
  narrowing.Handle(*http::HttpRequest::Get("http://s/p?id=1&tracking=a"));
  http::HttpResponse second = narrowing.Handle(
      *http::HttpRequest::Get("http://s/p?id=1&tracking=zzz"));
  EXPECT_EQ(second.headers.Get("X-Cache"), "HIT");
  // A different key parameter misses.
  http::HttpResponse third =
      narrowing.Handle(*http::HttpRequest::Get("http://s/p?id=2"));
  EXPECT_EQ(third.headers.Get("X-Cache"), "MISS");
}

TEST_F(ProxyTest, ShedCheckAppliesOnlyToMisses) {
  bool shedding = false;
  ProxyShedOptions shed;
  shed.shed_check = [&shedding] { return shedding; };
  shed.retry_after_seconds = 3;
  CachingProxy proxy(&cache_, &origin_, nullptr, std::move(shed));

  origin_.next = CacheablePage("v1");
  proxy.Handle(*http::HttpRequest::Get("http://s/cached"));
  ASSERT_EQ(origin_.calls, 1);

  shedding = true;
  // A hit costs no upstream work — served even under overload.
  http::HttpResponse hit = proxy.Handle(*http::HttpRequest::Get("http://s/cached"));
  EXPECT_EQ(hit.headers.Get("X-Cache"), "HIT");
  // An eject is a correctness message — dropping it would pin a stale
  // page, so it is never shed either.
  auto eject = http::HttpRequest::Get("http://s/cached");
  eject->headers.Set("Cache-Control", "eject");
  EXPECT_EQ(proxy.Handle(*eject).status_code, 204);
  // Only the miss, which would hit the origin, is refused.
  http::HttpResponse miss = proxy.Handle(*http::HttpRequest::Get("http://s/new"));
  EXPECT_EQ(miss.status_code, 503);
  EXPECT_EQ(miss.headers.Get("Retry-After"), "3");
  EXPECT_EQ(miss.headers.Get("X-Cache"), "SHED");
  EXPECT_EQ(proxy.requests_shed(), 1u);
  EXPECT_EQ(origin_.calls, 1);  // The origin never saw the shed miss.

  shedding = false;
  EXPECT_EQ(proxy.Handle(*http::HttpRequest::Get("http://s/new")).status_code,
            200);
}

/// An origin that re-enters the proxy while its own request is still in
/// flight — a deterministic, single-threaded stand-in for a second
/// concurrent miss.
class ReentrantOrigin : public server::RequestHandler {
 public:
  http::HttpResponse Handle(const http::HttpRequest& request) override {
    ++calls;
    if (request.path == "/outer" && proxy != nullptr) {
      inner_status =
          proxy->Handle(*http::HttpRequest::Get("http://s/inner")).status_code;
    }
    return CacheablePage("body");
  }
  CachingProxy* proxy = nullptr;
  int inner_status = 0;
  int calls = 0;
};

TEST_F(ProxyTest, ConcurrentUpstreamBoundShedsTheOverflowMiss) {
  ReentrantOrigin origin;
  ProxyShedOptions shed;
  shed.max_concurrent_upstream = 1;
  CachingProxy proxy(&cache_, &origin, nullptr, std::move(shed));
  origin.proxy = &proxy;

  // The outer miss occupies the single upstream slot; the miss that
  // arrives while it is in flight is shed instead of queued.
  http::HttpResponse outer = proxy.Handle(*http::HttpRequest::Get("http://s/outer"));
  EXPECT_EQ(outer.status_code, 200);
  EXPECT_EQ(origin.inner_status, 503);
  EXPECT_EQ(proxy.requests_shed(), 1u);
  EXPECT_EQ(origin.calls, 1);

  // The slot was released on completion: the same miss now goes through.
  EXPECT_EQ(proxy.Handle(*http::HttpRequest::Get("http://s/inner")).status_code,
            200);
  EXPECT_EQ(origin.calls, 2);
}

TEST_F(ProxyTest, PostParametersParticipateInIdentity) {
  origin_.next = CacheablePage("form-a");
  auto post_a = http::HttpRequest::Post("http://s/form", {{"q", "a"}});
  auto post_b = http::HttpRequest::Post("http://s/form", {{"q", "b"}});
  proxy_.Handle(*post_a);
  origin_.next = CacheablePage("form-b");
  http::HttpResponse b = proxy_.Handle(*post_b);
  EXPECT_EQ(b.headers.Get("X-Cache"), "MISS");
  EXPECT_EQ(b.body, "form-b");
  http::HttpResponse a_again = proxy_.Handle(*post_a);
  EXPECT_EQ(a_again.headers.Get("X-Cache"), "HIT");
  EXPECT_EQ(a_again.body, "form-a");
}

}  // namespace
}  // namespace cacheportal::core
