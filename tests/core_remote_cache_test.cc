#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/remote_cache.h"
#include "db/database.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::core {
namespace {

/// Origin that renders a counter so regenerated pages are observable.
class CountingOrigin : public server::RequestHandler {
 public:
  http::HttpResponse Handle(const http::HttpRequest& req) override {
    ++generations;
    http::HttpResponse resp =
        http::HttpResponse::Ok("gen" + std::to_string(generations) + ":" +
                               req.path);
    http::CacheControl cc;
    cc.is_private = true;
    cc.owner = http::kCachePortalOwner;
    resp.SetCacheControl(cc);
    return resp;
  }
  int generations = 0;
};

std::string WireGet(const std::string& url) {
  return http::HttpRequest::Get(url)->Serialize();
}

TEST(RemoteCacheTest, WireMissThenHit) {
  ManualClock clock;
  cache::PageCache cache(10, &clock);
  CountingOrigin origin;
  RemoteCacheEndpoint endpoint(&cache, &origin);

  auto first =
      http::HttpResponse::Parse(endpoint.HandleWire(WireGet("http://s/p")));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->headers.Get("X-Cache"), "MISS");

  auto second =
      http::HttpResponse::Parse(endpoint.HandleWire(WireGet("http://s/p")));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->headers.Get("X-Cache"), "HIT");
  EXPECT_EQ(second->body, first->body);
  EXPECT_EQ(origin.generations, 1);
  EXPECT_EQ(endpoint.wire_requests(), 2u);
}

TEST(RemoteCacheTest, MalformedWireIs400) {
  ManualClock clock;
  cache::PageCache cache(10, &clock);
  RemoteCacheEndpoint endpoint(&cache, nullptr);
  auto resp = http::HttpResponse::Parse(endpoint.HandleWire("garbage"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status_code, 400);
  EXPECT_EQ(endpoint.parse_errors(), 1u);
}

TEST(RemoteCacheTest, NoUpstreamIs503) {
  ManualClock clock;
  cache::PageCache cache(10, &clock);
  RemoteCacheEndpoint endpoint(&cache, nullptr);
  auto resp =
      http::HttpResponse::Parse(endpoint.HandleWire(WireGet("http://s/p")));
  EXPECT_EQ(resp->status_code, 503);
}

TEST(RemoteCacheTest, EjectOverTheWire) {
  ManualClock clock;
  cache::PageCache cache(10, &clock);
  CountingOrigin origin;
  RemoteCacheEndpoint endpoint(&cache, &origin);
  endpoint.HandleWire(WireGet("http://s/p?grp=1"));
  EXPECT_EQ(cache.size(), 1u);

  auto eject = http::HttpRequest::Get("http://s/p?grp=1");
  eject->headers.Set("Cache-Control", "eject");
  auto resp = http::HttpResponse::Parse(endpoint.HandleWire(
      eject->Serialize()));
  EXPECT_EQ(resp->status_code, 204);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RemoteCacheTest, InvalidatorDrivesEdgeCachesOverWire) {
  // Full vertical-invalidation path: DB update -> invalidator -> HTTP
  // eject message over serialized bytes -> two edge caches.
  ManualClock clock;
  db::Database db(&clock);
  db.CreateTable(db::TableSchema("T", {{"grp", db::ColumnType::kInt}})).ok();

  CountingOrigin origin;
  cache::PageCache edge_a(10, &clock), edge_b(10, &clock);
  RemoteCacheEndpoint endpoint_a(&edge_a, &origin);
  RemoteCacheEndpoint endpoint_b(&edge_b, &origin);
  WireCacheSink sink_a(&endpoint_a), sink_b(&endpoint_b);

  sniffer::QiUrlMap map;
  invalidator::Invalidator inv(&db, &map, &clock, {});
  inv.AddSink(&sink_a);
  inv.AddSink(&sink_b);

  // Both edges cache the page (its identity matches the QI/URL map key).
  endpoint_a.HandleWire(WireGet("http://s/p?grp=1"));
  endpoint_b.HandleWire(WireGet("http://s/p?grp=1"));
  std::string key =
      http::HttpRequest::Get("http://s/p?grp=1")->ToPageId().CacheKey();
  map.Add("SELECT * FROM T WHERE grp = 1", key, "/p", 0);

  db.ExecuteSql("INSERT INTO T VALUES (1)").value();
  auto report = inv.RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_invalidated, 1u);
  EXPECT_EQ(sink_a.messages_sent(), 1u);
  EXPECT_EQ(sink_a.ejections_confirmed(), 1u);
  EXPECT_EQ(sink_b.ejections_confirmed(), 1u);
  EXPECT_EQ(edge_a.size(), 0u);
  EXPECT_EQ(edge_b.size(), 0u);
}

TEST(RemoteCacheTest, KeyNarrowingWithConfigLookup) {
  ManualClock clock;
  cache::PageCache cache(10, &clock);
  CountingOrigin origin;
  server::ServletConfig config;
  config.name = "/p";
  config.key_get_params = {"grp"};
  RemoteCacheEndpoint endpoint(
      &cache, &origin,
      [&config](const std::string& path) -> const server::ServletConfig* {
        return path == "/p" ? &config : nullptr;
      });

  endpoint.HandleWire(WireGet("http://s/p?grp=1&session=abc"));
  auto second = http::HttpResponse::Parse(
      endpoint.HandleWire(WireGet("http://s/p?grp=1&session=zzz")));
  // Same key parameter -> same cache entry despite different session.
  EXPECT_EQ(second->headers.Get("X-Cache"), "HIT");
}

}  // namespace
}  // namespace cacheportal::core
