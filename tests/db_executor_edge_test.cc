#include <gtest/gtest.h>

#include "common/strings.h"
#include "db/database.h"
#include "sql/analyzer.h"
#include "sql/parser.h"

namespace cacheportal::db {
namespace {

using sql::Value;

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("T",
                                            {{"a", ColumnType::kInt},
                                             {"b", ColumnType::kInt},
                                             {"s", ColumnType::kString}}))
                    .ok());
    for (int i = 0; i < 10; ++i) {
      Exec(StrCat("INSERT INTO T VALUES (", i, ", ", i % 3, ", 'row", i,
                  "')"));
    }
  }

  QueryResult Exec(const std::string& sql) {
    auto result = db_.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(ExecutorEdgeTest, SelfJoinWithAliases) {
  // Pairs (x, y) with x.a + 1 = y.a.
  QueryResult r = Exec(
      "SELECT x.a, y.a FROM T x, T y WHERE x.a + 1 = y.a AND x.a < 3");
  EXPECT_EQ(r.rows.size(), 3u);  // (0,1), (1,2), (2,3).
}

TEST_F(ExecutorEdgeTest, GroupByMultipleKeys) {
  ASSERT_TRUE(db_.CreateTable(TableSchema("U", {{"g1", ColumnType::kInt},
                                                {"g2", ColumnType::kInt},
                                                {"v", ColumnType::kInt}}))
                  .ok());
  Exec("INSERT INTO U VALUES (1, 1, 10)");
  Exec("INSERT INTO U VALUES (1, 1, 20)");
  Exec("INSERT INTO U VALUES (1, 2, 30)");
  Exec("INSERT INTO U VALUES (2, 1, 40)");
  QueryResult r =
      Exec("SELECT g1, g2, SUM(v) AS total FROM U GROUP BY g1, g2");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorEdgeTest, DistinctWithOrderByOutputColumn) {
  QueryResult r = Exec("SELECT DISTINCT b FROM T ORDER BY b DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0], Value::Int(2));
  EXPECT_EQ(r.rows[2][0], Value::Int(0));
}

TEST_F(ExecutorEdgeTest, OrderByBaseColumnWithDistinctRejected) {
  // ORDER BY must reference an output column when DISTINCT reorders rows.
  auto result =
      db_.ExecuteSql("SELECT DISTINCT b FROM T ORDER BY a");
  EXPECT_TRUE(result.status().IsNotSupported());
}

TEST_F(ExecutorEdgeTest, OrderByAggregateAlias) {
  QueryResult r = Exec(
      "SELECT b, COUNT(*) AS n FROM T GROUP BY b ORDER BY n DESC, b");
  ASSERT_EQ(r.rows.size(), 3u);
  // b=0 has 4 rows (0,3,6,9); b=1 and b=2 have 3 each.
  EXPECT_EQ(r.rows[0][0], Value::Int(0));
  EXPECT_EQ(r.rows[0][1], Value::Int(4));
}

TEST_F(ExecutorEdgeTest, LikeAndInFilters) {
  EXPECT_EQ(Exec("SELECT * FROM T WHERE s LIKE 'row%'").rows.size(), 10u);
  EXPECT_EQ(Exec("SELECT * FROM T WHERE s LIKE '%9'").rows.size(), 1u);
  EXPECT_EQ(Exec("SELECT * FROM T WHERE a IN (1, 3, 5, 99)").rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT * FROM T WHERE a NOT IN (0, 1)").rows.size(), 8u);
}

TEST_F(ExecutorEdgeTest, BetweenAndArithmeticInWhere) {
  EXPECT_EQ(Exec("SELECT * FROM T WHERE a BETWEEN 2 AND 4").rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT * FROM T WHERE a * 2 = 6").rows.size(), 1u);
}

TEST_F(ExecutorEdgeTest, ExpressionsInSelectList) {
  QueryResult r = Exec("SELECT a + 100 AS shifted FROM T WHERE a = 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(105));
  EXPECT_EQ(r.columns[0], "shifted");
}

TEST_F(ExecutorEdgeTest, NullsInData) {
  Exec("INSERT INTO T (a) VALUES (100)");  // b, s are NULL.
  // NULL never satisfies comparisons.
  EXPECT_EQ(Exec("SELECT * FROM T WHERE b = 0").rows.size(), 4u);
  EXPECT_EQ(Exec("SELECT * FROM T WHERE b IS NULL").rows.size(), 1u);
  EXPECT_EQ(Exec("SELECT * FROM T WHERE s IS NOT NULL").rows.size(), 10u);
  // Aggregates skip NULLs.
  QueryResult agg = Exec("SELECT COUNT(*), COUNT(b) FROM T");
  EXPECT_EQ(agg.rows[0][0], Value::Int(11));
  EXPECT_EQ(agg.rows[0][1], Value::Int(10));
}

TEST_F(ExecutorEdgeTest, ParameterizedQueryViaBind) {
  auto select = sql::Parser::ParseSelect("SELECT * FROM T WHERE a > $1");
  ASSERT_TRUE(select.ok());
  auto bound = sql::BindParameters(*(*select)->where, {Value::Int(7)});
  ASSERT_TRUE(bound.ok());
  (*select)->where = std::move(*bound);
  auto result = db_.ExecuteQuery(**select);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);  // 8, 9.
}

TEST_F(ExecutorEdgeTest, UnboundParameterInWhereFails) {
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM T WHERE a > $1").ok());
}

TEST_F(ExecutorEdgeTest, InsertColumnSubsetLeavesNulls) {
  Exec("INSERT INTO T (s, a) VALUES ('partial', 50)");
  QueryResult r = Exec("SELECT a, b, s FROM T WHERE a = 50");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[0][2], Value::String("partial"));
}

TEST_F(ExecutorEdgeTest, InsertArityAndTypeErrors) {
  EXPECT_FALSE(db_.ExecuteSql("INSERT INTO T VALUES (1)").ok());
  EXPECT_FALSE(db_.ExecuteSql("INSERT INTO T VALUES ('x', 1, 'y')").ok());
  EXPECT_FALSE(
      db_.ExecuteSql("INSERT INTO T (a, nope) VALUES (1, 2)").ok());
  EXPECT_FALSE(
      db_.ExecuteSql("INSERT INTO T (a) VALUES (1, 2)").ok());
}

TEST_F(ExecutorEdgeTest, DeleteAndUpdateWithoutWhereTouchEverything) {
  QueryResult upd = Exec("UPDATE T SET b = 7");
  EXPECT_EQ(upd.rows[0][0], Value::Int(10));
  EXPECT_EQ(Exec("SELECT * FROM T WHERE b = 7").rows.size(), 10u);
  QueryResult del = Exec("DELETE FROM T");
  EXPECT_EQ(del.rows[0][0], Value::Int(10));
  EXPECT_EQ(Exec("SELECT * FROM T").rows.size(), 0u);
}

TEST_F(ExecutorEdgeTest, JoinThroughIndexedColumn) {
  ASSERT_TRUE(db_.CreateIndex("T", "b").ok());
  QueryResult r = Exec("SELECT * FROM T WHERE b = 1");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorEdgeTest, MinMaxOnStrings) {
  QueryResult r = Exec("SELECT MIN(s), MAX(s) FROM T");
  EXPECT_EQ(r.rows[0][0], Value::String("row0"));
  EXPECT_EQ(r.rows[0][1], Value::String("row9"));
}

TEST_F(ExecutorEdgeTest, CountDistinctViaSubsetGroupBy) {
  QueryResult r = Exec("SELECT b FROM T GROUP BY b");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorEdgeTest, HeavyCrossProductBounded) {
  // 10 x 10 self cross product with LIMIT.
  QueryResult r = Exec("SELECT x.a FROM T x, T y LIMIT 7");
  EXPECT_EQ(r.rows.size(), 7u);
}

}  // namespace
}  // namespace cacheportal::db
