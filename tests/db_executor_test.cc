#include <gtest/gtest.h>

#include "db/database.h"

namespace cacheportal::db {
namespace {

using sql::Value;

/// Builds the paper's two-table example database (Example 4.1).
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("Car",
                                            {{"maker", ColumnType::kString},
                                             {"model", ColumnType::kString},
                                             {"price", ColumnType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(TableSchema("Mileage",
                                            {{"model", ColumnType::kString},
                                             {"EPA", ColumnType::kInt}}))
                    .ok());
    Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)");
    Exec("INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 20000)");
    Exec("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)");
    Exec("INSERT INTO Car VALUES ('Toyota', 'Corolla', 16000)");
    Exec("INSERT INTO Mileage VALUES ('Avalon', 28)");
    Exec("INSERT INTO Mileage VALUES ('Civic', 36)");
    Exec("INSERT INTO Mileage VALUES ('Corolla', 34)");
  }

  QueryResult Exec(const std::string& sql) {
    auto result = db_.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(ExecutorTest, SelectStarReturnsAllColumnsAndRows) {
  QueryResult r = Exec("SELECT * FROM Car");
  EXPECT_EQ(r.columns,
            (std::vector<std::string>{"maker", "model", "price"}));
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(ExecutorTest, ProjectionAndAlias) {
  QueryResult r = Exec("SELECT maker AS brand, price FROM Car LIMIT 1");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"brand", "price"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 2u);
}

TEST_F(ExecutorTest, WhereFilters) {
  QueryResult r = Exec("SELECT model FROM Car WHERE price < 20000");
  EXPECT_EQ(r.rows.size(), 2u);  // Civic, Corolla.
}

TEST_F(ExecutorTest, WhereWithAndOrNot) {
  EXPECT_EQ(Exec("SELECT * FROM Car WHERE maker = 'Toyota' AND price > "
                 "20000")
                .rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT * FROM Car WHERE maker = 'Honda' OR maker = "
                 "'Toyota'")
                .rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT * FROM Car WHERE NOT (price < 20000)").rows.size(),
            2u);
}

TEST_F(ExecutorTest, JoinWithCommaSyntax) {
  QueryResult r = Exec(
      "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, "
      "Mileage WHERE Car.model = Mileage.model AND Car.price < 20000");
  // Civic (18000, EPA 36) and Corolla (16000, EPA 34).
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns.size(), 4u);
}

TEST_F(ExecutorTest, JoinWithJoinOnSyntax) {
  QueryResult r = Exec(
      "SELECT Car.model FROM Car JOIN Mileage ON Car.model = Mileage.model");
  EXPECT_EQ(r.rows.size(), 3u);  // Eclipse has no mileage row.
}

TEST_F(ExecutorTest, TableAliases) {
  QueryResult r = Exec(
      "SELECT c.model, m.EPA FROM Car c, Mileage m WHERE c.model = m.model "
      "AND m.EPA > 30");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, CrossProductWithoutCondition) {
  QueryResult r = Exec("SELECT * FROM Car, Mileage");
  EXPECT_EQ(r.rows.size(), 12u);  // 4 x 3.
  EXPECT_EQ(r.columns.size(), 5u);
}

TEST_F(ExecutorTest, UnqualifiedColumnsResolvedUniquely) {
  QueryResult r = Exec("SELECT maker FROM Car WHERE price = 25000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::String("Toyota"));
}

TEST_F(ExecutorTest, AmbiguousColumnIsError) {
  // `model` exists in both tables.
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM Car, Mileage WHERE model = 'x'")
                   .ok());
}

TEST_F(ExecutorTest, OrderByAscDesc) {
  QueryResult r = Exec("SELECT model, price FROM Car ORDER BY price");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0], Value::String("Corolla"));
  EXPECT_EQ(r.rows[3][0], Value::String("Avalon"));

  r = Exec("SELECT model, price FROM Car ORDER BY price DESC");
  EXPECT_EQ(r.rows[0][0], Value::String("Avalon"));
}

TEST_F(ExecutorTest, Limit) {
  EXPECT_EQ(Exec("SELECT * FROM Car LIMIT 2").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM Car LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(Exec("SELECT * FROM Car LIMIT 99").rows.size(), 4u);
}

TEST_F(ExecutorTest, Distinct) {
  QueryResult r = Exec("SELECT DISTINCT maker FROM Car");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, Aggregates) {
  QueryResult r = Exec(
      "SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(price) FROM "
      "Car");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(4));
  EXPECT_EQ(r.rows[0][1], Value::Int(25000 + 20000 + 18000 + 16000));
  EXPECT_EQ(r.rows[0][2], Value::Int(16000));
  EXPECT_EQ(r.rows[0][3], Value::Int(25000));
  EXPECT_EQ(r.rows[0][4], Value::Double(79000.0 / 4));
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  QueryResult r =
      Exec("SELECT COUNT(*), SUM(price) FROM Car WHERE price > 999999");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(0));
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupBy) {
  QueryResult r = Exec(
      "SELECT maker, COUNT(*) AS n FROM Car GROUP BY maker ORDER BY n DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0], Value::String("Toyota"));
  EXPECT_EQ(r.rows[0][1], Value::Int(2));
}

TEST_F(ExecutorTest, IndexedEqualityLookupUsed) {
  ASSERT_TRUE(db_.CreateIndex("Car", "model").ok());
  const Table* car = db_.FindTable("Car");
  uint64_t before = car->rows_scanned();
  QueryResult r = Exec("SELECT * FROM Car WHERE model = 'Civic'");
  EXPECT_EQ(r.rows.size(), 1u);
  // Index lookup touches far fewer rows than a full scan would.
  EXPECT_LE(car->rows_scanned() - before, 2u);
}

TEST_F(ExecutorTest, InsertReportsAffectedAndDeleteRemoves) {
  QueryResult r = Exec("DELETE FROM Car WHERE maker = 'Toyota'");
  EXPECT_EQ(r.rows[0][0], Value::Int(2));
  EXPECT_EQ(Exec("SELECT * FROM Car").rows.size(), 2u);
}

TEST_F(ExecutorTest, UpdateChangesMatchingRows) {
  QueryResult r =
      Exec("UPDATE Car SET price = price - 1000 WHERE maker = 'Toyota'");
  EXPECT_EQ(r.rows[0][0], Value::Int(2));
  QueryResult check =
      Exec("SELECT price FROM Car WHERE model = 'Avalon'");
  EXPECT_EQ(check.rows[0][0], Value::Int(24000));
}

TEST_F(ExecutorTest, SelectUnknownTableFails) {
  EXPECT_TRUE(db_.ExecuteSql("SELECT * FROM Nope").status().IsNotFound());
}

TEST_F(ExecutorTest, UnknownColumnFails) {
  EXPECT_FALSE(db_.ExecuteSql("SELECT * FROM Car WHERE nope = 1").ok());
}

TEST_F(ExecutorTest, TableNamesCaseInsensitive) {
  EXPECT_EQ(Exec("SELECT * FROM car").rows.size(), 4u);
  EXPECT_EQ(Exec("SELECT * FROM CAR").rows.size(), 4u);
}

TEST_F(ExecutorTest, ConstantFalseWhereShortCircuits) {
  EXPECT_EQ(Exec("SELECT * FROM Car WHERE 1 = 2").rows.size(), 0u);
  EXPECT_EQ(Exec("SELECT * FROM Car WHERE 1 = 1").rows.size(), 4u);
}

TEST_F(ExecutorTest, ResultToStringRendersTable) {
  QueryResult r = Exec("SELECT maker FROM Car WHERE price = 25000");
  std::string s = r.ToString();
  EXPECT_NE(s.find("maker"), std::string::npos);
  EXPECT_NE(s.find("Toyota"), std::string::npos);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  ASSERT_TRUE(
      db_.CreateTable(TableSchema("Dealer", {{"model", ColumnType::kString},
                                             {"city", ColumnType::kString}}))
          .ok());
  Exec("INSERT INTO Dealer VALUES ('Civic', 'San Jose')");
  Exec("INSERT INTO Dealer VALUES ('Avalon', 'Palo Alto')");
  QueryResult r = Exec(
      "SELECT Car.model, Mileage.EPA, Dealer.city FROM Car, Mileage, Dealer "
      "WHERE Car.model = Mileage.model AND Car.model = Dealer.model");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, UpdateLogRecordsDml) {
  size_t before = db_.update_log().size();
  Exec("INSERT INTO Car VALUES ('Ford', 'Focus', 15000)");
  Exec("UPDATE Car SET price = 14000 WHERE model = 'Focus'");
  Exec("DELETE FROM Car WHERE model = 'Focus'");
  // insert=1, update=2 (delete+insert), delete=1.
  EXPECT_EQ(db_.update_log().size(), before + 4);
}

}  // namespace
}  // namespace cacheportal::db
