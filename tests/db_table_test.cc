#include <gtest/gtest.h>

#include "db/schema.h"
#include "db/table.h"

namespace cacheportal::db {
namespace {

using sql::Value;

TableSchema CarSchema() {
  return TableSchema("Car", {{"maker", ColumnType::kString},
                             {"model", ColumnType::kString},
                             {"price", ColumnType::kInt}});
}

Row CarRow(const std::string& maker, const std::string& model,
           int64_t price) {
  return {Value::String(maker), Value::String(model), Value::Int(price)};
}

// ---------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------

TEST(SchemaTest, ColumnIndexCaseInsensitive) {
  TableSchema schema = CarSchema();
  EXPECT_EQ(schema.ColumnIndex("maker"), 0u);
  EXPECT_EQ(schema.ColumnIndex("PRICE"), 2u);
  EXPECT_EQ(schema.ColumnIndex("missing"), std::nullopt);
}

TEST(SchemaTest, ValidateRowArity) {
  TableSchema schema = CarSchema();
  EXPECT_FALSE(schema.ValidateRow({Value::Int(1)}).ok());
  EXPECT_TRUE(schema.ValidateRow(CarRow("T", "A", 1)).ok());
}

TEST(SchemaTest, ValidateRowTypes) {
  TableSchema schema = CarSchema();
  // String in int column.
  EXPECT_FALSE(
      schema
          .ValidateRow({Value::String("T"), Value::String("A"),
                        Value::String("x")})
          .ok());
  // NULL is allowed anywhere.
  EXPECT_TRUE(
      schema.ValidateRow({Value::Null(), Value::Null(), Value::Null()}).ok());
}

TEST(SchemaTest, IntStorableInDoubleColumn) {
  TableSchema schema("T", {{"x", ColumnType::kDouble}});
  EXPECT_TRUE(schema.ValidateRow({Value::Int(3)}).ok());
  EXPECT_TRUE(schema.ValidateRow({Value::Double(3.5)}).ok());
  EXPECT_FALSE(schema.ValidateRow({Value::String("3")}).ok());
}

// ---------------------------------------------------------------------
// Table CRUD
// ---------------------------------------------------------------------

TEST(TableTest, InsertAssignsIncreasingRowIds) {
  Table table(CarSchema());
  auto a = table.Insert(CarRow("T", "A", 1));
  auto b = table.Insert(CarRow("T", "B", 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(*a, *b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(TableTest, InsertValidates) {
  Table table(CarSchema());
  EXPECT_FALSE(table.Insert({Value::Int(1)}).ok());
  EXPECT_EQ(table.size(), 0u);
}

TEST(TableTest, GetAndDelete) {
  Table table(CarSchema());
  RowId id = *table.Insert(CarRow("T", "A", 1));
  auto row = table.Get(id);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2], Value::Int(1));
  EXPECT_TRUE(table.Delete(id).ok());
  EXPECT_TRUE(table.Get(id).status().IsNotFound());
  EXPECT_TRUE(table.Delete(id).IsNotFound());
}

TEST(TableTest, UpdateReplacesRow) {
  Table table(CarSchema());
  RowId id = *table.Insert(CarRow("T", "A", 1));
  EXPECT_TRUE(table.Update(id, CarRow("T", "A", 99)).ok());
  EXPECT_EQ((*table.Get(id))[2], Value::Int(99));
  EXPECT_TRUE(table.Update(12345, CarRow("T", "A", 1)).IsNotFound());
}

TEST(TableTest, ScanInInsertionOrder) {
  Table table(CarSchema());
  table.Insert(CarRow("T", "A", 1)).value();
  table.Insert(CarRow("T", "B", 2)).value();
  std::vector<int64_t> prices;
  for (const auto& [id, row] : table.rows()) {
    prices.push_back(row[2].AsInt());
  }
  EXPECT_EQ(prices, (std::vector<int64_t>{1, 2}));
}

// ---------------------------------------------------------------------
// Indexes
// ---------------------------------------------------------------------

TEST(TableIndexTest, LookupFindsMatchingRows) {
  Table table(CarSchema());
  ASSERT_TRUE(table.CreateIndex("model").ok());
  RowId a = *table.Insert(CarRow("Toyota", "Avalon", 25000));
  table.Insert(CarRow("Mitsubishi", "Eclipse", 20000)).value();
  RowId c = *table.Insert(CarRow("Used", "Avalon", 9000));

  auto hits = table.IndexLookup("model", sql::Value::String("Avalon"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, (std::vector<RowId>{a, c}));
  EXPECT_TRUE(
      table.IndexLookup("model", sql::Value::String("Civic"))->empty());
}

TEST(TableIndexTest, IndexMaintainedAcrossDeleteAndUpdate) {
  Table table(CarSchema());
  ASSERT_TRUE(table.CreateIndex("model").ok());
  RowId a = *table.Insert(CarRow("T", "X", 1));
  RowId b = *table.Insert(CarRow("T", "X", 2));
  ASSERT_TRUE(table.Delete(a).ok());
  auto hits = table.IndexLookup("model", sql::Value::String("X"));
  EXPECT_EQ(*hits, (std::vector<RowId>{b}));

  ASSERT_TRUE(table.Update(b, CarRow("T", "Y", 2)).ok());
  EXPECT_TRUE(table.IndexLookup("model", sql::Value::String("X"))->empty());
  EXPECT_EQ(table.IndexLookup("model", sql::Value::String("Y"))->size(), 1u);
}

TEST(TableIndexTest, CreateIndexBackfillsExistingRows) {
  Table table(CarSchema());
  RowId a = *table.Insert(CarRow("T", "Z", 5));
  ASSERT_TRUE(table.CreateIndex("model").ok());
  EXPECT_EQ(*table.IndexLookup("model", sql::Value::String("Z")),
            (std::vector<RowId>{a}));
}

TEST(TableIndexTest, Errors) {
  Table table(CarSchema());
  EXPECT_TRUE(table.CreateIndex("nope").IsNotFound());
  ASSERT_TRUE(table.CreateIndex("model").ok());
  EXPECT_TRUE(table.CreateIndex("model").IsAlreadyExists());
  EXPECT_FALSE(table.HasIndex("maker"));
  EXPECT_TRUE(table.HasIndex("model"));
  EXPECT_TRUE(
      table.IndexLookup("maker", sql::Value::String("T")).status().IsNotFound());
}

}  // namespace
}  // namespace cacheportal::db
