#include <gtest/gtest.h>

#include "db/delta.h"
#include "db/update_log.h"

namespace cacheportal::db {
namespace {

using sql::Value;

Row R(int64_t x) { return {Value::Int(x)}; }

TEST(UpdateLogTest, AppendAssignsDenseSequence) {
  UpdateLog log;
  EXPECT_EQ(log.LastSeq(), 0u);
  EXPECT_EQ(log.Append(10, "T", UpdateOp::kInsert, R(1)), 1u);
  EXPECT_EQ(log.Append(20, "T", UpdateOp::kDelete, R(1)), 2u);
  EXPECT_EQ(log.LastSeq(), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(UpdateLogTest, ReadSinceReturnsTail) {
  UpdateLog log;
  for (int i = 0; i < 5; ++i) log.Append(i, "T", UpdateOp::kInsert, R(i));
  EXPECT_EQ(log.ReadSince(0).size(), 5u);
  EXPECT_EQ(log.ReadSince(3).size(), 2u);
  EXPECT_EQ(log.ReadSince(5).size(), 0u);
  EXPECT_EQ(log.ReadSince(99).size(), 0u);
  auto tail = log.ReadSince(2);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 3u);
}

TEST(UpdateLogTest, TruncateDropsPrefixButKeepsSeqs) {
  UpdateLog log;
  for (int i = 0; i < 5; ++i) log.Append(i, "T", UpdateOp::kInsert, R(i));
  log.Truncate(3);
  EXPECT_EQ(log.size(), 2u);
  auto tail = log.ReadSince(3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  // ReadSince before the truncation point returns what's left.
  EXPECT_EQ(log.ReadSince(0).size(), 2u);
  // New appends continue the sequence.
  EXPECT_EQ(log.Append(9, "T", UpdateOp::kInsert, R(9)), 6u);
}

TEST(UpdateLogTest, TruncateBeyondEndEmptiesLog) {
  UpdateLog log;
  log.Append(0, "T", UpdateOp::kInsert, R(1));
  log.Truncate(10);
  EXPECT_EQ(log.size(), 0u);
}

TEST(UpdateLogTest, TrimThroughReturnsCountAndKeepsUnconsumed) {
  UpdateLog log;
  for (int i = 0; i < 6; ++i) log.Append(i * 10, "T", UpdateOp::kInsert, R(i));

  // Trim through a consumer watermark: exactly the consumed prefix goes.
  EXPECT_EQ(log.TrimThrough(4), 4u);
  EXPECT_EQ(log.size(), 2u);
  auto tail = log.ReadSince(4);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 5u);

  // Trimming never drops unconsumed records: a consumer at watermark 4
  // still sees everything above it, and re-trimming the same watermark
  // is a no-op.
  EXPECT_EQ(log.TrimThrough(4), 0u);
  EXPECT_EQ(log.ReadSince(4).size(), 2u);

  // A later watermark (even past the end) drops only what exists.
  EXPECT_EQ(log.TrimThrough(100), 2u);
  EXPECT_EQ(log.size(), 0u);
  // The sequence keeps counting across trims.
  EXPECT_EQ(log.Append(99, "T", UpdateOp::kInsert, R(9)), 7u);
}

TEST(UpdateLogTest, TrimNeverDropsRecordsAboveEveryConsumerWatermark) {
  // Property-style sweep: for every (log size, watermark) pair, trimming
  // preserves exactly the records a consumer at that watermark still
  // needs, with their sequence numbers intact.
  for (uint64_t n = 0; n <= 8; ++n) {
    for (uint64_t watermark = 0; watermark <= n + 2; ++watermark) {
      UpdateLog log;
      for (uint64_t i = 0; i < n; ++i) {
        log.Append(static_cast<Micros>(i), "T", UpdateOp::kInsert,
                   R(static_cast<int64_t>(i)));
      }
      std::vector<UpdateRecord> expected = log.ReadSince(watermark);
      log.TrimThrough(watermark);
      std::vector<UpdateRecord> got = log.ReadSince(watermark);
      ASSERT_EQ(got.size(), expected.size())
          << "n=" << n << " watermark=" << watermark;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].seq, expected[i].seq);
      }
    }
  }
}

TEST(UpdateLogTest, OldestTimestampSinceTracksBacklogAge) {
  UpdateLog log;
  EXPECT_FALSE(log.OldestTimestampSince(0).has_value());
  log.Append(100, "T", UpdateOp::kInsert, R(1));  // seq 1
  log.Append(200, "T", UpdateOp::kInsert, R(2));  // seq 2
  log.Append(300, "T", UpdateOp::kInsert, R(3));  // seq 3

  EXPECT_EQ(log.OldestTimestampSince(0), 100);
  EXPECT_EQ(log.OldestTimestampSince(1), 200);
  EXPECT_EQ(log.OldestTimestampSince(2), 300);
  EXPECT_FALSE(log.OldestTimestampSince(3).has_value());
  EXPECT_FALSE(log.OldestTimestampSince(99).has_value());

  // Consistent after trimming: ages are a function of seq, not of the
  // physical prefix.
  log.TrimThrough(1);
  EXPECT_EQ(log.OldestTimestampSince(1), 200);
  EXPECT_EQ(log.OldestTimestampSince(2), 300);
}

TEST(UpdateLogTest, RecordsCarryPayload) {
  UpdateLog log;
  log.Append(42, "Car", UpdateOp::kDelete,
             {Value::String("Toyota"), Value::Int(1)});
  auto records = log.ReadSince(0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp, 42);
  EXPECT_EQ(records[0].table, "Car");
  EXPECT_EQ(records[0].op, UpdateOp::kDelete);
  EXPECT_EQ(records[0].row[0], Value::String("Toyota"));
}

// ---------------------------------------------------------------------
// DeltaSet
// ---------------------------------------------------------------------

TEST(DeltaSetTest, GroupsByTableAndOp) {
  UpdateLog log;
  log.Append(0, "Car", UpdateOp::kInsert, R(1));
  log.Append(0, "Car", UpdateOp::kInsert, R(2));
  log.Append(0, "Car", UpdateOp::kDelete, R(3));
  log.Append(0, "Mileage", UpdateOp::kDelete, R(4));

  DeltaSet deltas = DeltaSet::FromRecords(log.ReadSince(0));
  EXPECT_FALSE(deltas.empty());
  // Table names are normalized to lower case for matching.
  EXPECT_EQ(deltas.Tables(), (std::vector<std::string>{"car", "mileage"}));
  EXPECT_EQ(deltas.ForTable("Car").inserts.size(), 2u);
  EXPECT_EQ(deltas.ForTable("Car").deletes.size(), 1u);
  EXPECT_EQ(deltas.ForTable("Mileage").inserts.size(), 0u);
  EXPECT_EQ(deltas.ForTable("Mileage").deletes.size(), 1u);
  EXPECT_EQ(deltas.TotalRows(), 4u);
}

TEST(DeltaSetTest, UnknownTableYieldsEmptyDelta) {
  DeltaSet deltas;
  EXPECT_TRUE(deltas.ForTable("Nope").empty());
  EXPECT_TRUE(deltas.empty());
  EXPECT_EQ(deltas.TotalRows(), 0u);
}

// ---------------------------------------------------------------------
// Update pairing (Δ⁻/Δ⁺ tokens for the exact strategy)
// ---------------------------------------------------------------------

TEST(UpdateLogTest, AppendUpdateStampsSharedPairToken) {
  UpdateLog log;
  log.Append(5, "Car", UpdateOp::kInsert, R(1));  // Plain append: no token.
  log.AppendUpdate(7, "Car", R(1), R(2));
  log.AppendUpdate(9, "Car", R(2), R(3));

  auto records = log.ReadSince(0);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].pair, 0u);

  // Each update is an adjacent kDelete/kInsert with one shared, nonzero
  // token and the same commit timestamp.
  EXPECT_EQ(records[1].op, UpdateOp::kDelete);
  EXPECT_EQ(records[2].op, UpdateOp::kInsert);
  EXPECT_NE(records[1].pair, 0u);
  EXPECT_EQ(records[1].pair, records[2].pair);
  EXPECT_EQ(records[1].timestamp, records[2].timestamp);
  EXPECT_EQ(records[1].row[0], Value::Int(1));
  EXPECT_EQ(records[2].row[0], Value::Int(2));

  // Distinct updates get distinct tokens.
  EXPECT_EQ(records[3].pair, records[4].pair);
  EXPECT_NE(records[1].pair, records[3].pair);
}

TEST(DeltaSetTest, ReassociatesUpdatePairsByToken) {
  UpdateLog log;
  log.Append(0, "Car", UpdateOp::kInsert, R(10));
  log.AppendUpdate(0, "Car", R(1), R(2));
  log.Append(0, "Car", UpdateOp::kDelete, R(20));

  DeltaSet deltas = DeltaSet::FromRecords(log.ReadSince(0));
  const TableDelta& car = deltas.ForTable("Car");
  ASSERT_EQ(car.inserts.size(), 2u);
  ASSERT_EQ(car.deletes.size(), 2u);
  ASSERT_EQ(car.update_pairs.size(), 1u);
  auto [d_idx, i_idx] = car.update_pairs[0];
  EXPECT_EQ(car.deletes[d_idx][0], Value::Int(1));
  EXPECT_EQ(car.inserts[i_idx][0], Value::Int(2));
}

TEST(DeltaSetTest, AdjacentDeleteInsertWithoutTokenDoesNotPair) {
  // A DELETE immediately followed by an INSERT is not an update: the
  // re-inserted row has a fresh RowId and may surface at a different
  // scan position. Only the token pairs — adjacency never does.
  UpdateLog log;
  log.Append(0, "Car", UpdateOp::kDelete, R(1));
  log.Append(0, "Car", UpdateOp::kInsert, R(2));

  DeltaSet deltas = DeltaSet::FromRecords(log.ReadSince(0));
  const TableDelta& car = deltas.ForTable("Car");
  EXPECT_EQ(car.inserts.size(), 1u);
  EXPECT_EQ(car.deletes.size(), 1u);
  EXPECT_TRUE(car.update_pairs.empty());
}

TEST(DeltaSetTest, PairSplitAcrossIntervalsStaysUnpairedInBoth) {
  UpdateLog log;
  uint64_t insert_seq = log.AppendUpdate(0, "Car", R(1), R(2));
  uint64_t delete_seq = insert_seq - 1;

  // One cycle consumes through the kDelete half, the next the rest.
  DeltaSet first = DeltaSet::FromRecords(log.ReadSince(0));
  DeltaSet older;
  for (const UpdateRecord& r : log.ReadSince(0)) {
    if (r.seq <= delete_seq) older.Add(r);
  }
  DeltaSet newer = DeltaSet::FromRecords(log.ReadSince(delete_seq));

  // Together they'd pair; split they degrade to plain Δ⁻ and Δ⁺ rows,
  // which the exact strategy treats conservatively.
  EXPECT_EQ(first.ForTable("Car").update_pairs.size(), 1u);
  EXPECT_EQ(older.ForTable("Car").deletes.size(), 1u);
  EXPECT_TRUE(older.ForTable("Car").update_pairs.empty());
  EXPECT_EQ(newer.ForTable("Car").inserts.size(), 1u);
  EXPECT_TRUE(newer.ForTable("Car").update_pairs.empty());
}

}  // namespace
}  // namespace cacheportal::db
