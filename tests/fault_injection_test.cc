#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/remote_cache.h"
#include "db/database.h"
#include "http/message.h"
#include "invalidator/fault_sink.h"
#include "invalidator/invalidator.h"
#include "net/http_server.h"
#include "server/fault_connection.h"
#include "server/jdbc.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal {
namespace {

TEST(FaultInjectorTest, SameSeedReplaysIdenticalDecisions) {
  FaultConfig config;
  config.drop_probability = 0.3;
  config.transient_error_probability = 0.2;
  FaultInjector a(42, config), b(42, config);

  std::vector<bool> decisions_a, decisions_b;
  for (int i = 0; i < 200; ++i) {
    decisions_a.push_back(a.ShouldDrop());
    decisions_a.push_back(a.ShouldError());
    decisions_b.push_back(b.ShouldDrop());
    decisions_b.push_back(b.ShouldError());
  }
  EXPECT_EQ(decisions_a, decisions_b);
  EXPECT_EQ(a.drops_injected(), b.drops_injected());
  // The mix actually fires both ways at these probabilities.
  EXPECT_GT(a.drops_injected(), 0u);
  EXPECT_LT(a.drops_injected(), 200u);
  EXPECT_GT(a.errors_injected(), 0u);
}

TEST(FaultInjectorTest, HealStopsInjectionButKeepsCounters) {
  FaultConfig config;
  config.drop_probability = 1.0;
  FaultInjector faults(7, config);
  EXPECT_TRUE(faults.ShouldDrop());
  EXPECT_TRUE(faults.ShouldDrop());
  faults.Heal();
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(faults.ShouldDrop());
  EXPECT_EQ(faults.drops_injected(), 2u);
}

TEST(FaultInjectorTest, MalformAltersBytesDeterministically) {
  std::string wire = http::HttpResponse::Ok("hello world").Serialize();
  FaultInjector a(99), b(99);
  for (int i = 0; i < 30; ++i) {
    std::string ma = a.Malform(wire);
    EXPECT_NE(ma, wire);
    EXPECT_EQ(ma, b.Malform(wire));  // Same seed: same corruption.
  }
}

TEST(FaultScheduleTest, BurstScheduleIsReproducibleAndWellFormed) {
  const Micros horizon = 60 * kMicrosPerSecond;
  const Micros burst = 2 * kMicrosPerSecond;
  std::vector<FaultWindow> a =
      FaultInjector::MakeBurstSchedule(1234, 5, horizon, burst);
  std::vector<FaultWindow> b =
      FaultInjector::MakeBurstSchedule(1234, 5, horizon, burst);
  std::vector<FaultWindow> c =
      FaultInjector::MakeBurstSchedule(4321, 5, horizon, burst);

  ASSERT_EQ(a.size(), 5u);
  Micros previous_end = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    // Same seed, same schedule; a different seed places bursts elsewhere.
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    // Well-formed: inside the horizon, full length, non-overlapping and
    // ordered (stratified placement guarantees it).
    EXPECT_GE(a[i].start, previous_end);
    EXPECT_EQ(a[i].end - a[i].start, burst);
    EXPECT_LE(a[i].end, horizon);
    EXPECT_EQ(a[i].config.drop_probability, 1.0);
    previous_end = a[i].end;
  }
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].start != c[i].start) differs = true;
  }
  EXPECT_TRUE(differs);

  EXPECT_TRUE(FaultInjector::MakeBurstSchedule(1, 0, horizon, burst).empty());
}

TEST(FaultScheduleTest, WindowsOverrideTheBaseConfigByClockTime) {
  ManualClock clock;
  FaultInjector faults(7);  // Base config: no faults at all.
  FaultWindow window;
  window.start = 10 * kMicrosPerSecond;
  window.end = 12 * kMicrosPerSecond;
  window.config.drop_probability = 1.0;
  faults.SetSchedule(&clock, {window});

  // Before the window: the (empty) base config applies.
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(faults.ShouldDrop());

  // Inside the window: total outage, regardless of the base config.
  clock.Advance(10 * kMicrosPerSecond);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(faults.ShouldDrop());
  EXPECT_EQ(faults.effective_config().drop_probability, 1.0);

  // The end is exclusive: at `end` the base config is back.
  clock.Advance(2 * kMicrosPerSecond);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(faults.ShouldDrop());

  // Heal() keeps the schedule armed; ClearSchedule() disarms it.
  clock.SetTime(11 * kMicrosPerSecond);
  faults.Heal();
  EXPECT_TRUE(faults.ShouldDrop());
  faults.ClearSchedule();
  EXPECT_FALSE(faults.ShouldDrop());
  EXPECT_EQ(faults.effective_config().drop_probability, 0.0);
}

class CountingSink : public invalidator::InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string&) override {
    ++deliveries;
    return Status::OK();
  }
  int deliveries = 0;
};

http::HttpRequest Eject(const std::string& url) {
  http::HttpRequest message = *http::HttpRequest::Get(url);
  message.headers.Set("Cache-Control", "eject");
  return message;
}

TEST(FaultInjectingSinkTest, DropAndErrorLoseTheMessage) {
  CountingSink inner;
  FaultConfig config;
  config.drop_probability = 1.0;
  FaultInjector faults(1, config);
  invalidator::FaultInjectingSink sink(&inner, &faults);

  EXPECT_FALSE(sink.SendInvalidation(Eject("http://c/p"), "k").ok());
  EXPECT_EQ(inner.deliveries, 0);  // Nothing reached the real sink.

  config.drop_probability = 0.0;
  config.transient_error_probability = 1.0;
  faults.SetConfig(config);
  EXPECT_FALSE(sink.SendInvalidation(Eject("http://c/p"), "k").ok());
  EXPECT_EQ(inner.deliveries, 0);

  faults.Heal();
  EXPECT_TRUE(sink.SendInvalidation(Eject("http://c/p"), "k").ok());
  EXPECT_EQ(inner.deliveries, 1);
}

TEST(FaultInjectingSinkTest, DelayDeliversButLosesTheAck) {
  // The at-least-once ambiguity: the message arrived, the ack did not.
  // The caller must treat this as failure and redeliver; the test also
  // shows why ejects being idempotent matters.
  CountingSink inner;
  FaultConfig config;
  config.delay_probability = 1.0;
  FaultInjector faults(1, config);
  invalidator::FaultInjectingSink sink(&inner, &faults);

  EXPECT_FALSE(sink.SendInvalidation(Eject("http://c/p"), "k").ok());
  EXPECT_EQ(inner.deliveries, 1);  // Delivered despite the failure report.
}

class FaultConnectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}))
            .ok());
    db_.ExecuteSql("INSERT INTO T VALUES (1)").value();
    driver_.BindDatabase("main", &db_);
    auto conn = driver_.Connect("jdbc:cacheportal:main");
    ASSERT_TRUE(conn.ok());
    conn_ = std::move(*conn);
  }

  ManualClock clock_;
  db::Database db_{&clock_};
  server::MemoryDbDriver driver_;
  std::unique_ptr<server::Connection> conn_;
};

TEST_F(FaultConnectionTest, ErrorsFailWithoutSideEffectsThenHeal) {
  FaultConfig config;
  config.transient_error_probability = 1.0;
  FaultInjector faults(3, config);
  server::FaultInjectingConnection flaky(conn_.get(), &faults);

  EXPECT_FALSE(flaky.ExecuteQuery("SELECT * FROM T").ok());
  EXPECT_FALSE(flaky.ExecuteUpdate("INSERT INTO T VALUES (2)").ok());
  // The failed update really was suppressed, not half-applied.
  EXPECT_EQ(conn_->ExecuteQuery("SELECT * FROM T")->rows.size(), 1u);

  faults.Heal();
  EXPECT_EQ(flaky.ExecuteQuery("SELECT * FROM T")->rows.size(), 1u);
  EXPECT_EQ(flaky.ExecuteUpdate("INSERT INTO T VALUES (2)").value(), 1);
}

TEST_F(FaultConnectionTest, DelaysExecuteButAccountLatency) {
  FaultConfig config;
  config.delay_probability = 1.0;
  config.delay = 10 * kMicrosPerMilli;
  FaultInjector faults(3, config);
  server::FaultInjectingConnection slow(conn_.get(), &faults);

  EXPECT_TRUE(slow.ExecuteQuery("SELECT * FROM T").ok());
  EXPECT_TRUE(slow.ExecuteQuery("SELECT * FROM T").ok());
  EXPECT_EQ(slow.injected_delay(), 20 * kMicrosPerMilli);
}

/// The invalidator's contract under a flaky polling connection: a failed
/// polling query costs precision (conservative invalidation), never
/// freshness — the page is ejected even though the poll could not run.
TEST(FlakyPollingTest, FailedPollsInvalidateConservatively) {
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db.CreateTable(db::TableSchema(
                         "Mileage", {{"model", db::ColumnType::kString},
                                     {"EPA", db::ColumnType::kInt}}))
          .ok());

  server::MemoryDbDriver driver;
  driver.BindDatabase("main", &db);
  auto conn = driver.Connect("jdbc:cacheportal:main").value();
  FaultConfig config;
  config.drop_probability = 1.0;  // Every poll fails.
  FaultInjector faults(11, config);
  server::FaultInjectingConnection flaky(conn.get(), &faults);

  sniffer::QiUrlMap map;
  CountingSink sink;
  invalidator::Invalidator inv(&db, &map, &clock);
  inv.AddSink(&sink);
  inv.SetPollingConnection(&flaky);

  map.Add(
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 20000",
      "shop/join?##", "/r", 0);
  // 'Focus' has no Mileage row: a successful poll would come back empty
  // and KEEP the page. With the poll failing, the invalidator cannot
  // prove the page unaffected and must eject it.
  db.ExecuteSql("INSERT INTO Car VALUES ('Ford', 'Focus', 15000)").value();
  auto report = inv.RunCycle().value();
  EXPECT_EQ(report.polls_issued, 1u);
  EXPECT_EQ(report.conservative_invalidations, 1u);
  EXPECT_EQ(report.pages_invalidated, 1u);
  EXPECT_EQ(sink.deliveries, 1);
  EXPECT_GT(faults.drops_injected(), 0u);
}

/// End-to-end wire faults: a WireCacheSink delivering over a real socket
/// to an HttpServer whose responses are corrupted by a FaultInjector.
TEST(WireFaultsTest, ServerFaultsSurfaceAsRetryableSinkFailures) {
  ManualClock clock;
  cache::PageCache page_cache(16, &clock);
  class Origin : public server::RequestHandler {
   public:
    http::HttpResponse Handle(const http::HttpRequest&) override {
      http::HttpResponse resp = http::HttpResponse::Ok("content");
      http::CacheControl cc;
      cc.is_private = true;
      cc.owner = http::kCachePortalOwner;
      resp.SetCacheControl(cc);
      return resp;
    }
  } origin;
  core::RemoteCacheEndpoint endpoint(&page_cache, &origin);
  FaultInjector faults(5);  // Healthy until configured otherwise.
  auto server = net::HttpServer::Start(net::WrapWireHandlerWithFaults(
      &faults, [&endpoint](const std::string& request) {
        return endpoint.HandleWire(request);
      }));
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  core::WireCacheSink sink([port](const std::string& bytes) {
    auto response = net::FetchWire(port, bytes);
    return response.ok() ? *response : std::string();
  });

  // Populate the remote cache over the healthy wire.
  auto get = http::HttpRequest::Get("http://edge/p?id=1");
  ASSERT_TRUE(net::FetchWire(port, get->Serialize()).ok());
  auto hit = http::HttpResponse::Parse(
      *net::FetchWire(port, get->Serialize()));
  ASSERT_EQ(hit->headers.Get("X-Cache"), "HIT");

  // A 503 from the faulted server is a failed, retryable delivery.
  FaultConfig config;
  config.transient_error_probability = 1.0;
  faults.SetConfig(config);
  http::HttpRequest eject = Eject("http://edge/p?id=1");
  EXPECT_FALSE(sink.SendInvalidation(eject, "k").ok());
  EXPECT_EQ(sink.ejections_failed(), 1u);

  // A dropped response likewise.
  config.transient_error_probability = 0.0;
  config.drop_probability = 1.0;
  faults.SetConfig(config);
  EXPECT_FALSE(sink.SendInvalidation(eject, "k").ok());
  EXPECT_EQ(sink.ejections_failed(), 2u);

  // Malform is the nasty one: the server EXECUTED the eject but the
  // acknowledgement is garbage, so the sink must report failure...
  config.drop_probability = 0.0;
  config.malform_probability = 1.0;
  faults.SetConfig(config);
  EXPECT_FALSE(sink.SendInvalidation(eject, "k").ok());
  EXPECT_EQ(sink.ejections_failed(), 3u);

  // ...and the redelivery after healing succeeds via the idempotent 404
  // path (the page is already gone).
  faults.Heal();
  EXPECT_TRUE(sink.SendInvalidation(eject, "k").ok());
  auto miss = http::HttpResponse::Parse(
      *net::FetchWire(port, get->Serialize()));
  EXPECT_EQ(miss->headers.Get("X-Cache"), "MISS");
}

}  // namespace
}  // namespace cacheportal
