#include <gtest/gtest.h>

#include "http/cache_control.h"
#include "http/message.h"
#include "http/url.h"

namespace cacheportal::http {
namespace {

// ---------------------------------------------------------------------
// URL encoding and parameters
// ---------------------------------------------------------------------

TEST(UrlTest, EncodeDecodeRoundTrip) {
  std::string original = "a b&c=d/e?f#g'100%";
  EXPECT_EQ(UrlDecode(UrlEncode(original)), original);
}

TEST(UrlTest, EncodeKeepsUnreserved) {
  EXPECT_EQ(UrlEncode("AZaz09-_.~"), "AZaz09-_.~");
  EXPECT_EQ(UrlEncode("a b"), "a%20b");
}

TEST(UrlTest, DecodePlusAsSpaceAndBadEscapes) {
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("100%"), "100%");    // Trailing % passes through.
  EXPECT_EQ(UrlDecode("%zz"), "%zz");      // Invalid escape preserved.
  EXPECT_EQ(UrlDecode("%41"), "A");
}

TEST(UrlTest, ParseQueryString) {
  ParamMap params = ParseQueryString("model=Avalon&price=25000&flag=");
  EXPECT_EQ(params.size(), 3u);
  EXPECT_EQ(params["model"], "Avalon");
  EXPECT_EQ(params["flag"], "");
}

TEST(UrlTest, BuildQueryStringSortedAndEncoded) {
  ParamMap params{{"b", "2"}, {"a", "1 x"}};
  EXPECT_EQ(BuildQueryString(params), "a=1%20x&b=2");
}

TEST(UrlTest, CookieRoundTrip) {
  ParamMap cookies = ParseCookieString("session=abc123; user=selcuk");
  EXPECT_EQ(cookies["session"], "abc123");
  EXPECT_EQ(cookies["user"], "selcuk");
  EXPECT_EQ(BuildCookieString(cookies), "session=abc123; user=selcuk");
}

// ---------------------------------------------------------------------
// PageId
// ---------------------------------------------------------------------

TEST(PageIdTest, FromUrl) {
  auto id = PageId::FromUrl("http://shop.example.com/cars?model=Avalon");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->host(), "shop.example.com");
  EXPECT_EQ(id->path(), "/cars");
  EXPECT_EQ(id->get_params().at("model"), "Avalon");
}

TEST(PageIdTest, FromUrlWithoutScheme) {
  auto id = PageId::FromUrl("example.com/x");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->host(), "example.com");
  EXPECT_EQ(id->path(), "/x");
}

TEST(PageIdTest, HostOnlyGetsRootPath) {
  auto id = PageId::FromUrl("http://example.com");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->path(), "/");
}

TEST(PageIdTest, CacheKeyDistinguishesParamKinds) {
  PageId a("h", "/p");
  a.get_params()["x"] = "1";
  PageId b("h", "/p");
  b.post_params()["x"] = "1";
  PageId c("h", "/p");
  c.cookie_params()["x"] = "1";
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  EXPECT_NE(b.CacheKey(), c.CacheKey());
  EXPECT_NE(a.CacheKey(), c.CacheKey());
}

TEST(PageIdTest, CacheKeyRoundTrip) {
  PageId id("shop.example.com", "/cars");
  id.get_params()["model"] = "Avalon Deluxe";
  id.post_params()["qty"] = "2";
  id.cookie_params()["session"] = "s1";
  auto back = PageId::FromCacheKey(id.CacheKey());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, id);
  EXPECT_EQ(back->CacheKey(), id.CacheKey());
}

TEST(PageIdTest, FromCacheKeyErrors) {
  EXPECT_FALSE(PageId::FromCacheKey("nohostpath").ok());
  EXPECT_FALSE(PageId::FromCacheKey("h/p").ok());
  EXPECT_FALSE(PageId::FromCacheKey("h/p?x=1").ok());
}

// ---------------------------------------------------------------------
// Cache-Control
// ---------------------------------------------------------------------

TEST(CacheControlTest, ParseStandardDirectives) {
  CacheControl cc = CacheControl::Parse("no-cache, max-age=60, public");
  EXPECT_TRUE(cc.no_cache);
  EXPECT_TRUE(cc.is_public);
  EXPECT_EQ(cc.max_age_seconds, 60);
  EXPECT_FALSE(cc.eject);
}

TEST(CacheControlTest, ParsePaperExtensions) {
  CacheControl cc = CacheControl::Parse("private, owner=\"cacheportal\"");
  EXPECT_TRUE(cc.is_private);
  EXPECT_EQ(cc.owner, "cacheportal");
  EXPECT_TRUE(cc.CacheableByCachePortal());
  EXPECT_FALSE(cc.CacheableByGenericCache());

  CacheControl eject = CacheControl::Parse("eject");
  EXPECT_TRUE(eject.eject);
}

TEST(CacheControlTest, PrivateWithForeignOwnerNotCacheable) {
  CacheControl cc = CacheControl::Parse("private, owner=\"other\"");
  EXPECT_FALSE(cc.CacheableByCachePortal());
}

TEST(CacheControlTest, NoStoreBeatsEverything) {
  CacheControl cc = CacheControl::Parse("no-store, owner=\"cacheportal\"");
  EXPECT_FALSE(cc.CacheableByCachePortal());
}

TEST(CacheControlTest, RoundTripThroughHeaderValue) {
  CacheControl cc;
  cc.is_private = true;
  cc.owner = "cacheportal";
  cc.max_age_seconds = 30;
  CacheControl back = CacheControl::Parse(cc.ToHeaderValue());
  EXPECT_EQ(back, cc);
}

TEST(CacheControlTest, UnknownDirectivesIgnored) {
  CacheControl cc = CacheControl::Parse("s-maxage=10, weird, no-cache");
  EXPECT_TRUE(cc.no_cache);
}

// ---------------------------------------------------------------------
// HTTP messages
// ---------------------------------------------------------------------

TEST(HttpRequestTest, GetFactoryAndPageId) {
  auto req = HttpRequest::Get("http://shop/cars?model=Avalon");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, Method::kGet);
  EXPECT_EQ(req->host, "shop");
  PageId id = req->ToPageId();
  EXPECT_EQ(id.get_params().at("model"), "Avalon");
}

TEST(HttpRequestTest, SerializeParseRoundTrip) {
  auto req = HttpRequest::Get("http://shop/cars?model=Avalon&x=a b");
  ASSERT_TRUE(req.ok());
  req->cookies["session"] = "s1";
  req->headers.Add("X-Test", "yes");
  auto parsed = HttpRequest::Parse(req->Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->host, "shop");
  EXPECT_EQ(parsed->path, "/cars");
  EXPECT_EQ(parsed->get_params.at("x"), "a b");
  EXPECT_EQ(parsed->cookies.at("session"), "s1");
  EXPECT_EQ(parsed->headers.Get("X-Test"), "yes");
}

TEST(HttpRequestTest, PostFormRoundTrip) {
  auto req = HttpRequest::Post("http://shop/buy", {{"qty", "2"},
                                                   {"model", "Civic"}});
  ASSERT_TRUE(req.ok());
  auto parsed = HttpRequest::Parse(req->Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, Method::kPost);
  EXPECT_EQ(parsed->post_params.at("qty"), "2");
}

TEST(HttpRequestTest, ParseErrors) {
  EXPECT_FALSE(HttpRequest::Parse("garbage").ok());
  EXPECT_FALSE(HttpRequest::Parse("PUT / HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(HttpRequest::Parse("GET /\r\n\r\n").ok());  // Bad line.
}

TEST(HttpResponseTest, SerializeParseRoundTrip) {
  HttpResponse resp = HttpResponse::Ok("<html>page</html>");
  resp.headers.Set("Content-Type", "text/html");
  CacheControl cc;
  cc.is_private = true;
  cc.owner = kCachePortalOwner;
  resp.SetCacheControl(cc);

  auto parsed = HttpResponse::Parse(resp.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status_code, 200);
  EXPECT_EQ(parsed->body, "<html>page</html>");
  EXPECT_EQ(parsed->GetCacheControl(), cc);
}

TEST(HttpResponseTest, MissingCacheControlDefaults) {
  HttpResponse resp = HttpResponse::Ok("x");
  CacheControl cc = resp.GetCacheControl();
  EXPECT_FALSE(cc.no_cache);
  EXPECT_FALSE(cc.is_private);
}

TEST(HeaderMapTest, CaseInsensitiveAndMultiValue) {
  HeaderMap headers;
  headers.Add("X-Tag", "a");
  headers.Add("x-tag", "b");
  EXPECT_EQ(headers.Get("X-TAG"), "a");
  EXPECT_EQ(headers.GetAll("x-Tag").size(), 2u);
  headers.Set("x-tag", "c");
  EXPECT_EQ(headers.GetAll("X-Tag").size(), 1u);
  EXPECT_EQ(headers.Remove("X-TAG"), 1u);
  EXPECT_FALSE(headers.Has("x-tag"));
}

TEST(ReasonPhraseTest, KnownCodes) {
  EXPECT_STREQ(ReasonPhrase(200), "OK");
  EXPECT_STREQ(ReasonPhrase(404), "Not Found");
  EXPECT_STREQ(ReasonPhrase(204), "No Content");
  EXPECT_STREQ(ReasonPhrase(777), "Unknown");
}

}  // namespace
}  // namespace cacheportal::http
