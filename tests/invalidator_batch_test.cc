// Columnar batch impact analysis: ProbeBatch vs scalar Probe property
// tests, the NaN bind-index regression, batch on/off differential
// sweeps, and consolidated-poll accounting across chunk sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/bind_index.h"
#include "invalidator/invalidator.h"
#include "invalidator/registry.h"
#include "invalidator/type_matcher.h"
#include "server/jdbc.h"
#include "sniffer/qiurl_map.h"
#include "sql/column_batch.h"
#include "sql/template.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

/// A polling target whose every query fails, for exercising the
/// conservative degradation path.
class FailingConnection : public server::Connection {
 public:
  Result<db::QueryResult> ExecuteQuery(const std::string&) override {
    return Status::Internal("injected poll failure");
  }
  Result<int64_t> ExecuteUpdate(const std::string&) override {
    return Status::Internal("injected poll failure");
  }
};

// ---------------------------------------------------------------------------
// ProbeBatch vs per-tuple Probe: the columnar probe must reproduce the
// scalar accumulation element for element, for every anchor relation,
// on both the kernel path (few index entries) and the sorted-merge path
// (many entries), across the full value zoo — NULL, booleans, strings,
// duplicates, ±inf, -0.0, and NaN.
// ---------------------------------------------------------------------------

/// Compiles `sql` as the template of a fresh query type against `db`.
TypeMatcher CompileType(const db::Database& db, uint64_t type_id,
                        const std::string& sql, QueryType* type) {
  type->type_id = type_id;
  type->name = StrCat("type", type_id);
  type->tmpl = sql::ExtractTemplateFromSql(sql).value();
  return TypeMatcher::Compile(*type, db);
}

/// An instance of a hand-compiled type. AddInstance/Probe read only the
/// IDs and the bindings, so no parsed statement is needed — and bindings
/// can hold values SQL text cannot spell (NaN, ±inf, -0.0).
QueryInstance MakeInstance(uint64_t instance_id, uint64_t type_id,
                           std::vector<Value> bindings) {
  QueryInstance instance;
  instance.instance_id = instance_id;
  instance.type_id = type_id;
  instance.sql = StrCat("instance-", instance_id);
  instance.bindings = std::move(bindings);
  return instance;
}

Value RandomValue(Random& rng) {
  switch (rng.Uniform(12)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng.OneIn(0.5));
    case 2:
    case 3:
      return Value::String(StrCat("s", rng.Uniform(5)));
    case 4:
      return Value::Double(kInf);
    case 5:
      return Value::Double(-kInf);
    case 6:
      return Value::Double(kNaN);
    case 7:
      return Value::Double(-0.0);
    case 8:
      return Value::Double(static_cast<double>(rng.Uniform(8)) - 3.5);
    default:
      return Value::Int(static_cast<int64_t>(rng.Uniform(8)) - 4);
  }
}

TEST(ProbeBatchPropertyTest, MatchesScalarProbeElementForElement) {
  const struct {
    const char* sql;
    size_t operands;
  } kCases[] = {
      {"SELECT * FROM T WHERE c = 1", 1},
      {"SELECT * FROM T WHERE c < 1", 1},
      {"SELECT * FROM T WHERE c <= 1", 1},
      {"SELECT * FROM T WHERE c > 1", 1},
      {"SELECT * FROM T WHERE c >= 1", 1},
      {"SELECT * FROM T WHERE c BETWEEN 1 AND 2", 2},
      {"SELECT * FROM T WHERE c IN (1, 2, 3)", 3},
  };
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE(StrCat("seed=", seed));
    Random rng(seed);
    ManualClock clock;
    db::Database db(&clock);
    ASSERT_TRUE(
        db.CreateTable(db::TableSchema("T", {{"c", db::ColumnType::kInt},
                                             {"pad", db::ColumnType::kString}}))
            .ok());

    BindIndex index;
    std::vector<std::pair<uint64_t, TypeMatcher>> matchers;
    uint64_t next_instance = 1;
    uint64_t next_type = 1;
    for (const auto& c : kCases) {
      QueryType type;
      TypeMatcher matcher = CompileType(db, next_type, c.sql, &type);
      ASSERT_TRUE(matcher.handled()) << c.sql;
      // 3 entries stays on the per-entry kernel path, 12 crosses the
      // sorted-merge threshold.
      size_t count = rng.OneIn(0.5) ? 3 : 12;
      for (size_t i = 0; i < count; ++i) {
        std::vector<Value> bindings;
        for (size_t k = 0; k < c.operands; ++k) {
          bindings.push_back(RandomValue(rng));
        }
        index.AddInstance(matcher,
                          MakeInstance(next_instance++, next_type,
                                       std::move(bindings)));
      }
      matchers.emplace_back(next_type, std::move(matcher));
      ++next_type;
    }

    size_t num_rows = 1 + rng.Uniform(60);
    std::vector<db::Row> rows;
    rows.reserve(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      rows.push_back({RandomValue(rng), Value::String("pad")});
    }
    std::vector<const db::Row*> row_ptrs;
    for (const db::Row& row : rows) row_ptrs.push_back(&row);
    sql::ColumnBatch batch = sql::ColumnBatch::FromRows(row_ptrs);

    for (const auto& [type_id, matcher] : matchers) {
      SCOPED_TRACE(StrCat("type=", type_id));
      const CompiledAnchor* anchor = matcher.AnchorFor("t");
      ASSERT_NE(anchor, nullptr);

      BindIndex::BatchProbe expect;
      for (uint32_t ti = 0; ti < rows.size(); ++ti) {
        BindIndex::Candidates candidates =
            index.Probe(type_id, "t", *anchor, rows[ti][anchor->column_index]);
        if (candidates.all) {
          expect.all_rows.push_back(ti);
          continue;
        }
        for (uint64_t id : candidates.ids) expect.per_id[id].push_back(ti);
      }

      BindIndex::BatchProbe got;
      MatcherStats stats;
      index.ProbeBatch(type_id, "t", *anchor,
                       batch.Column(anchor->column_index), &got, &stats);
      EXPECT_EQ(got.all_rows, expect.all_rows);
      EXPECT_EQ(got.per_id, expect.per_id);
    }
  }
}

// ---------------------------------------------------------------------------
// Non-finite bind regression (the std::map strict-weak-ordering bug): a
// NaN bind value must never become a sorted-map or hash key — it routes
// to the always-candidate lists — and a NaN tuple value probes as "all
// candidates". ±inf keys order and hash fine and index normally.
// ---------------------------------------------------------------------------

class NaNBindTest : public ::testing::Test {
 protected:
  NaNBindTest() : db_(&clock_) {}
  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable(db::TableSchema("T", {{"c", db::ColumnType::kInt}}))
            .ok());
  }

  std::vector<uint64_t> ProbeIds(const BindIndex& index, uint64_t type_id,
                                 const CompiledAnchor& anchor,
                                 const Value& tuple) {
    BindIndex::Candidates candidates = index.Probe(type_id, "t", anchor, tuple);
    EXPECT_FALSE(candidates.all);
    std::sort(candidates.ids.begin(), candidates.ids.end());
    return candidates.ids;
  }

  ManualClock clock_;
  db::Database db_;
};

TEST_F(NaNBindTest, RangeNaNBindIsAlwaysCandidateAndMapStaysOrdered) {
  QueryType type;
  TypeMatcher matcher = CompileType(db_, 1, "SELECT * FROM T WHERE c < 10",
                                    &type);
  ASSERT_TRUE(matcher.handled());
  const CompiledAnchor& anchor = *matcher.AnchorFor("t");

  BindIndex index;
  // Interleave the NaN bind between ordinary keys: before the fix it
  // landed inside range_num and silently broke the map's ordering.
  index.AddInstance(matcher, MakeInstance(1, 1, {Value::Int(10)}));
  index.AddInstance(matcher, MakeInstance(2, 1, {Value::Double(kNaN)}));
  index.AddInstance(matcher, MakeInstance(3, 1, {Value::Int(20)}));
  index.AddInstance(matcher, MakeInstance(4, 1, {Value::Int(30)}));
  index.AddInstance(matcher, MakeInstance(5, 1, {Value::Double(kInf)}));

  // c < bind survives for binds > 15: instances 3, 4, the +inf bind 5 —
  // and the NaN bind 2, which no comparison can definitely exclude.
  EXPECT_EQ(ProbeIds(index, 1, anchor, Value::Int(15)),
            (std::vector<uint64_t>{2, 3, 4, 5}));
  // Far right of every finite key: only +inf and NaN remain.
  EXPECT_EQ(ProbeIds(index, 1, anchor, Value::Int(1000)),
            (std::vector<uint64_t>{2, 5}));
  // A NaN TUPLE value is unordered against every key: all candidates.
  EXPECT_TRUE(index.Probe(1, "t", anchor, Value::Double(kNaN)).all);

  // The always-routing must be fully removable (postings recorded).
  index.RemoveInstance(2);
  EXPECT_FALSE(index.ContainsInstance(2));
  EXPECT_EQ(ProbeIds(index, 1, anchor, Value::Int(1000)),
            (std::vector<uint64_t>{5}));
}

TEST_F(NaNBindTest, EqInAndBetweenNaNBindsRouteToAlwaysLists) {
  BindIndex index;
  QueryType eq_type, in_type, between_type;
  TypeMatcher eq = CompileType(db_, 1, "SELECT * FROM T WHERE c = 1",
                               &eq_type);
  TypeMatcher in = CompileType(db_, 2, "SELECT * FROM T WHERE c IN (1, 2)",
                               &in_type);
  TypeMatcher between = CompileType(
      db_, 3, "SELECT * FROM T WHERE c BETWEEN 1 AND 2", &between_type);
  ASSERT_TRUE(eq.handled() && in.handled() && between.handled());

  index.AddInstance(eq, MakeInstance(1, 1, {Value::Double(kNaN)}));
  index.AddInstance(eq, MakeInstance(2, 1, {Value::Int(7)}));
  // A NaN IN item taints the whole list (Value::Compare folds NaN
  // "equal" to every numeric, so no miss is definite).
  index.AddInstance(in, MakeInstance(3, 2,
                                     {Value::Int(1), Value::Double(kNaN)}));
  index.AddInstance(in, MakeInstance(4, 2, {Value::Int(1), Value::Int(2)}));
  // One NaN BETWEEN bound de-indexes the pair.
  index.AddInstance(between,
                    MakeInstance(5, 3, {Value::Double(kNaN), Value::Int(9)}));
  index.AddInstance(between,
                    MakeInstance(6, 3, {Value::Int(1), Value::Int(9)}));

  const CompiledAnchor& eq_anchor = *eq.AnchorFor("t");
  const CompiledAnchor& in_anchor = *in.AnchorFor("t");
  const CompiledAnchor& between_anchor = *between.AnchorFor("t");

  // Equality: tuple 8 misses bind 7 but can never exclude the NaN bind.
  EXPECT_EQ(ProbeIds(index, 1, eq_anchor, Value::Int(8)),
            (std::vector<uint64_t>{1}));
  // For STRING tuples every numeric-bind instance is an always
  // candidate (cross-class comparisons fold NULL), and the NaN bind
  // sits on both always lists — so both survive.
  EXPECT_EQ(ProbeIds(index, 1, eq_anchor, Value::String("x")),
            (std::vector<uint64_t>{1, 2}));
  // IN: tuple 5 is in neither list, but the NaN-tainted member stays.
  EXPECT_EQ(ProbeIds(index, 2, in_anchor, Value::Int(5)),
            (std::vector<uint64_t>{3}));
  // BETWEEN: tuple 20 is outside [1, 9]; the NaN-bounded pair stays.
  EXPECT_EQ(ProbeIds(index, 3, between_anchor, Value::Int(20)),
            (std::vector<uint64_t>{5}));
}

// ---------------------------------------------------------------------------
// Batch on/off differential sweep: the columnar pipeline must produce
// byte-identical ejected pages, cycle summaries, and StatsReport() at
// every (workers x shards) point, with the scalar path as the oracle.
// ---------------------------------------------------------------------------

void CreateCarTables(db::Database* db) {
  ASSERT_TRUE(db->CreateTable(db::TableSchema(
                                  "Car", {{"maker", db::ColumnType::kString},
                                          {"model", db::ColumnType::kString},
                                          {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db->CreateTable(db::TableSchema(
                          "Mileage", {{"model", db::ColumnType::kString},
                                      {"EPA", db::ColumnType::kInt}}))
          .ok());
}

std::string ReportKey(const CycleReport& r) {
  return StrCat(r.updates, "/", r.new_instances, "/", r.checks, "/",
                r.affected_instances, "/", r.polls_issued, "/",
                r.polls_answered_by_index, "/", r.conservative_invalidations,
                "/", r.pages_invalidated, "/", DegradationModeName(r.mode));
}

struct MatrixResult {
  std::vector<std::set<std::string>> cycle_invalidated;
  std::vector<std::string> cycle_reports;
  std::string stats_report;
};

MatrixResult RunBatchScenario(uint64_t seed, size_t shards, size_t workers,
                              bool batch) {
  Random rng(seed);
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};
  const char* models[] = {"Avalon", "Civic", "Eclipse", "Corolla"};
  for (int i = 0; i < 16; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('", makers[rng.Uniform(4)],
                         "', '", models[rng.Uniform(4)], "', ",
                         rng.Uniform(30000), ")"))
        .value();
  }
  for (int i = 0; i < 4; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('",
                         models[rng.Uniform(4)], "', ", 20 + rng.Uniform(15),
                         ")"))
        .value();
  }

  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.metadata_shards = shards;
  options.worker_threads = workers;
  options.batch_impact = batch;
  options.max_polls_per_cycle = 3;  // Budget pressure: condemnations.
  options.polling_cache_capacity = 8;
  Invalidator inv(&db, &map, &clock, options);
  EXPECT_TRUE(inv.CreateJoinIndex("Mileage", "model").ok());
  RecordingSink sink;
  inv.AddSink(&sink);

  // Twelve instances of the maker-equality type push its bucket past
  // the kernel/merge threshold; the other shapes cover interval, IN,
  // BETWEEN, join, and a type the compiler cannot anchor (stays on the
  // interpreted path alongside the batched types).
  std::vector<std::string> sqls;
  for (int i = 0; i < 12; ++i) {
    sqls.push_back(StrCat("SELECT * FROM Car WHERE maker = '",
                          makers[rng.Uniform(4)], "'"));
  }
  for (int i = 0; i < 4; ++i) {
    sqls.push_back(StrCat("SELECT * FROM Car WHERE price < ",
                          4000 + rng.Uniform(26000)));
    sqls.push_back(StrCat("SELECT * FROM Car WHERE price BETWEEN ",
                          2000 + rng.Uniform(8000), " AND ",
                          15000 + rng.Uniform(15000)));
    sqls.push_back(StrCat("SELECT * FROM Car WHERE model IN ('",
                          models[rng.Uniform(4)], "', '",
                          models[rng.Uniform(4)], "')"));
    sqls.push_back(
        StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model = "
               "Mileage.model AND Car.price < ",
               6000 + rng.Uniform(20000)));
    sqls.push_back(
        StrCat("SELECT * FROM Mileage WHERE EPA > ", 18 + rng.Uniform(14)));
  }
  // De-duplicate: identical SQL re-registers the same instance.
  std::sort(sqls.begin(), sqls.end());
  sqls.erase(std::unique(sqls.begin(), sqls.end()), sqls.end());

  auto recache = [&map, &sqls]() {
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
  };
  recache();
  inv.RunCycle().value();  // Register the pages; the log is quiet.

  MatrixResult result;
  for (int round = 0; round < 6; ++round) {
    for (int u = 0; u < 1 + static_cast<int>(rng.Uniform(3)); ++u) {
      switch (rng.Uniform(4)) {
        case 0:
          db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                               makers[rng.Uniform(4)], "', '",
                               models[rng.Uniform(4)], "', ",
                               rng.Uniform(30000), ")"))
              .value();
          break;
        case 1:
          db.ExecuteSql(StrCat("DELETE FROM Car WHERE price > ",
                               15000 + rng.Uniform(15000)))
              .value();
          break;
        case 2:
          db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('",
                               models[rng.Uniform(4)], "', ",
                               20 + rng.Uniform(15), ")"))
              .value();
          break;
        default:
          db.ExecuteSql(StrCat("DELETE FROM Mileage WHERE EPA > ",
                               25 + rng.Uniform(10)))
              .value();
          break;
      }
    }
    sink.invalidated.clear();
    CycleReport report = inv.RunCycle().value();
    result.cycle_invalidated.push_back(sink.invalidated);
    result.cycle_reports.push_back(ReportKey(report));
    recache();
    inv.RunCycle().value();  // Consume the re-cached pages.
  }
  result.stats_report = inv.StatsReport();
  return result;
}

class BatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDifferentialTest, BatchOnOffIsByteIdenticalAcrossTheMatrix) {
  MatrixResult oracle = RunBatchScenario(GetParam(), 1, 1, /*batch=*/false);
  size_t total = 0;
  for (const auto& cycle : oracle.cycle_invalidated) total += cycle.size();
  EXPECT_GT(total, 0u);

  for (bool batch : {false, true}) {
    for (size_t shards : {1u, 4u}) {
      for (size_t workers : {1u, 4u}) {
        if (!batch && shards == 1 && workers == 1) continue;
        SCOPED_TRACE(StrCat("batch=", batch, " shards=", shards,
                            " workers=", workers));
        MatrixResult got = RunBatchScenario(GetParam(), shards, workers, batch);
        EXPECT_EQ(oracle.cycle_invalidated, got.cycle_invalidated);
        EXPECT_EQ(oracle.cycle_reports, got.cycle_reports);
        EXPECT_EQ(oracle.stats_report, got.stats_report);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferentialTest,
                         ::testing::Range<uint64_t>(1, 12));

// ---------------------------------------------------------------------------
// Consolidated-poll accounting: polls_issued and the per-member failure
// degradation must be identical across every consolidated_poll_chunk
// value — including the last partial chunk, single-member buckets, and
// chunk=0 (unlimited) — with the serial (consolidation-off) path as the
// oracle. Asserted on the full StatsReport string.
// ---------------------------------------------------------------------------

struct ChunkResult {
  std::string stats_report;
  std::set<std::string> ejected;
};

ChunkResult RunChunkScenario(bool consolidate, size_t chunk, bool fail_polls) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  db.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 25)").value();

  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.consolidate_polls = consolidate;
  options.consolidated_poll_chunk = chunk;
  Invalidator inv(&db, &map, &clock, options);
  RecordingSink sink;
  inv.AddSink(&sink);
  FailingConnection failing;
  if (fail_polls) inv.SetPollingConnection(&failing);

  // A ten-member bucket (EPA thresholds straddling the lone row at 25:
  // hits for 30..100, misses for 10 and 20), plus a single-member bucket
  // of a second type, which must keep the exact per-query path.
  for (int t = 10; t <= 100; t += 10) {
    map.Add(StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model = "
                   "Mileage.model AND Mileage.EPA < ",
                   t),
            StrCat("shop/epa", t, "?##"), "/r", 0);
  }
  map.Add("SELECT Car.maker FROM Car, Mileage WHERE Car.model = "
          "Mileage.model AND Mileage.EPA > 99",
          "shop/single?##", "/r", 0);
  db.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)").value();
  inv.RunCycle().value();

  ChunkResult result;
  result.stats_report = inv.StatsReport();
  result.ejected = sink.invalidated;
  return result;
}

TEST(PollAccountingTest, ChunkSizeNeverChangesStatsReportOrEjections) {
  for (bool fail_polls : {false, true}) {
    SCOPED_TRACE(StrCat("fail_polls=", fail_polls));
    ChunkResult oracle =
        RunChunkScenario(/*consolidate=*/false, 64, fail_polls);
    EXPECT_FALSE(oracle.ejected.empty());
    // chunk=1 (degenerate single-member statements), 2, 4 (last chunk
    // partial: 10 = 4+4+2), 10 (exact bucket size), 64 (one statement),
    // 0 (unlimited).
    for (size_t chunk : {1u, 2u, 4u, 10u, 64u, 0u}) {
      SCOPED_TRACE(StrCat("chunk=", chunk));
      ChunkResult got = RunChunkScenario(/*consolidate=*/true, chunk,
                                         fail_polls);
      EXPECT_EQ(got.stats_report, oracle.stats_report);
      EXPECT_EQ(got.ejected, oracle.ejected);
    }
  }
}

// ---------------------------------------------------------------------------
// Large-world smoke: a single-table equality world at smoke scale (see
// CACHEPORTAL_SMOKE_INSTANCES; the benchmark suite drives the same shape
// to 10^6) — batch on and off must eject exactly the touched pages and
// produce identical summaries.
// ---------------------------------------------------------------------------

TEST(BatchSmokeTest, LargeEqualityWorldIsIdenticalBatchOnAndOff) {
  size_t instances = 20000;
  if (const char* env = std::getenv("CACHEPORTAL_SMOKE_INSTANCES")) {
    instances = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  std::set<std::string> ejected[2];
  std::string reports[2];
  for (int pass = 0; pass < 2; ++pass) {
    bool batch = pass == 1;
    ManualClock clock;
    db::Database db(&clock);
    ASSERT_TRUE(
        db.CreateTable(db::TableSchema("Item", {{"k", db::ColumnType::kInt},
                                                {"v", db::ColumnType::kInt}}))
            .ok());
    sniffer::QiUrlMap map;
    InvalidatorOptions options;
    options.batch_impact = batch;
    // The subject is the batch-probe machinery; the exact tier would
    // otherwise claim these single-table equality types and bypass it.
    options.exact_strategy = false;
    Invalidator inv(&db, &map, &clock, options);
    RecordingSink sink;
    inv.AddSink(&sink);
    for (size_t i = 0; i < instances; ++i) {
      map.Add(StrCat("SELECT * FROM Item WHERE k = ", i),
              StrCat("item/", i, "?##"), "/r", 0);
    }
    inv.RunCycle().value();
    // Touch a sample of keys spread across the world, plus misses.
    Random rng(7);
    std::set<std::string> expect;
    for (int u = 0; u < 32; ++u) {
      size_t k = rng.Uniform(instances + 100);  // Some beyond every key.
      db.ExecuteSql(StrCat("INSERT INTO Item VALUES (", k, ", 1)")).value();
      if (k < instances) expect.insert(StrCat("item/", k, "?##"));
    }
    CycleReport report = inv.RunCycle().value();
    EXPECT_EQ(sink.invalidated, expect);
    ejected[pass] = sink.invalidated;
    reports[pass] = ReportKey(report);
    if (batch) {
      EXPECT_GT(inv.matcher_stats().batch_probes, 0u);
      EXPECT_GT(inv.matcher_stats().fast_path_instances, 0u);
    }
  }
  EXPECT_EQ(ejected[0], ejected[1]);
  EXPECT_EQ(reports[0], reports[1]);
}

}  // namespace
}  // namespace cacheportal::invalidator
