#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/reliable_delivery.h"
#include "db/database.h"
#include "invalidator/baseline.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"
#include "sql/template.h"

namespace cacheportal::invalidator {
namespace {

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

void CreateCarTables(db::Database* db) {
  ASSERT_TRUE(db->CreateTable(db::TableSchema(
                                  "Car", {{"maker", db::ColumnType::kString},
                                          {"model", db::ColumnType::kString},
                                          {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db->CreateTable(db::TableSchema(
                          "Mileage", {{"model", db::ColumnType::kString},
                                      {"EPA", db::ColumnType::kInt}}))
          .ok());
}

/// The core recovery scenario: updates commit while the invalidator is
/// down. A naive restart attaches at the log tail and silently misses
/// them; Restore() rewinds to the checkpointed position and replays.
TEST(InvalidatorCheckpointTest, RestoreReplaysUpdatesCommittedDuringOutage) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;

  RecordingSink sink1;
  auto inv1 = std::make_unique<Invalidator>(&db, &map, &clock);
  inv1->AddSink(&sink1);
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);
  inv1->RunCycle().value();  // Registers the instance; nothing stale yet.
  std::string checkpoint = inv1->Checkpoint();

  // Crash. An update commits while the invalidator is down.
  inv1.reset();
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();

  RecordingSink sink2;
  Invalidator inv2(&db, &map, &clock);
  inv2.AddSink(&sink2);
  // Demonstrate the hazard: a fresh invalidator attaches at the current
  // log tail, i.e. it would never see the outage-time insert.
  EXPECT_EQ(inv2.consumed_update_seq(), db.update_log().LastSeq());

  ASSERT_TRUE(inv2.Restore(checkpoint).ok());
  EXPECT_LT(inv2.consumed_update_seq(), db.update_log().LastSeq());

  inv2.RunCycle().value();
  EXPECT_TRUE(sink2.invalidated.contains("shop/cheap?##"));
}

TEST(InvalidatorCheckpointTest, RestoreRejectsGarbage) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;
  Invalidator inv(&db, &map, &clock);
  EXPECT_FALSE(inv.Restore("").ok());
  EXPECT_FALSE(inv.Restore("not a checkpoint").ok());
  std::string good = inv.Checkpoint();
  EXPECT_FALSE(inv.Restore(good.substr(0, good.size() - 4)).ok());
  EXPECT_TRUE(inv.Restore(good).ok());
}

/// Regression for a silent-corruption bug: numeric checkpoint fields
/// were parsed with bare strtoull, so a corrupt `update_seq xyz` line
/// "restored" sequence 0 — rewinding the cursor to the log's beginning
/// and replaying every update ever committed. Corruption must be a loud
/// ParseError, and a failed Restore must leave the invalidator's state
/// untouched.
TEST(InvalidatorCheckpointTest, RestoreRejectsCorruptNumericFields) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();
  sniffer::QiUrlMap map;
  Invalidator inv(&db, &map, &clock);
  inv.RunCycle().value();
  const uint64_t seq_before = inv.consumed_update_seq();
  ASSERT_GT(seq_before, 0u);
  const std::string good = inv.Checkpoint();
  ASSERT_NE(good.find(StrCat("update_seq ", seq_before)), std::string::npos);

  auto corrupt = [&good](const std::string& from, const std::string& to) {
    std::string bad = good;
    size_t at = bad.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    bad.replace(at, from.size(), to);
    return bad;
  };
  const std::string seq_line = StrCat("update_seq ", seq_before);
  const std::vector<std::string> corrupted = {
      corrupt(seq_line, "update_seq xyz"),
      corrupt(seq_line, "update_seq 18446744073709551616"),  // 2^64.
      corrupt(seq_line, "update_seq -3"),
      corrupt(seq_line, StrCat("update_seq ", seq_before, "junk")),
      // v3 shard records: garbled count, zero shards, non-numeric cursor
      // index, duplicate cursor (which also breaks the declared count),
      // and a count that disagrees with the cursor lines present.
      corrupt("shards 4", "shards foo"),
      corrupt("shards 4", "shards 0"),
      corrupt("shard_map_id 0", "shard_map_id x"),
      corrupt("shard_map_id 1", "shard_map_id 0"),
      corrupt("shards 4", "shards 5"),
      // Record types are version-gated: a v1-only `map_id` line inside a
      // v3 blob is corruption, not nostalgia.
      corrupt(seq_line, StrCat(seq_line, "\nmap_id 0")),
      corrupt(seq_line, StrCat(seq_line, "\nsink x 5")),
      corrupt(seq_line, StrCat(seq_line, "\nsink 0 abc")),
  };
  for (const std::string& bad : corrupted) {
    Status status = inv.Restore(bad);
    EXPECT_TRUE(status.IsParseError()) << status.ToString() << "\n" << bad;
    // The failed restore must not have moved the cursor (in particular
    // not to 0, which would replay the whole log).
    EXPECT_EQ(inv.consumed_update_seq(), seq_before);
  }
  EXPECT_TRUE(inv.Restore(good).ok());
  EXPECT_EQ(inv.consumed_update_seq(), seq_before);
}

/// A v1 checkpoint written before the metadata plane was sharded (single
/// `map_id` cursor, no shard records) must still restore — deployments
/// upgrade across the format change with their persisted state intact.
TEST(InvalidatorCheckpointTest, LegacyV1CheckpointStillRestores) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);

  RecordingSink sink;
  Invalidator inv(&db, &map, &clock);
  inv.AddSink(&sink);
  inv.RunCycle().value();
  const uint64_t seq = inv.consumed_update_seq();

  // The exact bytes the pre-v3 writer produced (no checkpointable sink).
  const std::string legacy = StrCat("cacheportal-invalidator-checkpoint 1\n",
                                    "update_seq ", seq, "\n",
                                    "map_id ", map.LastId(), "\n", "end\n");
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();

  Invalidator inv2(&db, &map, &clock);
  inv2.AddSink(&sink);
  ASSERT_TRUE(inv2.Restore(legacy).ok());
  EXPECT_EQ(inv2.consumed_update_seq(), seq);
  inv2.RunCycle().value();
  EXPECT_TRUE(sink.invalidated.contains("shop/cheap?##"));

  // And v1 corruption is still loud: shard records don't belong in v1.
  const std::string hybrid = StrCat("cacheportal-invalidator-checkpoint 1\n",
                                    "update_seq ", seq, "\n",
                                    "shards 2\n", "end\n");
  EXPECT_TRUE(inv2.Restore(hybrid).IsParseError());
  EXPECT_FALSE(
      inv2.Restore(StrCat("cacheportal-invalidator-checkpoint 1\n",
                          "update_seq ", seq, "\nmap_id zzz\nend\n"))
          .ok());
}

/// v5 round-trip: the current format carries one QI/URL-map cursor per
/// metadata shard PLUS the full registry (types + instance SQLs +
/// strategy tiers), and restores into a process with a DIFFERENT live
/// shard count (the persisted partitioning never constrains the new
/// configuration — mismatched cursors fall back to the minimum position,
/// and the snapshot's own instances rebuild the registry without a
/// rescan).
TEST(InvalidatorCheckpointTest, V5RoundTripsAcrossShardCounts) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);

  InvalidatorOptions three;
  three.metadata_shards = 3;
  Invalidator inv(&db, &map, &clock, three);
  inv.RunCycle().value();
  std::string checkpoint = inv.Checkpoint();
  EXPECT_NE(checkpoint.find("cacheportal-invalidator-checkpoint 5\n"),
            std::string::npos);
  EXPECT_NE(checkpoint.find("shards 3\n"), std::string::npos);
  // All three cursors advanced in lockstep to the scanned map row.
  for (int shard = 0; shard < 3; ++shard) {
    EXPECT_NE(checkpoint.find(
                  StrCat("shard_map_id ", shard, " ", map.LastId(), "\n")),
              std::string::npos)
        << checkpoint;
  }
  // The registry travels in the snapshot: the instance's SQL is there.
  EXPECT_NE(checkpoint.find("SELECT * FROM Car WHERE price < 20000"),
            std::string::npos);

  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();
  RecordingSink sink;
  InvalidatorOptions two;
  two.metadata_shards = 2;
  Invalidator inv2(&db, &map, &clock, two);
  inv2.AddSink(&sink);
  ASSERT_TRUE(inv2.Restore(checkpoint).ok());
  // The instance is staged, not parsed yet; the first cycle drains it.
  EXPECT_GE(inv2.pending_restore_ops(), 1u);
  inv2.RunCycle().value();
  EXPECT_EQ(inv2.pending_restore_ops(), 0u);
  EXPECT_TRUE(sink.invalidated.contains("shop/cheap?##"));
}

/// v4 restores cursors to their persisted positions — the map is NOT
/// rescanned (v1–v3 rewound to zero and depended on the rescan). A row
/// retired before the checkpoint must not resurrect.
TEST(InvalidatorCheckpointTest, V4RestoresCursorsWithoutRescan) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);

  Invalidator inv(&db, &map, &clock);
  inv.RunCycle().value();
  std::string checkpoint = inv.Checkpoint();

  Invalidator inv2(&db, &map, &clock);
  ASSERT_TRUE(inv2.Restore(checkpoint).ok());
  inv2.RunCycle().value();
  // Cursor restored past the existing row: the map scan absorbed nothing
  // new, yet the registry is whole (rebuilt from the snapshot itself).
  EXPECT_EQ(inv2.metadata().MinMapCursor(), map.LastId());
  EXPECT_EQ(inv2.metadata().NumInstances(), 1u);
  // Give the original the same second (empty) cycle, then the reports —
  // per-type statistics included — must be byte-identical: the restored
  // side's re-registration bumps were overwritten by the persisted
  // absolute values, not double-counted.
  inv.RunCycle().value();
  EXPECT_EQ(inv2.StatsReport(), inv.StatsReport());
}

/// The exact bytes the v3 writer produced still restore (legacy path:
/// cursors rewind to zero, live map rows re-register on the next scan).
TEST(InvalidatorCheckpointTest, LegacyV3CheckpointStillRestores) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);

  Invalidator inv(&db, &map, &clock);
  inv.RunCycle().value();
  const uint64_t seq = inv.consumed_update_seq();

  const std::string legacy =
      StrCat("cacheportal-invalidator-checkpoint 3\n",
             "update_seq ", seq, "\n", "shards 2\n",
             "shard_map_id 0 ", map.LastId(), "\n",
             "shard_map_id 1 ", map.LastId(), "\n", "end\n");
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();

  RecordingSink sink;
  Invalidator inv2(&db, &map, &clock);
  inv2.AddSink(&sink);
  ASSERT_TRUE(inv2.Restore(legacy).ok());
  EXPECT_EQ(inv2.consumed_update_seq(), seq);
  EXPECT_EQ(inv2.metadata().MinMapCursor(), 0u);  // v3 rewinds.
  inv2.RunCycle().value();
  EXPECT_TRUE(sink.invalidated.contains("shop/cheap?##"));

  // v3 corruption is still loud: a v3 blob must not carry v4 records.
  EXPECT_TRUE(inv2.Restore(StrCat("cacheportal-invalidator-checkpoint 3\n",
                                  "update_seq ", seq, "\n", "shards 1\n",
                                  "shard_map_id 0 0\n", "type_counter 1\n",
                                  "end\n"))
                  .IsParseError());
}

/// The exact bytes the v4 writer produced (11-field type records, no
/// tier) still restore: the type and instance rebuild, and the tier —
/// absent from the blob — re-derives at the instance's re-registration.
TEST(InvalidatorCheckpointTest, LegacyV4CheckpointStillRestores) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);

  const std::string sql = "SELECT * FROM Car WHERE price < 20000";
  sql::QueryTemplate tmpl = sql::ExtractTemplateFromSql(sql).value();
  const std::string name = "Q1";
  const std::string legacy = StrCat(
      "cacheportal-invalidator-checkpoint 4\n", "update_seq 0\n",
      "shards 1\n", "shard_map_id 0 ", map.LastId(), "\n",
      "type_counter 1\n", "stats 1 0 1 0 0 0 0 0 0 0 0 0 0 0\n",
      "type ", tmpl.type_id, " 1 1 0 0 0 0 0 ", name.size(), " ",
      tmpl.canonical_text.size(), "\n", name, "\n", tmpl.canonical_text,
      "\n", "instance ", sql.size(), "\n", sql, "\n", "end\n");

  RecordingSink sink;
  Invalidator inv(&db, &map, &clock);
  inv.AddSink(&sink);
  ASSERT_TRUE(inv.Restore(legacy).ok());
  // No tier travels in v4: unassigned until the staged instance replays.
  EXPECT_FALSE(inv.metadata().TierOf(tmpl.type_id).has_value());
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();
  inv.RunCycle().value();
  EXPECT_TRUE(sink.invalidated.contains("shop/cheap?##"));
  std::optional<TierDecision> tier = inv.metadata().TierOf(tmpl.type_id);
  ASSERT_TRUE(tier.has_value());
  EXPECT_EQ(tier->tier, StrategyTier::kExact);

  // v5 corruption is loud: a tier outside [0, 4] fails the parse, and a
  // v4 blob must not carry 13-field v5 type records.
  EXPECT_TRUE(inv.Restore(StrCat(
                              "cacheportal-invalidator-checkpoint 5\n",
                              "update_seq 0\n", "shards 1\n",
                              "shard_map_id 0 0\n", "type_counter 1\n",
                              "stats 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n",
                              "type ", tmpl.type_id, " 1 0 0 0 0 0 0 9 ",
                              name.size(), " ", tmpl.canonical_text.size(),
                              " 0\n", name, "\n", tmpl.canonical_text,
                              "\n\n", "end\n"))
                  .IsParseError());
  EXPECT_TRUE(inv.Restore(StrCat(
                              "cacheportal-invalidator-checkpoint 4\n",
                              "update_seq 0\n", "shards 1\n",
                              "shard_map_id 0 0\n", "type_counter 1\n",
                              "stats 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n",
                              "type ", tmpl.type_id, " 1 0 0 0 0 0 0 0 ",
                              name.size(), " ", tmpl.canonical_text.size(),
                              " 0\n", name, "\n", tmpl.canonical_text,
                              "\n\n", "end\n"))
                  .IsParseError());
}

/// Strategy tiers round-trip: a plane restored from a v5 checkpoint
/// reports byte-identical tier assignments (tier AND demotion reason,
/// per type) and a byte-identical StatsReport — BEFORE any instance
/// re-registers, so the pins come from the blob, not a re-derivation.
TEST(InvalidatorCheckpointTest, V5RestoredTiersAreByteIdentical) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  sniffer::QiUrlMap map;
  // A spread of tiers: exact, demoted-by-join, demoted-by-LIKE.
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);
  map.Add(
      "SELECT Car.maker FROM Car, Mileage WHERE Car.model = Mileage.model",
      "shop/epa?##", "/r", 0);
  map.Add("SELECT * FROM Car WHERE maker LIKE 'F%'", "shop/f?##", "/r", 0);

  InvalidatorOptions three;
  three.metadata_shards = 3;
  Invalidator inv(&db, &map, &clock, three);
  inv.RunCycle().value();
  std::map<uint64_t, TierDecision> before = inv.metadata().TierAssignments();
  ASSERT_EQ(before.size(), 3u);
  std::string checkpoint = inv.Checkpoint();

  InvalidatorOptions two;
  two.metadata_shards = 2;
  Invalidator inv2(&db, &map, &clock, two);
  ASSERT_TRUE(inv2.Restore(checkpoint).ok());
  std::map<uint64_t, TierDecision> after = inv2.metadata().TierAssignments();
  ASSERT_EQ(after.size(), before.size());
  for (const auto& [tid, decision] : before) {
    auto it = after.find(tid);
    ASSERT_NE(it, after.end()) << "type " << tid << " lost its tier";
    EXPECT_EQ(it->second.tier, decision.tier) << "type " << tid;
    EXPECT_EQ(it->second.reason, decision.reason) << "type " << tid;
  }
  EXPECT_EQ(inv2.StatsReport(), inv.StatsReport());
}

/// Checkpoints embed CheckpointableSink state: messages stuck in a
/// ReliableDeliveryQueue at crash time are redelivered after restart.
TEST(InvalidatorCheckpointTest, PendingQueueMessagesSurviveRestart) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  db.ExecuteSql("INSERT INTO Car VALUES ('Ford', 'Focus', 9000)").value();
  sniffer::QiUrlMap map;

  // An always-failing sink leaves the eject un-acked in the queue.
  class DownSink : public InvalidationSink {
   public:
    Status SendInvalidation(const http::HttpRequest&,
                            const std::string&) override {
      return Status::Internal("cache unreachable");
    }
  } down;
  core::DeliveryOptions dopts;
  dopts.max_attempts = 50;
  core::ReliableDeliveryQueue queue1(&clock, dopts);
  queue1.AddSink(&down, "edge");

  Invalidator inv1(&db, &map, &clock);
  inv1.AddSink(&queue1);
  inv1.RunCycle().value();
  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##", "/r", 0);
  inv1.RunCycle().value();
  db.ExecuteSql("INSERT INTO Car VALUES ('Kia', 'Rio', 8000)").value();
  inv1.RunCycle().value();
  ASSERT_GE(queue1.pending(), 1u);
  std::string checkpoint = inv1.Checkpoint();

  // Restart with a healthy cache behind the same sink name.
  RecordingSink healthy;
  core::ReliableDeliveryQueue queue2(&clock, dopts);
  queue2.AddSink(&healthy, "edge");
  Invalidator inv2(&db, &map, &clock);
  inv2.AddSink(&queue2);
  ASSERT_TRUE(inv2.Restore(checkpoint).ok());
  EXPECT_GE(queue2.pending_for("edge"), 1u);

  queue2.Pump();
  EXPECT_TRUE(healthy.invalidated.contains("shop/cheap?##"));
  EXPECT_EQ(queue2.pending(), 0u);
}

/// Differential check across a seed corpus: a run that crashes mid-stream
/// (checkpoint taken, further updates commit, process rebuilt + restored)
/// must invalidate exactly the same pages as the uninterrupted run, and
/// both must cover the exact-re-execution baseline's ground truth.
class CheckpointDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Runs `rounds` deterministic update rounds. When 0 <= crash_round <
  /// rounds, the invalidator is checkpointed at the top of that round,
  /// torn down AFTER the round's updates commit, and rebuilt + restored —
  /// modeling a crash with updates in flight.
  std::set<std::string> Run(uint64_t seed, int rounds, int crash_round,
                            std::set<std::string>* ground_truth) {
    Random rng(seed);
    ManualClock clock;
    db::Database db(&clock);
    CreateCarTables(&db);
    const char* models[] = {"Avalon", "Civic", "Eclipse", "Corolla"};
    const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};
    for (int i = 0; i < 20; ++i) {
      db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                           makers[rng.Uniform(4)], "', '",
                           models[rng.Uniform(4)], "', ",
                           rng.Uniform(30000), ")"))
          .value();
    }

    sniffer::QiUrlMap map;
    RecordingSink sink;
    auto inv = std::make_unique<Invalidator>(&db, &map, &clock);
    inv->AddSink(&sink);
    inv->RunCycle().value();  // Drain seeding updates.

    std::vector<std::string> sqls;
    for (int i = 0; i < 6; ++i) {
      sqls.push_back(i % 2 == 0
                         ? StrCat("SELECT * FROM Car WHERE price < ",
                                  5000 + rng.Uniform(25000))
                         : StrCat("SELECT * FROM Car WHERE maker = '",
                                  makers[rng.Uniform(4)], "'"));
    }
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
    BaselineInvalidator baseline(&db, &map);
    baseline.RunCycle().value();
    inv->RunCycle().value();

    std::set<std::string> all_invalidated;
    for (int round = 0; round < rounds; ++round) {
      std::string checkpoint = inv->Checkpoint();
      for (int u = 0; u < 2; ++u) {
        if (rng.OneIn(0.5)) {
          db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                               makers[rng.Uniform(4)], "', '",
                               models[rng.Uniform(4)], "', ",
                               rng.Uniform(30000), ")"))
              .value();
        } else {
          db.ExecuteSql(StrCat("DELETE FROM Car WHERE price > ",
                               15000 + rng.Uniform(15000)))
              .value();
        }
      }
      if (round == crash_round) {
        // Crash with this round's updates committed but unprocessed.
        inv = std::make_unique<Invalidator>(&db, &map, &clock);
        inv->AddSink(&sink);
        EXPECT_TRUE(inv->Restore(checkpoint).ok());
      }

      auto truth = baseline.RunCycle().value();
      if (ground_truth) {
        ground_truth->insert(truth.stale_pages.begin(),
                             truth.stale_pages.end());
      }

      sink.invalidated.clear();
      inv->RunCycle().value();
      all_invalidated.insert(sink.invalidated.begin(),
                             sink.invalidated.end());

      for (const std::string& sql_text : truth.changed_instances) {
        if (map.PagesForQuery(sql_text).empty()) baseline.Forget(sql_text);
      }
      for (size_t i = 0; i < sqls.size(); ++i) {
        map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
      }
      baseline.RunCycle().value();
      inv->RunCycle().value();
    }
    return all_invalidated;
  }
};

TEST_P(CheckpointDifferentialTest, CrashedRunMatchesUninterruptedRun) {
  std::set<std::string> truth_interrupted;
  std::set<std::string> interrupted =
      Run(GetParam(), /*rounds=*/6, /*crash_round=*/3, &truth_interrupted);
  std::set<std::string> uninterrupted =
      Run(GetParam(), /*rounds=*/6, /*crash_round=*/-1, nullptr);

  // Recovery is invisible: the same workload yields the same
  // invalidations with or without the mid-stream crash.
  EXPECT_EQ(interrupted, uninterrupted);
  // And the recovered run still covers ground truth (soundness).
  for (const std::string& page : truth_interrupted) {
    EXPECT_TRUE(interrupted.contains(page))
        << "stale page missed across crash: " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointDifferentialTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace cacheportal::invalidator
