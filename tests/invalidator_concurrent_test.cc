#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

/// Collects invalidations under a lock: delivery itself is single-caller
/// per sink, but the test thread reads the set between cycles while the
/// registration thread is still alive, so the accesses are cross-thread.
class ConcurrentRecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    std::lock_guard<std::mutex> lock(mu_);
    invalidated_.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return invalidated_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::string> invalidated_;
};

/// The tentpole's concurrency claim, exercised for real (and under TSan
/// in CI's tsan job): one thread streams QiUrlMap::Add plus direct
/// instance registration while another runs synchronization cycles. No
/// registration may be lost, and every added page must eventually be
/// invalidated once an update touches its query.
TEST(InvalidatorConcurrentTest, RegistrationStreamsWhileCyclesRun) {
  ManualClock clock;  // Never advanced while both threads are live.
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "T", {{"a", db::ColumnType::kInt},
                                       {"b", db::ColumnType::kInt},
                                       {"c", db::ColumnType::kInt},
                                       {"d", db::ColumnType::kInt}}))
                  .ok());
  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.metadata_shards = 4;
  options.worker_threads = 2;
  options.use_type_matcher = true;
  Invalidator inv(&db, &map, &clock, options);
  ConcurrentRecordingSink sink;
  inv.AddSink(&sink);

  constexpr int kPages = 400;
  const char* columns[] = {"a", "b", "c", "d"};
  auto sql_for = [&columns](int i) {
    // Four query types (one per column), many instances each — the
    // stream spreads across metadata shards and keeps compiling new
    // bind values into existing types.
    return StrCat("SELECT * FROM T WHERE ", columns[i % 4], " < ", i + 1);
  };
  auto page_for = [](int i) { return StrCat("shop/p", i, "?##"); };

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int i = 0; i < kPages; ++i) {
      map.Add(sql_for(i), page_for(i), "/r", 0);
      Status registered = inv.RegisterInstance(sql_for(i));
      EXPECT_TRUE(registered.ok()) << registered.ToString();
    }
    done.store(true, std::memory_order_release);
  });

  // Cycle thread: a row of zeros satisfies every `col < i+1` predicate,
  // so each cycle ejects whatever pages are mapped by then.
  while (!done.load(std::memory_order_acquire)) {
    db.ExecuteSql("INSERT INTO T VALUES (0, 0, 0, 0)").value();
    inv.RunCycle().value();
  }
  producer.join();

  // One quiet-side sweep: the final scan registers any rows the last
  // in-flight scan raced past, the final update affects every live
  // instance, and delivery ejects the remaining pages.
  db.ExecuteSql("INSERT INTO T VALUES (0, 0, 0, 0)").value();
  inv.RunCycle().value();

  // No lost registrations: every page the producer added was ejected.
  std::set<std::string> invalidated = sink.Snapshot();
  for (int i = 0; i < kPages; ++i) {
    EXPECT_TRUE(invalidated.contains(page_for(i))) << page_for(i);
  }
  EXPECT_EQ(map.NumPages(), 0u);
}

/// SetPollingConnection during a running cycle: the pointer handoff is a
/// release/acquire atomic, so a worker mid-poll either sees the old or
/// the new target, never a torn pointer. The flips run against cycles
/// that really poll (join instances), under TSan in CI.
TEST(InvalidatorConcurrentTest, PollingConnectionSwapsDuringCycles) {
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db.CreateTable(db::TableSchema(
                         "Mileage", {{"model", db::ColumnType::kString},
                                     {"EPA", db::ColumnType::kInt}}))
          .ok());
  db.ExecuteSql("INSERT INTO Car VALUES ('Eclipse', 15000)").value();
  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.worker_threads = 2;
  Invalidator inv(&db, &map, &clock, options);
  ConcurrentRecordingSink sink;
  inv.AddSink(&sink);

  // An external polling target backed by the same database: answers are
  // identical through either path, so only the handoff is under test.
  PollingDataCache external(&db, /*capacity=*/8);

  const std::string join_sql =
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 16000";
  map.Add(join_sql, "p-join?##", "/r", 0);
  inv.RunCycle().value();

  std::atomic<bool> done{false};
  std::thread flipper([&] {
    for (int i = 0; i < 2000; ++i) {
      inv.SetPollingConnection(i % 2 == 0 ? &external : nullptr);
    }
    inv.SetPollingConnection(nullptr);
    done.store(true, std::memory_order_release);
  });
  // The floor keeps the test meaningful even when the flipper finishes
  // before the first (sanitizer-slowed) cycle: at least three polling
  // rounds always run.
  int hits = 0;
  while (!done.load(std::memory_order_acquire) || hits < 3) {
    db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('Eclipse', ", 20 + hits,
                         ")"))
        .value();
    inv.RunCycle().value();
    ++hits;
    map.Add(join_sql, "p-join?##", "/r", 0);  // Re-cache for the next poll.
    inv.RunCycle().value();
  }
  flipper.join();
  EXPECT_TRUE(sink.Snapshot().contains("p-join?##"));
  EXPECT_GT(inv.stats().polls_issued, 0u);
}

}  // namespace
}  // namespace cacheportal::invalidator
