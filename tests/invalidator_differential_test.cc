#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/baseline.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

/// Differential test: CachePortal's condition-analysis invalidator versus
/// the exact re-execution baseline, on random workloads. Soundness
/// requires CachePortal's invalidation set to be a SUPERSET of the
/// baseline's on every cycle (it may over-invalidate; it must never
/// under-invalidate). Precision is reported as a property.
class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, CachePortalInvalidationsCoverGroundTruth) {
  Random rng(GetParam());
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db.CreateTable(db::TableSchema(
                         "Mileage", {{"model", db::ColumnType::kString},
                                     {"EPA", db::ColumnType::kInt}}))
          .ok());
  const char* models[] = {"Avalon", "Civic", "Eclipse", "Corolla", "Focus"};
  const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};
  for (int i = 0; i < 25; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                         makers[rng.Uniform(4)], "', '",
                         models[rng.Uniform(5)], "', ",
                         rng.Uniform(30000), ")"))
        .value();
  }
  for (const char* model : models) {
    if (rng.OneIn(0.6)) {
      db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('", model, "', ",
                           10 + rng.Uniform(40), ")"))
          .value();
    }
  }

  sniffer::QiUrlMap map;
  RecordingSink sink;
  Invalidator cacheportal(&db, &map, &clock, {});
  cacheportal.AddSink(&sink);
  BaselineInvalidator baseline(&db, &map);

  // Register instances (pages) once.
  std::vector<std::string> sqls;
  for (int i = 0; i < 10; ++i) {
    switch (rng.Uniform(3)) {
      case 0:
        sqls.push_back(StrCat("SELECT * FROM Car WHERE price < ",
                              3000 + rng.Uniform(27000)));
        break;
      case 1:
        sqls.push_back(StrCat("SELECT * FROM Car WHERE maker = '",
                              makers[rng.Uniform(4)], "'"));
        break;
      default:
        sqls.push_back(StrCat(
            "SELECT Car.model FROM Car, Mileage WHERE Car.model = "
            "Mileage.model AND Car.price < ",
            3000 + rng.Uniform(27000)));
        break;
    }
  }
  for (size_t i = 0; i < sqls.size(); ++i) {
    map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
  }
  // Both consume the map and the baseline snapshots current results.
  baseline.RunCycle().value();
  cacheportal.RunCycle().value();

  uint64_t over_invalidations = 0, exact = 0;
  for (int round = 0; round < 8; ++round) {
    // Random update burst.
    for (int u = 0; u < 1 + static_cast<int>(rng.Uniform(4)); ++u) {
      switch (rng.Uniform(3)) {
        case 0:
          db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                               makers[rng.Uniform(4)], "', '",
                               models[rng.Uniform(5)], "', ",
                               rng.Uniform(30000), ")"))
              .value();
          break;
        case 1:
          db.ExecuteSql(StrCat("DELETE FROM Car WHERE price > ",
                               15000 + rng.Uniform(15000)))
              .value();
          break;
        default:
          db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('",
                               models[rng.Uniform(5)], "', ",
                               10 + rng.Uniform(40), ")"))
              .value();
          break;
      }
    }

    // Ground truth BEFORE CachePortal mutates the map.
    auto truth = baseline.RunCycle();
    ASSERT_TRUE(truth.ok());

    sink.invalidated.clear();
    auto report = cacheportal.RunCycle();
    ASSERT_TRUE(report.ok());

    // SOUNDNESS: every truly stale page was invalidated.
    for (const std::string& page : truth->stale_pages) {
      EXPECT_TRUE(sink.invalidated.contains(page))
          << "round " << round << ": baseline says stale, CachePortal "
          << "kept: " << page;
    }
    over_invalidations +=
        sink.invalidated.size() - std::min(sink.invalidated.size(),
                                           truth->stale_pages.size());
    exact += truth->stale_pages.size();

    // Keep the two views consistent: pages CachePortal ejected are gone
    // from the map; the baseline must forget their instances too.
    for (const std::string& sql_text : truth->changed_instances) {
      if (map.PagesForQuery(sql_text).empty()) baseline.Forget(sql_text);
    }
    // Re-cache every page so later rounds keep exercising all instances.
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
    baseline.RunCycle().value();      // Re-snapshot after re-caching.
    cacheportal.RunCycle().value();   // Consume map additions.
  }
  RecordProperty("exact_invalidations", static_cast<int>(exact));
  RecordProperty("over_invalidations", static_cast<int>(over_invalidations));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(BaselineInvalidatorTest, DetectsChangeAndSettles) {
  ManualClock clock;
  db::Database db(&clock);
  db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}})).ok();
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM T WHERE x < 10", "p1", "/r", 0);
  BaselineInvalidator baseline(&db, &map);
  auto first = baseline.RunCycle().value();
  EXPECT_TRUE(first.changed_instances.empty());

  db.ExecuteSql("INSERT INTO T VALUES (5)").value();
  auto second = baseline.RunCycle().value();
  EXPECT_EQ(second.changed_instances.size(), 1u);
  EXPECT_EQ(second.stale_pages, std::set<std::string>{"p1"});

  // No further change: settles.
  auto third = baseline.RunCycle().value();
  EXPECT_TRUE(third.changed_instances.empty());
}

TEST(BaselineInvalidatorTest, OrderInsensitiveFingerprint) {
  ManualClock clock;
  db::Database db(&clock);
  db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}})).ok();
  db.ExecuteSql("INSERT INTO T VALUES (1)").value();
  db.ExecuteSql("INSERT INTO T VALUES (2)").value();
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM T", "p1", "/r", 0);
  BaselineInvalidator baseline(&db, &map);
  baseline.RunCycle().value();

  // Delete and re-insert the same logical content (different row ids /
  // physical order): the result multiset is unchanged.
  db.ExecuteSql("DELETE FROM T WHERE x = 1").value();
  db.ExecuteSql("INSERT INTO T VALUES (1)").value();
  auto cycle = baseline.RunCycle().value();
  EXPECT_TRUE(cycle.changed_instances.empty());
}

TEST(BaselineInvalidatorTest, ForgetStopsTracking) {
  ManualClock clock;
  db::Database db(&clock);
  db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}})).ok();
  sniffer::QiUrlMap map;
  map.Add("SELECT * FROM T", "p1", "/r", 0);
  BaselineInvalidator baseline(&db, &map);
  baseline.RunCycle().value();
  EXPECT_EQ(baseline.tracked_instances(), 1u);
  baseline.Forget("SELECT * FROM T");
  EXPECT_EQ(baseline.tracked_instances(), 0u);
}

}  // namespace
}  // namespace cacheportal::invalidator
