#include <gtest/gtest.h>

#include "db/database.h"
#include "invalidator/impact.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

/// Example 4.1's schema: Car(maker, model, price), Mileage(model, EPA).
class ImpactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                    "Car", {{"maker", db::ColumnType::kString},
                                            {"model", db::ColumnType::kString},
                                            {"price", db::ColumnType::kInt}}))
                    .ok());
    ASSERT_TRUE(
        db_.CreateTable(db::TableSchema(
                            "Mileage", {{"model", db::ColumnType::kString},
                                        {"EPA", db::ColumnType::kInt}}))
            .ok());
    db_.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 28)").value();
    db_.ExecuteSql("INSERT INTO Mileage VALUES ('Civic', 36)").value();
  }

  std::unique_ptr<sql::SelectStatement> Query(const std::string& sql) {
    auto result = sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  db::Row CarRow(const std::string& maker, const std::string& model,
                 int64_t price) {
    return {Value::String(maker), Value::String(model), Value::Int(price)};
  }

  db::Database db_;
};

// The paper's Query1:
//   select Car.maker, Car.model, Car.price, Mileage.EPA
//   from Car, Mileage
//   where Car.model = Mileage.model and Car.price < 20000
constexpr char kQuery1[] =
    "select Car.maker, Car.model, Car.price, Mileage.EPA from Car, Mileage "
    "where Car.model = Mileage.model and Car.price < 20000";

TEST_F(ImpactTest, PaperExampleEclipseInsertIsUnaffected) {
  // (Mitsubishi, Eclipse, 20000): 20000 < 20000 is false -> no impact,
  // decided without touching the database.
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  auto result = analyzer.AnalyzeTuple(*query, "Car",
                                      CarRow("Mitsubishi", "Eclipse", 20000));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->kind, ImpactKind::kUnaffected);
}

TEST_F(ImpactTest, PaperExampleAvalonInsertNeedsPolling) {
  // (Toyota, Avalon, 25000)... the paper uses price < 20000 with a 25000
  // tuple in its prose example for the polling query, but then the
  // condition already fails. Use a qualifying price so the join remains:
  // (Toyota, Avalon, 15000): price check passes, join with Mileage must
  // be polled.
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  auto result =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("Toyota", "Avalon", 15000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->kind, ImpactKind::kNeedsPolling);
  ASSERT_NE(result->polling_query, nullptr);

  std::string poll = sql::StatementToSql(*result->polling_query);
  // Shape of the paper's PollQuery: selects from Mileage only, with the
  // tuple's model substituted into the join condition.
  EXPECT_NE(poll.find("FROM Mileage"), std::string::npos) << poll;
  EXPECT_NE(poll.find("'Avalon' = Mileage.model"), std::string::npos) << poll;
  EXPECT_EQ(poll.find("Car"), std::string::npos) << poll;

  // Issuing the polling query against the database confirms the impact
  // (Avalon is in Mileage).
  auto poll_result = db_.ExecuteQuery(*result->polling_query);
  ASSERT_TRUE(poll_result.ok());
  EXPECT_FALSE(poll_result->rows.empty());
}

TEST_F(ImpactTest, PollingQueryEmptyWhenJoinPartnerMissing) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  auto result = analyzer.AnalyzeTuple(*query, "Car",
                                      CarRow("Ford", "Focus", 15000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->kind, ImpactKind::kNeedsPolling);
  auto poll_result = db_.ExecuteQuery(*result->polling_query);
  ASSERT_TRUE(poll_result.ok());
  EXPECT_TRUE(poll_result->rows.empty());  // Focus has no Mileage row.
}

TEST_F(ImpactTest, UpdateToUnrelatedTableIsUnaffected) {
  ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                  "Other", {{"x", db::ColumnType::kInt}}))
                  .ok());
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  auto result =
      analyzer.AnalyzeTuple(*query, "Other", {Value::Int(1)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, ImpactKind::kUnaffected);
}

TEST_F(ImpactTest, SingleTableQueryDecidedWithoutPolling) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query("SELECT * FROM Car WHERE Car.price < 20000");
  auto hit =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("Honda", "Civic", 18000));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->kind, ImpactKind::kAffected);

  auto miss =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("Toyota", "Avalon", 25000));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->kind, ImpactKind::kUnaffected);
}

TEST_F(ImpactTest, UnqualifiedColumnsAreResolved) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query("SELECT * FROM Car WHERE price < 20000");
  auto result =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("Honda", "Civic", 18000));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, ImpactKind::kAffected);
}

TEST_F(ImpactTest, QueryWithoutWhereAlwaysAffected) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query("SELECT * FROM Car");
  auto result =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("Any", "Thing", 1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, ImpactKind::kAffected);
}

TEST_F(ImpactTest, DeletionUsesSameLogic) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query("SELECT * FROM Car WHERE price < 20000");
  // A deleted tuple that satisfied the condition may shrink the result.
  auto result =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("Honda", "Civic", 18000));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, ImpactKind::kAffected);
}

TEST_F(ImpactTest, AliasedTables) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(
      "SELECT c.model FROM Car c, Mileage m WHERE c.model = m.model AND "
      "c.price < 20000");
  auto result =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("Toyota", "Avalon", 15000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->kind, ImpactKind::kNeedsPolling);
  std::string poll = sql::StatementToSql(*result->polling_query);
  EXPECT_NE(poll.find("Mileage m"), std::string::npos) << poll;
}

TEST_F(ImpactTest, InvalidTupleRejected) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  EXPECT_FALSE(
      analyzer.AnalyzeTuple(*query, "Car", {Value::Int(1)}).ok());
}

TEST_F(ImpactTest, UnknownTableRejected) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query("SELECT * FROM Nope WHERE x = 1");
  EXPECT_TRUE(analyzer.AnalyzeTuple(*query, "Nope", {Value::Int(1)})
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------
// Batched (group) analysis — Section 4.2.1
// ---------------------------------------------------------------------

TEST_F(ImpactTest, BatchShortCircuitsOnDefiniteImpact) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query("SELECT * FROM Car WHERE price < 20000");
  std::vector<db::Row> tuples = {CarRow("A", "X", 50000),
                                 CarRow("B", "Y", 10000)};
  auto result = analyzer.AnalyzeDelta(*query, "Car", tuples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, ImpactKind::kAffected);
}

TEST_F(ImpactTest, BatchAllFalseIsUnaffected) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query("SELECT * FROM Car WHERE price < 20000");
  std::vector<db::Row> tuples = {CarRow("A", "X", 50000),
                                 CarRow("B", "Y", 60000)};
  auto result = analyzer.AnalyzeDelta(*query, "Car", tuples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, ImpactKind::kUnaffected);
}

TEST_F(ImpactTest, BatchCombinesResidualsIntoOnePollingQuery) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  std::vector<db::Row> tuples = {CarRow("T", "Avalon", 15000),
                                 CarRow("H", "Civic", 16000),
                                 CarRow("F", "Focus", 17000)};
  auto result = analyzer.AnalyzeDelta(*query, "Car", tuples);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->kind, ImpactKind::kNeedsPolling);
  std::string poll = sql::StatementToSql(*result->polling_query);
  // One polling query OR-ing the three residuals.
  EXPECT_NE(poll.find("'Avalon'"), std::string::npos) << poll;
  EXPECT_NE(poll.find("'Civic'"), std::string::npos) << poll;
  EXPECT_NE(poll.find("'Focus'"), std::string::npos) << poll;
  EXPECT_NE(poll.find(" OR "), std::string::npos) << poll;

  auto poll_result = db_.ExecuteQuery(*result->polling_query);
  ASSERT_TRUE(poll_result.ok());
  EXPECT_FALSE(poll_result->rows.empty());
}

TEST_F(ImpactTest, EmptyBatchIsUnaffected) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  auto result = analyzer.AnalyzeDelta(*query, "Car", std::vector<db::Row>{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, ImpactKind::kUnaffected);
}

TEST_F(ImpactTest, PollingQueryHasLimitOne) {
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  auto result =
      analyzer.AnalyzeTuple(*query, "Car", CarRow("T", "Avalon", 15000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->kind, ImpactKind::kNeedsPolling);
  EXPECT_EQ(result->polling_query->limit, 1);
}

TEST_F(ImpactTest, MileageInsertGeneratesPollAgainstCar) {
  // Symmetric case: inserting into Mileage requires polling Car.
  ImpactAnalyzer analyzer(&db_);
  auto query = Query(kQuery1);
  auto result = analyzer.AnalyzeTuple(
      *query, "Mileage", {Value::String("Eclipse"), Value::Int(30)});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->kind, ImpactKind::kNeedsPolling);
  std::string poll = sql::StatementToSql(*result->polling_query);
  EXPECT_NE(poll.find("FROM Car"), std::string::npos) << poll;
  EXPECT_NE(poll.find("'Eclipse'"), std::string::npos) << poll;
}

}  // namespace
}  // namespace cacheportal::invalidator
