#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/bind_index.h"
#include "invalidator/invalidator.h"
#include "invalidator/type_matcher.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

// ---------------------------------------------------------------------------
// Differential test: the compiled matcher (bind-value indexes) against the
// interpreted path, on random workloads. The matcher is a pure pruning
// layer: with it on or off, every cycle must eject the same pages and the
// final StatsReport() must be byte-identical, at any worker count. The
// workload is generated independently of the invalidator's behavior so the
// runs are comparable.
// ---------------------------------------------------------------------------

struct WorldResult {
  std::vector<std::set<std::string>> ejected;   // Per cycle.
  std::vector<std::string> summaries;           // Per-cycle report fields.
  std::string final_report;
  MatcherStats matcher;
};

WorldResult RunWorld(uint64_t seed, bool use_matcher, size_t workers,
                     bool consolidate) {
  Random rng(seed);
  ManualClock clock;
  db::Database db(&clock);
  EXPECT_TRUE(db.CreateTable(db::TableSchema("T1",
                                             {{"a", db::ColumnType::kInt},
                                              {"b", db::ColumnType::kString},
                                              {"c", db::ColumnType::kInt}}))
                  .ok());
  EXPECT_TRUE(db.CreateTable(db::TableSchema("T2",
                                             {{"k", db::ColumnType::kString},
                                              {"v", db::ColumnType::kInt}}))
                  .ok());
  for (int i = 0; i < 12; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO T1 VALUES (", rng.Uniform(100), ", 's",
                         rng.Uniform(6), "', ", rng.Uniform(100), ")"))
        .value();
  }
  for (int i = 0; i < 4; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO T2 VALUES ('s", rng.Uniform(6), "', ",
                         rng.Uniform(100), ")"))
        .value();
  }

  // Instance pool mixing indexable templates (=, <, <=, >, >=, BETWEEN,
  // IN, string equality, join anchors) with fallbacks the matcher cannot
  // anchor (OR at the top level, column-to-column comparison, no WHERE).
  std::vector<std::string> sqls;
  for (int i = 0; i < 14; ++i) {
    switch (rng.Uniform(10)) {
      case 0:
        sqls.push_back(StrCat("SELECT * FROM T1 WHERE a = ", rng.Uniform(100)));
        break;
      case 1:
        sqls.push_back(
            StrCat("SELECT * FROM T1 WHERE b = 's", rng.Uniform(6), "'"));
        break;
      case 2:
        sqls.push_back(StrCat("SELECT * FROM T1 WHERE a < ", rng.Uniform(100)));
        break;
      case 3:
        sqls.push_back(
            StrCat("SELECT * FROM T1 WHERE a >= ", rng.Uniform(100)));
        break;
      case 4: {
        uint64_t low = rng.Uniform(60);
        sqls.push_back(StrCat("SELECT * FROM T1 WHERE a BETWEEN ", low,
                              " AND ", low + rng.Uniform(40)));
        break;
      }
      case 5:
        sqls.push_back(StrCat("SELECT * FROM T1 WHERE a IN (", rng.Uniform(50),
                              ", ", 50 + rng.Uniform(50), ")"));
        break;
      case 6:
        sqls.push_back(
            StrCat("SELECT T1.a FROM T1, T2 WHERE T1.b = T2.k AND T2.v < ",
                   rng.Uniform(100)));
        break;
      case 7:
        sqls.push_back(StrCat("SELECT * FROM T1 WHERE a = ", rng.Uniform(50),
                              " OR c = ", rng.Uniform(50)));
        break;
      case 8:
        sqls.push_back("SELECT * FROM T1 WHERE a < c");
        break;
      default:
        sqls.push_back("SELECT * FROM T2");
        break;
    }
  }

  sniffer::QiUrlMap map;
  RecordingSink sink;
  InvalidatorOptions options;
  options.use_type_matcher = use_matcher;
  options.worker_threads = workers;
  options.consolidate_polls = consolidate;
  Invalidator inv(&db, &map, &clock, options);
  inv.AddSink(&sink);

  WorldResult result;
  for (int cycle = 0; cycle < 6; ++cycle) {
    // Re-cache every page each cycle (Add is idempotent for live pages),
    // so instances keep getting exercised after ejection.
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
    int burst = 1 + static_cast<int>(rng.Uniform(4));
    for (int u = 0; u < burst; ++u) {
      switch (rng.Uniform(4)) {
        case 0:
          db.ExecuteSql(StrCat("INSERT INTO T1 VALUES (", rng.Uniform(100),
                               ", 's", rng.Uniform(6), "', ", rng.Uniform(100),
                               ")"))
              .value();
          break;
        case 1:
          db.ExecuteSql(StrCat("INSERT INTO T2 VALUES ('s", rng.Uniform(6),
                               "', ", rng.Uniform(100), ")"))
              .value();
          break;
        case 2:
          db.ExecuteSql(StrCat("DELETE FROM T1 WHERE a > ",
                               40 + rng.Uniform(60)))
              .value();
          break;
        default:
          db.ExecuteSql(StrCat("DELETE FROM T2 WHERE v < ", rng.Uniform(30)))
              .value();
          break;
      }
    }
    sink.invalidated.clear();
    auto report = inv.RunCycle();
    EXPECT_TRUE(report.ok());
    result.ejected.push_back(sink.invalidated);
    result.summaries.push_back(
        StrCat(report->updates, "|", report->new_instances, "|",
               report->checks, "|", report->affected_instances, "|",
               report->polls_issued, "|", report->conservative_invalidations,
               "|", report->pages_invalidated));
  }
  result.final_report = inv.StatsReport();
  result.matcher = inv.matcher_stats();
  return result;
}

class MatcherDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherDifferentialTest, CompiledMatchesInterpretedAtAnyWorkerCount) {
  const uint64_t seed = GetParam();
  WorldResult oracle = RunWorld(seed, /*use_matcher=*/false, /*workers=*/1,
                                /*consolidate=*/false);
  uint64_t total_excluded = 0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    WorldResult compiled = RunWorld(seed, /*use_matcher=*/true, workers,
                                    /*consolidate=*/false);
    ASSERT_EQ(compiled.ejected.size(), oracle.ejected.size());
    for (size_t c = 0; c < oracle.ejected.size(); ++c) {
      EXPECT_EQ(compiled.ejected[c], oracle.ejected[c])
          << "seed " << seed << " workers " << workers << " cycle " << c;
      EXPECT_EQ(compiled.summaries[c], oracle.summaries[c])
          << "seed " << seed << " workers " << workers << " cycle " << c;
    }
    EXPECT_EQ(compiled.final_report, oracle.final_report)
        << "seed " << seed << " workers " << workers;
    EXPECT_GT(compiled.matcher.types_compiled, 0u);
    total_excluded += compiled.matcher.tuples_excluded;
  }
  // The interpreted oracle never touches the matcher.
  EXPECT_EQ(oracle.matcher.types_compiled, 0u);
  EXPECT_EQ(oracle.matcher.tuples_excluded, 0u);
  // The suite as a whole must exercise real exclusions; individual seeds
  // may legitimately have none (all-fallback instance pools).
  RecordProperty("tuples_excluded", static_cast<int>(total_excluded));
}

TEST_P(MatcherDifferentialTest, ConsolidationPreservesEjectedPages) {
  const uint64_t seed = GetParam();
  WorldResult separate = RunWorld(seed, /*use_matcher=*/true, /*workers=*/2,
                                  /*consolidate=*/false);
  WorldResult merged = RunWorld(seed, /*use_matcher=*/true, /*workers=*/2,
                                /*consolidate=*/true);
  ASSERT_EQ(merged.ejected.size(), separate.ejected.size());
  for (size_t c = 0; c < separate.ejected.size(); ++c) {
    EXPECT_EQ(merged.ejected[c], separate.ejected[c])
        << "seed " << seed << " cycle " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherDifferentialTest,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Boundary units: each relational operator's index probe must exclude
// exactly the tuples whose WHERE folds definite FALSE — never tuples that
// fold NULL (type-mismatched or NULL-tainted comparisons), which stay
// candidates for the interpreted analyzer.
// ---------------------------------------------------------------------------

class MatcherBoundaryTest : public ::testing::Test {
 protected:
  /// In a fresh world: registers `sql` as a cached page, applies
  /// `insert_sql`, runs one cycle, and returns
  /// (pages_invalidated, tuples_excluded). Everything is local so each
  /// probe sees exactly one delta tuple.
  std::pair<uint64_t, uint64_t> Probe(const std::string& sql,
                                      const std::string& insert_sql) {
    ManualClock clock;
    db::Database db(&clock);
    EXPECT_TRUE(
        db.CreateTable(db::TableSchema("T1", {{"a", db::ColumnType::kInt},
                                              {"b", db::ColumnType::kString},
                                              {"c", db::ColumnType::kInt}}))
            .ok());
    sniffer::QiUrlMap map;
    RecordingSink sink;
    // The subject is the matcher's index probe; the exact tier would
    // otherwise claim these single-table types and bypass it.
    InvalidatorOptions options;
    options.exact_strategy = false;
    Invalidator inv(&db, &map, &clock, options);
    inv.AddSink(&sink);
    map.Add(sql, "shop/page?##", "/r", 0);
    db.ExecuteSql(insert_sql).value();
    auto report = inv.RunCycle();
    EXPECT_TRUE(report.ok());
    return {report->pages_invalidated, inv.matcher_stats().tuples_excluded};
  }
};

TEST_F(MatcherBoundaryTest, LessThanEdge) {
  auto edge = Probe("SELECT * FROM T1 WHERE a < 10",
                    "INSERT INTO T1 VALUES (10, 's', 0)");
  EXPECT_EQ(edge.first, 0u);
  EXPECT_EQ(edge.second, 1u);  // 10 < 10 is FALSE: provably unaffected.
  auto hit = Probe("SELECT * FROM T1 WHERE a < 10",
                   "INSERT INTO T1 VALUES (9, 's', 0)");
  EXPECT_EQ(hit.first, 1u);  // 9 < 10: candidate, confirmed affected.
}

TEST_F(MatcherBoundaryTest, LessOrEqualEdge) {
  auto above = Probe("SELECT * FROM T1 WHERE a <= 10",
                     "INSERT INTO T1 VALUES (11, 's', 0)");
  EXPECT_EQ(above.first, 0u);
  EXPECT_EQ(above.second, 1u);
  auto edge = Probe("SELECT * FROM T1 WHERE a <= 10",
                    "INSERT INTO T1 VALUES (10, 's', 0)");
  EXPECT_EQ(edge.first, 1u);  // The boundary value itself is a hit.
}

TEST_F(MatcherBoundaryTest, BetweenEdges) {
  const char* sql = "SELECT * FROM T1 WHERE a BETWEEN 10 AND 20";
  auto below = Probe(sql, "INSERT INTO T1 VALUES (9, 's', 0)");
  EXPECT_EQ(below.first, 0u);
  EXPECT_EQ(below.second, 1u);
  EXPECT_EQ(Probe(sql, "INSERT INTO T1 VALUES (10, 's', 0)").first, 1u);
  EXPECT_EQ(Probe(sql, "INSERT INTO T1 VALUES (20, 's', 0)").first, 1u);
  auto above = Probe(sql, "INSERT INTO T1 VALUES (21, 's', 0)");
  EXPECT_EQ(above.first, 0u);
  EXPECT_GT(above.second, 0u);  // High bound filtered in the probe.
}

TEST_F(MatcherBoundaryTest, InListMissAndHit) {
  const char* sql = "SELECT * FROM T1 WHERE a IN (5, 7)";
  auto miss = Probe(sql, "INSERT INTO T1 VALUES (6, 's', 0)");
  EXPECT_EQ(miss.first, 0u);
  EXPECT_EQ(miss.second, 1u);
  EXPECT_EQ(Probe(sql, "INSERT INTO T1 VALUES (7, 's', 0)").first, 1u);
}

TEST_F(MatcherBoundaryTest, MixedClassInListStillExcludesNumericMiss) {
  // 'x' never equals an int (incomparable items are plain misses), so a
  // tuple matching neither 5 nor any string key folds FALSE — excludable.
  const char* sql = "SELECT * FROM T1 WHERE a IN ('x', 5)";
  auto miss = Probe(sql, "INSERT INTO T1 VALUES (7, 's', 0)");
  EXPECT_EQ(miss.first, 0u);
  EXPECT_EQ(miss.second, 1u);
  EXPECT_EQ(Probe(sql, "INSERT INTO T1 VALUES (5, 's', 0)").first, 1u);
}

TEST_F(MatcherBoundaryTest, NullInListNeverExcludes) {
  // `a IN (5, NULL)` with a=7 folds NULL, not FALSE: the instance must
  // stay a candidate (the interpreted analyzer then decides unaffected).
  const char* sql = "SELECT * FROM T1 WHERE a IN (5, NULL)";
  auto probe = Probe(sql, "INSERT INTO T1 VALUES (7, 's', 0)");
  EXPECT_EQ(probe.first, 0u);
  EXPECT_EQ(probe.second, 0u);
}

TEST_F(MatcherBoundaryTest, CrossClassEqualityNeverExcludes) {
  // A string bind against an int column compares NULL for every tuple;
  // exclusion would be unsound even though the verdict is unaffected.
  const char* sql = "SELECT * FROM T1 WHERE a = 'hello'";
  auto probe = Probe(sql, "INSERT INTO T1 VALUES (7, 's', 0)");
  EXPECT_EQ(probe.first, 0u);
  EXPECT_EQ(probe.second, 0u);
}

TEST_F(MatcherBoundaryTest, StringEqualityExcludesAndHits) {
  const char* sql = "SELECT * FROM T1 WHERE b = 'wanted'";
  auto miss = Probe(sql, "INSERT INTO T1 VALUES (1, 'other', 0)");
  EXPECT_EQ(miss.first, 0u);
  EXPECT_EQ(miss.second, 1u);
  EXPECT_EQ(Probe(sql, "INSERT INTO T1 VALUES (1, 'wanted', 0)").first, 1u);
}

// ---------------------------------------------------------------------------
// Consolidated polling: instances of one type polling one target merge
// into a single disjunctive round trip whose rows are demultiplexed per
// instance — with no change in which pages are ejected.
// ---------------------------------------------------------------------------

class ConsolidationTest : public ::testing::Test {
 protected:
  ConsolidationTest() : db_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                    "Car", {{"maker", db::ColumnType::kString},
                                            {"model", db::ColumnType::kString},
                                            {"price", db::ColumnType::kInt}}))
                    .ok());
    ASSERT_TRUE(
        db_.CreateTable(db::TableSchema(
                            "Mileage", {{"model", db::ColumnType::kString},
                                        {"EPA", db::ColumnType::kInt}}))
            .ok());
    db_.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 25)").value();
  }

  ManualClock clock_;
  db::Database db_;
};

TEST_F(ConsolidationTest, DemuxSelectsExactlyTheSatisfiedMembers) {
  // Four instances of one join type, with EPA thresholds straddling the
  // lone Mileage row (EPA=25): only the 30 and 40 thresholds are hits.
  for (bool consolidate : {false, true}) {
    sniffer::QiUrlMap map;
    RecordingSink sink;
    InvalidatorOptions options;
    options.consolidate_polls = consolidate;
    Invalidator inv(&db_, &map, &clock_, options);
    inv.AddSink(&sink);
    for (int threshold : {10, 20, 30, 40}) {
      map.Add(StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model = "
                     "Mileage.model AND Mileage.EPA < ",
                     threshold),
              StrCat("shop/epa", threshold, "?##"), "/r", 0);
    }
    db_.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)")
        .value();
    auto report = inv.RunCycle();
    ASSERT_TRUE(report.ok());
    std::set<std::string> expect = {"shop/epa30?##", "shop/epa40?##"};
    EXPECT_EQ(sink.invalidated, expect) << "consolidate=" << consolidate;
    // polls_issued counts logical member polls, identical either way;
    // consolidation shows up only in the physical round-trip count.
    EXPECT_EQ(report->polls_issued, 4u) << "consolidate=" << consolidate;
    if (consolidate) {
      EXPECT_EQ(inv.matcher_stats().poll_round_trips, 1u);
      EXPECT_EQ(inv.matcher_stats().consolidated_polls, 1u);
      EXPECT_EQ(inv.matcher_stats().consolidated_members, 4u);
    } else {
      EXPECT_EQ(inv.matcher_stats().poll_round_trips, 4u);
    }
    db_.ExecuteSql("DELETE FROM Car WHERE price = 15000").value();
    // Drain the delete's delta so the next loop iteration starts clean.
    inv.RunCycle().value();
  }
}

TEST_F(ConsolidationTest, ReducesPollRoundTripsAtLeastThreefold) {
  constexpr int kInstances = 12;
  uint64_t polls[2];
  std::set<std::string> ejected[2];
  for (int pass = 0; pass < 2; ++pass) {
    bool consolidate = pass == 1;
    sniffer::QiUrlMap map;
    RecordingSink sink;
    InvalidatorOptions options;
    options.consolidate_polls = consolidate;
    Invalidator inv(&db_, &map, &clock_, options);
    inv.AddSink(&sink);
    for (int i = 0; i < kInstances; ++i) {
      map.Add(StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model = "
                     "Mileage.model AND Mileage.EPA < ",
                     100 + i),
              StrCat("shop/page", i, "?##"), "/r", 0);
    }
    db_.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)")
        .value();
    auto report = inv.RunCycle();
    ASSERT_TRUE(report.ok());
    // Logical poll count is consolidation-invariant; the savings are in
    // the physical statements sent to the target.
    EXPECT_EQ(report->polls_issued, static_cast<uint64_t>(kInstances));
    polls[pass] = inv.matcher_stats().poll_round_trips;
    ejected[pass] = sink.invalidated;
    db_.ExecuteSql("DELETE FROM Car WHERE price = 15000").value();
    inv.RunCycle().value();
  }
  EXPECT_EQ(ejected[0], ejected[1]);
  EXPECT_EQ(ejected[0].size(), static_cast<size_t>(kInstances));
  EXPECT_EQ(polls[0], static_cast<uint64_t>(kInstances));
  EXPECT_GE(polls[0], 3 * polls[1]);  // >= 3x fewer round trips.
}

TEST_F(ConsolidationTest, ChunkingSplitsLargeBuckets) {
  sniffer::QiUrlMap map;
  RecordingSink sink;
  InvalidatorOptions options;
  options.consolidated_poll_chunk = 4;
  Invalidator inv(&db_, &map, &clock_, options);
  inv.AddSink(&sink);
  for (int i = 0; i < 10; ++i) {
    map.Add(StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model = "
                   "Mileage.model AND Mileage.EPA < ",
                   100 + i),
            StrCat("shop/page", i, "?##"), "/r", 0);
  }
  db_.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)").value();
  auto report = inv.RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->polls_issued, 10u);  // One logical poll per member.
  EXPECT_EQ(inv.matcher_stats().poll_round_trips, 3u);  // ceil(10 / 4).
  EXPECT_EQ(sink.invalidated.size(), 10u);
}

// ---------------------------------------------------------------------------
// TypeMatcher compilation units.
// ---------------------------------------------------------------------------

TEST(TypeMatcherTest, SelfJoinFallsBackToInterpreted) {
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  sniffer::QiUrlMap map;
  RecordingSink sink;
  Invalidator inv(&db, &map, &clock, {});
  inv.AddSink(&sink);
  // Two FROM occurrences of Car: an anchor on either would be unsound.
  map.Add("SELECT x.model FROM Car x, Car y WHERE x.price < 10000 AND "
          "y.price > 50000 AND x.maker = y.maker",
          "shop/selfjoin?##", "/r", 0);
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 60000)").value();
  auto report = inv.RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(inv.matcher_stats().tuples_excluded, 0u);
  EXPECT_EQ(inv.metadata().NumIndexedInstances(), 0u);
}

}  // namespace
}  // namespace cacheportal::invalidator
