#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/reliable_delivery.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "invalidator/overload.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

OverloadOptions LadderOptions() {
  OverloadOptions options;
  options.enabled = true;
  options.economy_backlog = 10;
  options.conservative_backlog = 100;
  options.emergency_backlog = 1000;
  options.staleness_bound = 5 * kMicrosPerSecond;
  options.exit_fraction = 0.5;
  options.min_dwell = 2 * kMicrosPerSecond;
  return options;
}

OverloadSignals Backlog(uint64_t depth) {
  OverloadSignals signals;
  signals.backlog_depth = depth;
  return signals;
}

// ---------------------------------------------------------------------
// OverloadController: the hysteretic ladder in isolation.
// ---------------------------------------------------------------------

TEST(OverloadControllerTest, EscalationIsImmediateAndCanSkipRungs) {
  ManualClock clock;
  OverloadController controller(&clock, LadderOptions());
  EXPECT_EQ(controller.mode(), DegradationMode::kNormal);

  // A single planning point jumps as high as the signals demand — no
  // rung-by-rung climb while staleness accumulates.
  EXPECT_EQ(controller.Plan(Backlog(1000)), DegradationMode::kEmergency);
  EXPECT_EQ(controller.stats().escalations, 1u);
}

TEST(OverloadControllerTest, DeescalationIsOneRungPerPointAfterDwell) {
  ManualClock clock;
  OverloadController controller(&clock, LadderOptions());
  controller.Plan(Backlog(1000));
  ASSERT_EQ(controller.mode(), DegradationMode::kEmergency);

  // Signals drop to zero instantly, but the ladder is reluctant: no
  // step before the dwell, then exactly one rung per planning point.
  EXPECT_EQ(controller.Plan(Backlog(0)), DegradationMode::kEmergency);
  clock.Advance(2 * kMicrosPerSecond);
  EXPECT_EQ(controller.Plan(Backlog(0)), DegradationMode::kConservative);
  // The dwell restarts on the new rung.
  EXPECT_EQ(controller.Plan(Backlog(0)), DegradationMode::kConservative);
  clock.Advance(2 * kMicrosPerSecond);
  EXPECT_EQ(controller.Plan(Backlog(0)), DegradationMode::kEconomy);
  clock.Advance(2 * kMicrosPerSecond);
  EXPECT_EQ(controller.Plan(Backlog(0)), DegradationMode::kNormal);
  EXPECT_EQ(controller.stats().deescalations, 3u);
}

TEST(OverloadControllerTest, NoFlappingWhenLoadHoversAtAWatermark) {
  ManualClock clock;
  OverloadController controller(&clock, LadderOptions());

  // Load oscillating right around the economy watermark (9..11 against
  // a watermark of 10): one escalation, then the ladder holds — the
  // exit requires dropping below exit_fraction * watermark = 5.
  for (int i = 0; i < 50; ++i) {
    clock.Advance(kMicrosPerSecond);
    controller.Plan(Backlog(i % 2 == 0 ? 11 : 9));
  }
  EXPECT_EQ(controller.mode(), DegradationMode::kEconomy);
  EXPECT_EQ(controller.stats().escalations, 1u);
  EXPECT_EQ(controller.stats().deescalations, 0u);

  // Only a genuine drop below the exit watermark releases the rung.
  clock.Advance(2 * kMicrosPerSecond);
  EXPECT_EQ(controller.Plan(Backlog(4)), DegradationMode::kNormal);
  EXPECT_EQ(controller.stats().deescalations, 1u);
}

TEST(OverloadControllerTest, DwellRateLimitsChurnUnderOnOffLoad) {
  ManualClock clock;
  OverloadController controller(&clock, LadderOptions());
  // A pathological on/off load alternating between empty and far above
  // the conservative watermark every 500ms. A dwell-free ladder would
  // flip on every planning point (10 escalations over these 10
  // seconds); the 2s dwell caps churn at one down/up pair per dwell
  // window.
  for (int i = 0; i < 20; ++i) {
    clock.Advance(kMicrosPerSecond / 2);
    controller.Plan(Backlog(i % 2 == 0 ? 150 : 0));
  }
  EXPECT_EQ(controller.mode(), DegradationMode::kConservative);
  EXPECT_LE(controller.stats().escalations, 4u);
  EXPECT_LE(controller.stats().deescalations, 4u);
  EXPECT_GE(controller.stats().escalations, 1u);
}

TEST(OverloadControllerTest, StalenessBoundForcesEmergencyRegardlessOfDepth) {
  ManualClock clock;
  OverloadController controller(&clock, LadderOptions());
  OverloadSignals signals;
  signals.backlog_depth = 1;                   // Tiny backlog...
  signals.backlog_age = 5 * kMicrosPerSecond;  // ...but an old one.
  EXPECT_EQ(controller.Plan(signals), DegradationMode::kEmergency);
  EXPECT_EQ(controller.stats().staleness_breaches, 1u);
}

TEST(OverloadControllerTest, LatencyAndDeliverySignalsReachEconomy) {
  ManualClock clock;
  OverloadOptions options = LadderOptions();
  options.cycle_latency_watermark = kMicrosPerSecond;
  options.delivery_backlog_watermark = 50;

  OverloadController slow(&clock, options);
  OverloadSignals signals;
  signals.last_cycle_latency = kMicrosPerSecond;
  EXPECT_EQ(slow.Plan(signals), DegradationMode::kEconomy);

  OverloadController backlogged(&clock, options);
  signals = OverloadSignals{};
  signals.delivery_backlog = 50;
  EXPECT_EQ(backlogged.Plan(signals), DegradationMode::kEconomy);
}

TEST(OverloadControllerTest, DisabledControllerPinsNormal) {
  ManualClock clock;
  OverloadOptions options = LadderOptions();
  options.enabled = false;
  OverloadController controller(&clock, options);
  EXPECT_EQ(controller.Plan(Backlog(100000)), DegradationMode::kNormal);
  EXPECT_EQ(controller.stats().escalations, 0u);
  // Observability still works while disabled: the maxima are tracked.
  EXPECT_EQ(controller.stats().max_backlog_depth, 100000u);
}

// ---------------------------------------------------------------------
// Invalidator under degradation: budget shrink, poll skip, table flush.
// ---------------------------------------------------------------------

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.push_back(cache_key);
    return Status::OK();
  }
  std::vector<std::string> invalidated;
};

constexpr char kCarsSql[] = "SELECT * FROM Car WHERE price < 30000";
constexpr char kCheapSql[] = "SELECT * FROM Car WHERE price < 10000";
constexpr char kEpaSql[] = "SELECT * FROM Mileage WHERE EPA > 25";
constexpr char kJoinSql[] =
    "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND "
    "Car.price < 20000";
constexpr char kCarsPage[] = "shop/cars##";
constexpr char kCheapPage[] = "shop/cheap##";
constexpr char kEpaPage[] = "shop/epa##";
constexpr char kJoinPage[] = "shop/join##";

/// A small shop: three single-table instances plus one join instance
/// that needs polling. The invalidator is created AFTER the seed rows
/// so its first cycle sees a clean log and registers under kNormal.
struct World {
  explicit World(InvalidatorOptions options) : db(&clock) {
    EXPECT_TRUE(db.CreateTable(db::TableSchema(
                                   "Car",
                                   {{"maker", db::ColumnType::kString},
                                    {"model", db::ColumnType::kString},
                                    {"price", db::ColumnType::kInt}}))
                    .ok());
    EXPECT_TRUE(db.CreateTable(db::TableSchema(
                                   "Mileage",
                                   {{"model", db::ColumnType::kString},
                                    {"EPA", db::ColumnType::kInt}}))
                    .ok());
    db.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Camry', 22000)")
        .value();
    db.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 28)").value();
    Recache();
    inv = std::make_unique<Invalidator>(&db, &map, &clock, options);
    inv->AddSink(&sink);
    inv->RunCycle().value();  // Registers the four instances, no updates.
    sink.invalidated.clear();
  }

  void Recache() {
    map.Add(kCarsSql, kCarsPage, "/r", clock.NowMicros());
    map.Add(kCheapSql, kCheapPage, "/r", clock.NowMicros());
    map.Add(kEpaSql, kEpaPage, "/r", clock.NowMicros());
    map.Add(kJoinSql, kJoinPage, "/r", clock.NowMicros());
  }

  bool Invalidated(const std::string& page) const {
    return std::find(sink.invalidated.begin(), sink.invalidated.end(),
                     page) != sink.invalidated.end();
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  RecordingSink sink;
  std::unique_ptr<Invalidator> inv;
};

InvalidatorOptions DegradedOptions(uint64_t economy, uint64_t conservative,
                                   uint64_t emergency) {
  InvalidatorOptions options;
  options.overload.enabled = true;
  options.overload.economy_backlog = economy;
  options.overload.conservative_backlog = conservative;
  options.overload.emergency_backlog = emergency;
  options.overload.economy_poll_budget = 1;
  options.overload.min_dwell = 0;  // Recovery is immediate in these tests.
  return options;
}

TEST(InvalidatorOverloadTest, ConservativeModeSkipsPollingEntirely) {
  // Two updates put the backlog at the conservative watermark.
  World w(DegradedOptions(1, 2, 1000));
  w.db.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)")
      .value();
  w.db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 11000)")
      .value();

  CycleReport report = w.inv->RunCycle().value();
  EXPECT_EQ(report.mode, DegradationMode::kConservative);
  // The join instance normally needs a polling query (see
  // InvalidatorTest.JoinQueryUsesPollingQuery); under kConservative it
  // is condemned without one — precision traded for DBMS relief.
  EXPECT_EQ(report.polls_issued, 0u);
  EXPECT_EQ(w.inv->stats().polls_issued, 0u);
  EXPECT_GT(report.conservative_invalidations, 0u);
  EXPECT_TRUE(w.Invalidated(kJoinPage));
  // Impact analysis itself still runs: cheap (nothing under 10000)
  // survives, cars (both inserts under 30000) goes.
  EXPECT_TRUE(w.Invalidated(kCarsPage));
  EXPECT_FALSE(w.Invalidated(kCheapPage));
}

TEST(InvalidatorOverloadTest, EmergencyFlushesOnlyBackloggedTables) {
  World w(DegradedOptions(1, 2, 3));
  for (int i = 0; i < 3; ++i) {
    w.db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'NSX', 90000)")
        .value();
  }

  CycleReport report = w.inv->RunCycle().value();
  EXPECT_EQ(report.mode, DegradationMode::kEmergency);
  EXPECT_GT(w.inv->stats().emergency_flushes, 0u);
  // Every Car-reading instance is flushed — even though a 90000 insert
  // matches none of their predicates, so precise analysis would have
  // cleared all three. The Mileage instance reads an untouched table
  // and is provably unaffected, so it survives even an emergency.
  EXPECT_TRUE(w.Invalidated(kCarsPage));
  EXPECT_TRUE(w.Invalidated(kCheapPage));
  EXPECT_TRUE(w.Invalidated(kJoinPage));
  EXPECT_FALSE(w.Invalidated(kEpaPage));

  // The cursor fast-forwarded past the backlog: the next cycle starts
  // with a clean log and (dwell = 0) the ladder steps back down.
  w.Recache();
  CycleReport next = w.inv->RunCycle().value();
  EXPECT_EQ(next.updates, 0u);
  EXPECT_LT(static_cast<int>(next.mode),
            static_cast<int>(DegradationMode::kEmergency));
}

TEST(InvalidatorOverloadTest, StatsReportCarriesOverloadAndSinkHealth) {
  World w(DegradedOptions(1, 100, 1000));
  core::ReliableDeliveryQueue queue(&w.clock);
  RecordingSink edge;
  queue.AddSink(&edge, "edge");
  w.inv->AddSink(&queue);

  w.db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 13000)")
      .value();
  w.inv->RunCycle().value();

  std::string report = w.inv->StatsReport();
  EXPECT_NE(report.find("overload: mode="), std::string::npos) << report;
  EXPECT_NE(report.find("emergency-flushes="), std::string::npos) << report;
  EXPECT_NE(report.find("sink 1 delivery: pending="), std::string::npos)
      << report;
}

TEST(InvalidatorOverloadTest, ModeRidesTheCycleReport) {
  World w(DegradedOptions(1, 1000, 100000));
  w.db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 13000)")
      .value();
  CycleReport report = w.inv->RunCycle().value();
  EXPECT_EQ(report.mode, DegradationMode::kEconomy);
}

}  // namespace
}  // namespace cacheportal::invalidator
