#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/reliable_delivery.h"
#include "db/database.h"
#include "invalidator/baseline.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

/// Rejects every third message. Deterministic because the invalidator
/// never calls the same sink from two threads: each sink sees its
/// messages serially, in serial-pipeline order.
class FlakySink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    if (++calls % 3 == 0) {
      failed.insert(cache_key);
      return Status::Internal("flaky cache");
    }
    invalidated.insert(cache_key);
    return Status::OK();
  }
  uint64_t calls = 0;
  std::set<std::string> invalidated;
  std::set<std::string> failed;
};

/// Everything one scenario run observed, for exact comparison across
/// worker counts. Cycle durations and report timings are excluded (the
/// only fields allowed to differ).
struct ScenarioResult {
  std::vector<std::set<std::string>> cycle_invalidated;  // Per round.
  std::vector<std::string> cycle_reports;                // Per round.
  std::set<std::string> flaky_failed;
  std::set<std::string> durable_delivered;  // Via ReliableDeliveryQueue.
  std::string stats_report;
  InvalidatorStats stats;
};

std::string ReportKey(const CycleReport& r) {
  return StrCat(r.updates, "/", r.new_instances, "/", r.checks, "/",
                r.affected_instances, "/", r.polls_issued, "/",
                r.polls_answered_by_index, "/", r.conservative_invalidations,
                "/", r.pages_invalidated, "/", DegradationModeName(r.mode));
}

/// One deterministic scripted workload that exercises every pipeline
/// branch: immediate impact, unaffected, index-answered polls, DBMS
/// polls (hits and misses), the polling-budget condemnation path, the
/// multi-table soundness guard, the internal polling cache, multi-sink
/// delivery with failures, and a ReliableDeliveryQueue in the sink list.
ScenarioResult RunScenario(size_t workers) {
  ManualClock clock;
  db::Database db(&clock);
  EXPECT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  EXPECT_TRUE(
      db.CreateTable(db::TableSchema(
                         "Mileage", {{"model", db::ColumnType::kString},
                                     {"EPA", db::ColumnType::kInt}}))
          .ok());
  const char* seed_rows[] = {
      "INSERT INTO Car VALUES ('Toyota', 'Avalon', 22000)",
      "INSERT INTO Car VALUES ('Toyota', 'Corolla', 14000)",
      "INSERT INTO Car VALUES ('Honda', 'Civic', 13000)",
      "INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 15000)",
      "INSERT INTO Car VALUES ('Ford', 'Focus', 11000)",
      "INSERT INTO Mileage VALUES ('Avalon', 28)",
      "INSERT INTO Mileage VALUES ('Civic', 33)",
      "INSERT INTO Mileage VALUES ('Corolla', 31)",
  };
  for (const char* sql_text : seed_rows) {
    db.ExecuteSql(sql_text).value();
  }

  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.worker_threads = workers;
  options.max_polls_per_cycle = 2;       // Budget pressure: condemnations.
  options.polling_cache_capacity = 16;   // Exercise the internal cache.
  // Overload controller on, tuned so the ladder actually moves during
  // the scenario (the seeding burst and the final mixed burst reach
  // kEconomy, the quiet recache cycles step back down) while the
  // economy budget equals the configured one — mode transitions ride
  // the reports without perturbing the scripted decisions.
  options.overload.enabled = true;
  options.overload.economy_backlog = 3;
  options.overload.conservative_backlog = 1000;
  options.overload.economy_poll_budget = 2;
  options.overload.min_dwell = 2 * kMicrosPerSecond;
  Invalidator inv(&db, &map, &clock, options);
  EXPECT_TRUE(inv.CreateJoinIndex("Mileage", "model").ok());

  RecordingSink sink_a;
  RecordingSink sink_b;
  FlakySink flaky;
  RecordingSink durable;
  core::ReliableDeliveryQueue queue(&clock);
  queue.AddSink(&durable, "edge");
  inv.AddSink(&sink_a);
  inv.AddSink(&sink_b);
  inv.AddSink(&flaky);
  inv.AddSink(&queue);

  const std::vector<std::string> sqls = {
      "SELECT * FROM Car WHERE price < 9000",
      "SELECT * FROM Car WHERE maker = 'Toyota'",
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 8000",
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 16000",
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 24000",
      "SELECT * FROM Mileage WHERE EPA > 25",
  };
  auto recache = [&map, &sqls]() {
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
  };
  recache();
  inv.RunCycle().value();  // Drain the seeding updates, register pages.

  // Each round: updates that light up a specific pipeline branch.
  const std::vector<std::vector<std::string>> rounds = {
      // Immediate impact (maker = 'Toyota'), an index-answered join poll
      // (Avalon IS in Mileage), and unaffected instances.
      {"INSERT INTO Car VALUES ('Toyota', 'Avalon', 20000)"},
      // Mileage insert: EPA instance affected immediately; the three
      // join instances need Car-side polls (conjunctions the join index
      // cannot answer) — three polls against a budget of two, so one
      // instance is condemned conservatively; of the polled ones some
      // hit (Eclipse sells under 16000) and some miss.
      {"INSERT INTO Mileage VALUES ('Eclipse', 30)"},
      // Both join relations updated in one batch: the multi-table
      // soundness guard invalidates the join instances conservatively.
      {"INSERT INTO Car VALUES ('Honda', 'Civic', 7000)",
       "INSERT INTO Mileage VALUES ('Focus', 20)"},
      // Delete on the indexed relation: join polls go to the Car side,
      // through the polling cache, under budget pressure again.
      {"DELETE FROM Mileage WHERE model = 'Avalon'"},
      // Nothing matches any instance: the unaffected path.
      {"INSERT INTO Car VALUES ('Ford', 'Focus', 30000)"},
      // A bigger mixed burst.
      {"INSERT INTO Car VALUES ('Toyota', 'Corolla', 5000)",
       "DELETE FROM Car WHERE price > 21000",
       "INSERT INTO Mileage VALUES ('Focus', 22)"},
  };

  ScenarioResult result;
  for (const std::vector<std::string>& updates : rounds) {
    // One second per cycle: the dwell clock moves, so the ladder can
    // step back down between bursts (all on the shared ManualClock, so
    // identical at every worker count).
    clock.Advance(kMicrosPerSecond);
    for (const std::string& update : updates) {
      db.ExecuteSql(update).value();
    }
    sink_a.invalidated.clear();
    CycleReport report = inv.RunCycle().value();
    result.cycle_invalidated.push_back(sink_a.invalidated);
    result.cycle_reports.push_back(ReportKey(report));
    recache();
    clock.Advance(kMicrosPerSecond);
    inv.RunCycle().value();  // Consume the re-cached pages.
  }
  result.flaky_failed = flaky.failed;
  result.durable_delivered = durable.invalidated;
  result.stats_report = inv.StatsReport();
  result.stats = inv.stats();

  // Every healthy sink saw the identical page set.
  std::set<std::string> all_a;
  for (const auto& cycle : result.cycle_invalidated) {
    all_a.insert(cycle.begin(), cycle.end());
  }
  EXPECT_EQ(all_a, sink_b.invalidated);
  return result;
}

/// The tentpole guarantee: invalidation decisions are identical at every
/// worker count — same pages per cycle, same per-cycle reports, same
/// lifetime counters, same per-type statistics, same delivery failures.
TEST(InvalidatorParallelTest, WorkerCountDoesNotChangeDecisions) {
  ScenarioResult serial = RunScenario(1);

  // The scripted workload really exercises every branch; a regression
  // that silently skips a branch would make the equality vacuous there.
  EXPECT_GT(serial.stats.affected_immediately, 0u);
  EXPECT_GT(serial.stats.unaffected, 0u);
  EXPECT_GT(serial.stats.polls_issued, 0u);
  EXPECT_GT(serial.stats.polls_answered_by_index, 0u);
  EXPECT_GT(serial.stats.poll_hits, 0u);
  EXPECT_GT(serial.stats.conservative_invalidations, 0u);
  EXPECT_GT(serial.stats.pages_invalidated, 0u);
  EXPECT_GT(serial.stats.messages_sent, 0u);
  EXPECT_GT(serial.stats.send_failures, 0u);
  // The overload controller was genuinely engaged, not idling at
  // kNormal: the report carries its line and the ladder moved.
  EXPECT_NE(serial.stats_report.find("overload: mode="), std::string::npos)
      << serial.stats_report;
  EXPECT_EQ(serial.stats_report.find("overload: mode=normal escalations=0 "),
            std::string::npos)
      << serial.stats_report;

  for (size_t workers : {2u, 4u, 8u}) {
    SCOPED_TRACE(StrCat("workers=", workers));
    ScenarioResult parallel = RunScenario(workers);
    EXPECT_EQ(serial.cycle_invalidated, parallel.cycle_invalidated);
    EXPECT_EQ(serial.cycle_reports, parallel.cycle_reports);
    EXPECT_EQ(serial.flaky_failed, parallel.flaky_failed);
    EXPECT_EQ(serial.durable_delivered, parallel.durable_delivered);
    EXPECT_EQ(serial.stats_report, parallel.stats_report);
  }
}

/// Random-workload soundness at 4 workers: the parallel pipeline must
/// still cover the exact re-execution baseline's ground truth.
class ParallelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDifferentialTest, ParallelInvalidationsCoverGroundTruth) {
  Random rng(GetParam());
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};
  for (int i = 0; i < 20; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                         makers[rng.Uniform(4)], "', 'M", rng.Uniform(6),
                         "', ", rng.Uniform(30000), ")"))
        .value();
  }

  sniffer::QiUrlMap map;
  RecordingSink sink;
  InvalidatorOptions options;
  options.worker_threads = 4;
  Invalidator inv(&db, &map, &clock, options);
  inv.AddSink(&sink);
  BaselineInvalidator baseline(&db, &map);

  std::vector<std::string> sqls;
  for (int i = 0; i < 8; ++i) {
    sqls.push_back(i % 2 == 0
                       ? StrCat("SELECT * FROM Car WHERE price < ",
                                5000 + rng.Uniform(25000))
                       : StrCat("SELECT * FROM Car WHERE maker = '",
                                makers[rng.Uniform(4)], "'"));
  }
  for (size_t i = 0; i < sqls.size(); ++i) {
    map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
  }
  baseline.RunCycle().value();
  inv.RunCycle().value();

  for (int round = 0; round < 6; ++round) {
    for (int u = 0; u < 1 + static_cast<int>(rng.Uniform(3)); ++u) {
      if (rng.OneIn(0.5)) {
        db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                             makers[rng.Uniform(4)], "', 'M",
                             rng.Uniform(6), "', ", rng.Uniform(30000), ")"))
            .value();
      } else {
        db.ExecuteSql(StrCat("DELETE FROM Car WHERE price > ",
                             15000 + rng.Uniform(15000)))
            .value();
      }
    }
    auto truth = baseline.RunCycle().value();
    sink.invalidated.clear();
    inv.RunCycle().value();
    for (const std::string& page : truth.stale_pages) {
      EXPECT_TRUE(sink.invalidated.contains(page))
          << "round " << round << ": stale page kept: " << page;
    }
    for (const std::string& sql_text : truth.changed_instances) {
      if (map.PagesForQuery(sql_text).empty()) baseline.Forget(sql_text);
    }
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
    baseline.RunCycle().value();
    inv.RunCycle().value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

/// More workers than instances, and an empty cycle, must both be safe.
TEST(InvalidatorParallelTest, MoreWorkersThanWorkIsSafe) {
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(
      db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}))
          .ok());
  sniffer::QiUrlMap map;
  RecordingSink sink;
  InvalidatorOptions options;
  options.worker_threads = 8;
  Invalidator inv(&db, &map, &clock, options);
  inv.AddSink(&sink);

  CycleReport empty = inv.RunCycle().value();  // No updates at all.
  EXPECT_EQ(empty.updates, 0u);

  map.Add("SELECT * FROM T WHERE x < 10", "p1", "/r", 0);
  inv.RunCycle().value();
  db.ExecuteSql("INSERT INTO T VALUES (5)").value();
  inv.RunCycle().value();
  EXPECT_TRUE(sink.invalidated.contains("p1"));
}

}  // namespace
}  // namespace cacheportal::invalidator
