#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/cycle.h"
#include "invalidator/invalidator.h"
#include "invalidator/metadata_plane.h"
#include "invalidator/stages.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

void CreateCarTables(db::Database* db) {
  ASSERT_TRUE(db->CreateTable(db::TableSchema(
                                  "Car", {{"maker", db::ColumnType::kString},
                                          {"model", db::ColumnType::kString},
                                          {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db->CreateTable(db::TableSchema(
                          "Mileage", {{"model", db::ColumnType::kString},
                                      {"EPA", db::ColumnType::kInt}}))
          .ok());
}

std::string ReportKey(const CycleReport& r) {
  return StrCat(r.updates, "/", r.new_instances, "/", r.checks, "/",
                r.affected_instances, "/", r.polls_issued, "/",
                r.polls_answered_by_index, "/", r.conservative_invalidations,
                "/", r.pages_invalidated, "/", DegradationModeName(r.mode));
}

// ---------------------------------------------------------------------------
// Differential matrix: the staged/sharded pipeline must produce
// byte-identical decisions at every (shards x workers) point. The oracle
// is the shards=1, workers=1 configuration — the exact serial pipeline
// the monolith ran (the pre-refactor suites pin ITS behavior).
// ---------------------------------------------------------------------------

struct MatrixResult {
  std::vector<std::set<std::string>> cycle_invalidated;  // Per round.
  std::vector<std::string> cycle_reports;                // Per round.
  std::string stats_report;
};

MatrixResult RunMatrixScenario(uint64_t seed, size_t shards, size_t workers,
                               bool matcher) {
  Random rng(seed);
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};
  const char* models[] = {"Avalon", "Civic", "Eclipse", "Corolla"};
  for (int i = 0; i < 16; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('", makers[rng.Uniform(4)],
                         "', '", models[rng.Uniform(4)], "', ",
                         rng.Uniform(30000), ")"))
        .value();
  }
  for (int i = 0; i < 4; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('",
                         models[rng.Uniform(4)], "', ", 20 + rng.Uniform(15),
                         ")"))
        .value();
  }

  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.metadata_shards = shards;
  options.worker_threads = workers;
  options.use_type_matcher = matcher;
  options.max_polls_per_cycle = 2;  // Budget pressure: condemnations.
  options.polling_cache_capacity = 8;
  Invalidator inv(&db, &map, &clock, options);
  EXPECT_TRUE(inv.CreateJoinIndex("Mileage", "model").ok());
  RecordingSink sink;
  inv.AddSink(&sink);

  // Ten instances over five distinct query types, so two and four shards
  // genuinely split the metadata (one type would collapse to one shard).
  std::vector<std::string> sqls;
  for (int i = 0; i < 10; ++i) {
    switch (i % 5) {
      case 0:
        sqls.push_back(StrCat("SELECT * FROM Car WHERE price < ",
                              4000 + rng.Uniform(26000)));
        break;
      case 1:
        sqls.push_back(StrCat("SELECT * FROM Car WHERE maker = '",
                              makers[rng.Uniform(4)], "'"));
        break;
      case 2:
        sqls.push_back(
            StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model = "
                   "Mileage.model AND Car.price < ",
                   6000 + rng.Uniform(20000)));
        break;
      case 3:
        sqls.push_back(
            StrCat("SELECT * FROM Mileage WHERE EPA > ", 18 + rng.Uniform(14)));
        break;
      default:
        sqls.push_back(StrCat("SELECT * FROM Car WHERE model = '",
                              models[rng.Uniform(4)], "'"));
        break;
    }
  }
  auto recache = [&map, &sqls]() {
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
  };
  recache();
  inv.RunCycle().value();  // Register the pages; the log is quiet.

  MatrixResult result;
  for (int round = 0; round < 6; ++round) {
    for (int u = 0; u < 1 + static_cast<int>(rng.Uniform(3)); ++u) {
      switch (rng.Uniform(4)) {
        case 0:
          db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                               makers[rng.Uniform(4)], "', '",
                               models[rng.Uniform(4)], "', ",
                               rng.Uniform(30000), ")"))
              .value();
          break;
        case 1:
          db.ExecuteSql(StrCat("DELETE FROM Car WHERE price > ",
                               15000 + rng.Uniform(15000)))
              .value();
          break;
        case 2:
          db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('",
                               models[rng.Uniform(4)], "', ",
                               20 + rng.Uniform(15), ")"))
              .value();
          break;
        default:
          db.ExecuteSql(StrCat("DELETE FROM Mileage WHERE EPA > ",
                               25 + rng.Uniform(10)))
              .value();
          break;
      }
    }
    sink.invalidated.clear();
    CycleReport report = inv.RunCycle().value();
    result.cycle_invalidated.push_back(sink.invalidated);
    result.cycle_reports.push_back(ReportKey(report));
    recache();
    inv.RunCycle().value();  // Consume the re-cached pages.
  }
  result.stats_report = inv.StatsReport();
  return result;
}

class PipelineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineDifferentialTest, ShardAndWorkerCountsDoNotChangeDecisions) {
  for (bool matcher : {false, true}) {
    SCOPED_TRACE(StrCat("matcher=", matcher));
    MatrixResult oracle = RunMatrixScenario(GetParam(), 1, 1, matcher);
    // The scenario is non-trivial: something got invalidated.
    size_t total = 0;
    for (const auto& cycle : oracle.cycle_invalidated) total += cycle.size();
    EXPECT_GT(total, 0u);

    for (size_t shards : {1u, 2u, 4u}) {
      for (size_t workers : {1u, 4u}) {
        if (shards == 1 && workers == 1) continue;
        SCOPED_TRACE(StrCat("shards=", shards, " workers=", workers));
        MatrixResult got = RunMatrixScenario(GetParam(), shards, workers,
                                             matcher);
        EXPECT_EQ(oracle.cycle_invalidated, got.cycle_invalidated);
        EXPECT_EQ(oracle.cycle_reports, got.cycle_reports);
        EXPECT_EQ(oracle.stats_report, got.stats_report);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDifferentialTest,
                         ::testing::Range<uint64_t>(1, 12));

// ---------------------------------------------------------------------------
// MetadataPlane unit tests.
// ---------------------------------------------------------------------------

TEST(MetadataPlaneTest, MergedIterationOrderIsShardCountInvariant) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  const std::vector<std::string> sqls = {
      "SELECT * FROM Car WHERE price < 9000",
      "SELECT * FROM Car WHERE price < 21000",
      "SELECT * FROM Car WHERE maker = 'Toyota'",
      "SELECT * FROM Car WHERE maker = 'Honda'",
      "SELECT * FROM Car WHERE model = 'Civic'",
      "SELECT * FROM Mileage WHERE EPA > 25",
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 16000",
  };
  auto scan = [&sqls, &db](size_t shards) {
    MetadataPlane plane(&db, shards, /*use_type_matcher=*/true);
    for (const std::string& sql_text : sqls) {
      EXPECT_TRUE(plane.RegisterInstance(sql_text).ok()) << sql_text;
    }
    std::vector<std::pair<uint64_t, std::string>> order;
    plane.ForEachInstance(
        [&order](const QueryType& type, const QueryInstance& instance) {
          order.emplace_back(type.type_id, instance.sql);
        });
    EXPECT_EQ(order.size(), sqls.size());
    return order;
  };
  auto oracle = scan(1);
  for (size_t shards : {2u, 3u, 4u, 8u}) {
    SCOPED_TRACE(StrCat("shards=", shards));
    EXPECT_EQ(scan(shards), oracle);
  }
  // And the merge really is ascending type_id.
  for (size_t i = 1; i < oracle.size(); ++i) {
    EXPECT_LE(oracle[i - 1].first, oracle[i].first);
  }
}

TEST(MetadataPlaneTest, RegistrationIsIdempotentAndRetireRoutesBySql) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTables(&db);
  MetadataPlane plane(&db, 4, /*use_type_matcher=*/true);
  const std::string sql_text = "SELECT * FROM Car WHERE price < 9000";

  const QueryInstance* first = plane.RegisterInstance(sql_text).value();
  const QueryInstance* again = plane.RegisterInstance(sql_text).value();
  EXPECT_EQ(first, again);  // The fast path resolves to the same node.
  EXPECT_EQ(plane.NumInstances(), 1u);
  EXPECT_EQ(plane.NumIndexedInstances(), 1u);
  EXPECT_EQ(plane.FindInstance(sql_text), first);

  // Retirement needs only the SQL: the route map finds the shard.
  plane.RetireInstance(sql_text);
  EXPECT_EQ(plane.FindInstance(sql_text), nullptr);
  EXPECT_EQ(plane.NumInstances(), 0u);
  EXPECT_EQ(plane.NumIndexedInstances(), 0u);
  // The type (and its stats) outlive the instance.
  EXPECT_EQ(plane.NumTypes(), 1u);

  // Re-registration after retirement takes the slow path and succeeds.
  const QueryInstance* back = plane.RegisterInstance(sql_text).value();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(plane.NumInstances(), 1u);
  EXPECT_EQ(plane.NumIndexedInstances(), 1u);
}

TEST(MetadataPlaneTest, MapCursorsAdvanceInLockstepAndReset) {
  ManualClock clock;
  db::Database db(&clock);
  MetadataPlane plane(&db, 3, /*use_type_matcher=*/false);
  EXPECT_EQ(plane.MinMapCursor(), 0u);
  plane.AdvanceMapCursors(7);
  EXPECT_EQ(plane.MinMapCursor(), 7u);
  EXPECT_EQ(plane.MapCursors(), (std::vector<uint64_t>{7, 7, 7}));
  plane.AdvanceMapCursors(3);  // Never rewinds.
  EXPECT_EQ(plane.MinMapCursor(), 7u);
  plane.ResetMapCursors();
  EXPECT_EQ(plane.MapCursors(), (std::vector<uint64_t>{0, 0, 0}));
}

TEST(MetadataPlaneTest, ZeroShardsIsTreatedAsOne) {
  ManualClock clock;
  db::Database db(&clock);
  MetadataPlane plane(&db, 0, /*use_type_matcher=*/false);
  EXPECT_EQ(plane.num_shards(), 1u);
}

// ---------------------------------------------------------------------------
// StagePolicy: the degradation rung resolved into stage knobs.
// ---------------------------------------------------------------------------

TEST(StagePolicyTest, RungsResolveToKnobs) {
  InvalidatorOptions options;
  options.max_polls_per_cycle = 10;
  options.overload.economy_poll_budget = 3;

  StagePolicy normal = MakeStagePolicy(DegradationMode::kNormal, options);
  EXPECT_EQ(normal.poll_budget, 10u);
  EXPECT_FALSE(normal.skip_polls);
  EXPECT_FALSE(normal.flush_only);

  StagePolicy economy = MakeStagePolicy(DegradationMode::kEconomy, options);
  EXPECT_EQ(economy.poll_budget, 3u);
  EXPECT_FALSE(economy.skip_polls);

  // An unlimited configured budget still shrinks to the economy budget.
  InvalidatorOptions unlimited = options;
  unlimited.max_polls_per_cycle = 0;
  EXPECT_EQ(MakeStagePolicy(DegradationMode::kEconomy, unlimited).poll_budget,
            3u);

  // A zero economy budget means "no polls at all" on the economy rung.
  InvalidatorOptions zero = options;
  zero.overload.economy_poll_budget = 0;
  EXPECT_TRUE(MakeStagePolicy(DegradationMode::kEconomy, zero).skip_polls);

  StagePolicy conservative =
      MakeStagePolicy(DegradationMode::kConservative, options);
  EXPECT_TRUE(conservative.skip_polls);
  EXPECT_FALSE(conservative.flush_only);

  StagePolicy emergency = MakeStagePolicy(DegradationMode::kEmergency, options);
  EXPECT_TRUE(emergency.skip_polls);
  EXPECT_TRUE(emergency.flush_only);
}

// ---------------------------------------------------------------------------
// Stage isolation: each stage driven standalone around a hand-built
// StageEnv / CycleContext, the way the CycleContext contract promises.
// ---------------------------------------------------------------------------

/// Owns every component a StageEnv borrows, with nullable extras off.
struct StageFixture {
  explicit StageFixture(size_t shards = 2, bool matcher = false)
      : db(&clock),
        plane(&db, shards, matcher),
        info(&db),
        scheduler(/*max_polls_per_cycle=*/0) {}

  StageEnv Env() {
    StageEnv env;
    env.database = &db;
    env.map = &map;
    env.clock = &clock;
    env.options = &options;
    env.plane = &plane;
    env.info = &info;
    env.scheduler = &scheduler;
    env.sinks = &sinks;
    env.stats = &stats;
    env.cycle_matcher_stats = &cycle_matcher_stats;
    env.last_update_seq = &last_update_seq;
    env.last_map_epoch = &last_map_epoch;
    env.execute_poll = [this](const std::string& poll_sql) {
      return db.ExecuteSql(poll_sql);
    };
    return env;
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  MetadataPlane plane;
  InformationManager info;
  InvalidationScheduler scheduler;
  RecordingSink sink;
  std::vector<InvalidationSink*> sinks = {&sink};
  InvalidatorStats stats;
  MatcherStats cycle_matcher_stats;
  uint64_t last_update_seq = 0;
  std::optional<uint64_t> last_map_epoch;
};

TEST(IngestStageTest, RegistersInstancesAndBuildsDeltas) {
  StageFixture fx;
  ASSERT_TRUE(
      fx.db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}))
          .ok());
  fx.last_update_seq = fx.db.update_log().LastSeq();
  fx.map.Add("SELECT * FROM T WHERE x < 10", "p1", "/r", 0);
  fx.db.ExecuteSql("INSERT INTO T VALUES (5)").value();

  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  EXPECT_TRUE(ctx.proceed);
  EXPECT_EQ(ctx.report.updates, 1u);
  EXPECT_EQ(ctx.report.new_instances, 1u);
  EXPECT_EQ(fx.plane.NumInstances(), 1u);
  EXPECT_EQ(fx.plane.MinMapCursor(), fx.map.LastId());
  ASSERT_EQ(ctx.merged.size(), 1u);
  EXPECT_EQ(ctx.merged[0].tuples.size(), 1u);
  EXPECT_EQ(fx.last_update_seq, fx.db.update_log().LastSeq());
}

TEST(IngestStageTest, QuietLogStopsThePipelineButStillRegisters) {
  StageFixture fx;
  ASSERT_TRUE(
      fx.db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}))
          .ok());
  fx.last_update_seq = fx.db.update_log().LastSeq();
  fx.map.Add("SELECT * FROM T WHERE x < 10", "p1", "/r", 0);

  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  EXPECT_FALSE(ctx.proceed);
  EXPECT_EQ(ctx.report.updates, 0u);
  EXPECT_EQ(fx.plane.NumInstances(), 1u);  // Registration still happened.
}

TEST(IngestStageTest, UnchangedMapEpochSkipsTheScan) {
  StageFixture fx;
  ASSERT_TRUE(
      fx.db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}))
          .ok());
  fx.last_update_seq = fx.db.update_log().LastSeq();
  fx.map.Add("SELECT * FROM T WHERE x < 10", "p1", "/r", 0);

  // Pretend the previous cycle already scanned at this epoch: ingest must
  // skip ReadSince entirely, so the row stays unregistered.
  fx.last_map_epoch = fx.map.epoch();
  fx.db.ExecuteSql("INSERT INTO T VALUES (5)").value();
  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  EXPECT_EQ(ctx.report.new_instances, 0u);
  EXPECT_EQ(fx.plane.NumInstances(), 0u);

  // A new row bumps the epoch; the next scan picks everything up.
  fx.map.Add("SELECT * FROM T WHERE x < 20", "p2", "/r", 0);
  fx.db.ExecuteSql("INSERT INTO T VALUES (6)").value();
  CycleContext ctx2;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx2).ok());
  EXPECT_EQ(ctx2.report.new_instances, 2u);
  EXPECT_EQ(fx.plane.NumInstances(), 2u);

  // nullopt (e.g. after Restore) forces a scan even at the same epoch.
  fx.plane.ResetMapCursors();
  fx.plane.RetireInstance("SELECT * FROM T WHERE x < 10");
  fx.last_map_epoch.reset();
  fx.db.ExecuteSql("INSERT INTO T VALUES (7)").value();
  CycleContext ctx3;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx3).ok());
  EXPECT_EQ(fx.plane.NumInstances(), 2u);  // Re-registered from the map.
}

TEST(ImpactStageTest, SplitsAffectedFromUnaffected) {
  StageFixture fx;
  ASSERT_TRUE(
      fx.db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}))
          .ok());
  fx.last_update_seq = fx.db.update_log().LastSeq();
  const std::string hit = "SELECT * FROM T WHERE x < 10";
  const std::string miss = "SELECT * FROM T WHERE x > 100";
  fx.map.Add(hit, "p-hit", "/r", 0);
  fx.map.Add(miss, "p-miss", "/r", 0);
  fx.db.ExecuteSql("INSERT INTO T VALUES (5)").value();

  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  ASSERT_TRUE(ctx.proceed);
  ASSERT_TRUE(ImpactStage(fx.Env()).Run(ctx).ok());

  EXPECT_EQ(ctx.report.checks, 2u);
  EXPECT_TRUE(ctx.affected.contains(hit));
  EXPECT_FALSE(ctx.affected.contains(miss));
  EXPECT_EQ(fx.stats.affected_immediately, 1u);
  EXPECT_EQ(fx.stats.unaffected, 1u);
  EXPECT_TRUE(ctx.tasks.empty());
}

TEST(PollStageTest, SkipPollsCondemnsEveryUndecidedInstance) {
  StageFixture fx;
  CreateCarTables(&fx.db);
  fx.db.ExecuteSql("INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 15000)")
      .value();
  fx.last_update_seq = fx.db.update_log().LastSeq();
  // A join instance: a Mileage insert decides nothing immediately and
  // produces a Car-side polling query.
  const std::string join_sql =
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 16000";
  fx.map.Add(join_sql, "p-join", "/r", 0);
  fx.db.ExecuteSql("INSERT INTO Mileage VALUES ('Eclipse', 30)").value();

  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  ASSERT_TRUE(ctx.proceed);
  ASSERT_TRUE(ImpactStage(fx.Env()).Run(ctx).ok());
  ASSERT_FALSE(ctx.tasks.empty());  // The stage really handed off polls.

  // Conservative rung: PollStage must condemn without touching the DBMS.
  ctx.policy.skip_polls = true;
  StageEnv env = fx.Env();
  env.execute_poll = [](const std::string&) -> Result<db::QueryResult> {
    ADD_FAILURE() << "skip_polls must not execute any poll";
    return Status::Internal("unreachable");
  };
  ASSERT_TRUE(PollStage(env).Run(ctx).ok());
  EXPECT_EQ(ctx.report.polls_issued, 0u);
  EXPECT_EQ(ctx.report.conservative_invalidations, 1u);
  EXPECT_TRUE(ctx.affected.contains(join_sql));
}

TEST(PollStageTest, PollsDecideUndecidedInstances) {
  StageFixture fx;
  CreateCarTables(&fx.db);
  fx.db.ExecuteSql("INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 15000)")
      .value();
  fx.last_update_seq = fx.db.update_log().LastSeq();
  const std::string join_sql =
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 16000";
  fx.map.Add(join_sql, "p-join", "/r", 0);
  fx.db.ExecuteSql("INSERT INTO Mileage VALUES ('Eclipse', 30)").value();

  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  ASSERT_TRUE(ImpactStage(fx.Env()).Run(ctx).ok());
  ASSERT_TRUE(PollStage(fx.Env()).Run(ctx).ok());
  EXPECT_GE(ctx.report.polls_issued, 1u);
  // The poll hits: Eclipse sells for under 16000.
  EXPECT_TRUE(ctx.affected.contains(join_sql));
  EXPECT_EQ(fx.stats.poll_hits, 1u);
}

TEST(DeliverStageTest, HandBuiltAffectedSetBecomesEjects) {
  StageFixture fx;
  CreateCarTables(&fx.db);
  const std::string sql_text = "SELECT * FROM Car WHERE price < 9000";
  const std::string other = "SELECT * FROM Car WHERE maker = 'Toyota'";
  fx.map.Add(sql_text, "shop/a?##", "/r", 0);
  fx.map.Add(sql_text, "shop/b?##", "/r", 0);
  fx.map.Add(other, "shop/keep?##", "/r", 0);
  ASSERT_TRUE(fx.plane.RegisterInstance(sql_text).ok());
  ASSERT_TRUE(fx.plane.RegisterInstance(other).ok());

  // Hand-built context: only the affected set matters to delivery.
  CycleContext ctx;
  ctx.affected.insert(sql_text);
  ASSERT_TRUE(DeliverStage(fx.Env()).Run(ctx).ok());

  EXPECT_EQ(ctx.report.affected_instances, 1u);
  EXPECT_EQ(ctx.report.pages_invalidated, 2u);
  EXPECT_EQ(fx.sink.invalidated,
            (std::set<std::string>{"shop/a?##", "shop/b?##"}));
  // Ejected pages left the map; the page-less instance was retired; the
  // unaffected instance and its page are untouched.
  EXPECT_EQ(fx.map.NumPagesForQuery(sql_text), 0u);
  EXPECT_EQ(fx.plane.FindInstance(sql_text), nullptr);
  EXPECT_NE(fx.plane.FindInstance(other), nullptr);
  EXPECT_EQ(fx.map.NumPagesForQuery(other), 1u);
}

/// The composed stages equal Invalidator::RunCycle on the same world —
/// the decomposition did not change what a cycle does.
TEST(StageCompositionTest, ComposedStagesMatchRunCycle) {
  auto run = [](bool composed) {
    StageFixture fx;
    CreateCarTables(&fx.db);
    fx.db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 13000)")
        .value();
    // Both variants attach at the current log position, before the
    // tracked insert below.
    std::unique_ptr<Invalidator> inv;
    RecordingSink inv_sink;
    if (composed) {
      fx.last_update_seq = fx.db.update_log().LastSeq();
    } else {
      inv = std::make_unique<Invalidator>(&fx.db, &fx.map, &fx.clock,
                                          fx.options);
      inv->AddSink(&inv_sink);
    }
    fx.map.Add("SELECT * FROM Car WHERE price < 20000", "p0?##", "/r", 0);
    fx.map.Add("SELECT * FROM Car WHERE maker = 'Ford'", "p1?##", "/r", 0);
    fx.db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Fit', 16000)").value();

    if (composed) {
      CycleContext ctx;
      ctx.start = fx.clock.NowMicros();
      StageEnv env = fx.Env();
      EXPECT_TRUE(IngestStage(env).Run(ctx).ok());
      EXPECT_TRUE(ImpactStage(env).Run(ctx).ok());
      EXPECT_TRUE(PollStage(env).Run(ctx).ok());
      EXPECT_TRUE(DeliverStage(env).Run(ctx).ok());
      return std::make_pair(ReportKey(ctx.report), fx.sink.invalidated);
    }
    CycleReport report = inv->RunCycle().value();
    return std::make_pair(ReportKey(report), inv_sink.invalidated);
  };
  auto composed = run(true);
  auto monolith = run(false);
  EXPECT_EQ(composed.first, monolith.first);
  EXPECT_EQ(composed.second, monolith.second);
}

}  // namespace
}  // namespace cacheportal::invalidator
