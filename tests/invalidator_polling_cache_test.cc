#include <gtest/gtest.h>

#include "common/clock.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "invalidator/polling_cache.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

class PollingCacheTest : public ::testing::Test {
 protected:
  PollingCacheTest() : db_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable(db::TableSchema(
                            "Mileage", {{"model", db::ColumnType::kString},
                                        {"EPA", db::ColumnType::kInt}}))
            .ok());
    db_.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 28)").value();
  }

  ManualClock clock_;
  db::Database db_;
};

TEST_F(PollingCacheTest, CachesRepeatedPolls) {
  PollingDataCache cache(&db_, 100);
  const std::string poll =
      "SELECT 1 AS hit FROM Mileage WHERE 'Avalon' = Mileage.model LIMIT 1";
  uint64_t before = db_.queries_executed();
  auto first = cache.ExecuteQuery(poll);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->rows.empty());
  auto second = cache.ExecuteQuery(poll);
  ASSERT_TRUE(second.ok());
  // Only the first poll reached the database.
  EXPECT_EQ(db_.queries_executed(), before + 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(PollingCacheTest, SynchronizeDropsAffectedResults) {
  PollingDataCache cache(&db_, 100);
  const std::string poll =
      "SELECT 1 AS hit FROM Mileage WHERE 'Eclipse' = Mileage.model LIMIT 1";
  EXPECT_TRUE(cache.ExecuteQuery(poll)->rows.empty());

  // The Eclipse appears; without synchronization the cached empty result
  // would hide it.
  db_.ExecuteSql("INSERT INTO Mileage VALUES ('Eclipse', 30)").value();
  db::DeltaSet deltas = db::DeltaSet::FromRecords(
      db_.update_log().ReadSince(0));
  EXPECT_EQ(cache.Synchronize(deltas), 1u);
  EXPECT_FALSE(cache.ExecuteQuery(poll)->rows.empty());
}

TEST_F(PollingCacheTest, RejectsUpdatesAndBadSql) {
  PollingDataCache cache(&db_, 100);
  EXPECT_TRUE(cache.ExecuteUpdate("DELETE FROM Mileage").status()
                  .IsNotSupported());
  EXPECT_FALSE(cache.ExecuteQuery("not sql").ok());
}

TEST_F(PollingCacheTest, InvalidatorUsesInternalCache) {
  ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                  "Car", {{"maker", db::ColumnType::kString},
                                          {"model", db::ColumnType::kString},
                                          {"price", db::ColumnType::kInt}}))
                  .ok());
  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.polling_cache_capacity = 100;
  Invalidator inv(&db_, &map, &clock_, options);
  ASSERT_NE(inv.polling_cache(), nullptr);

  map.Add(
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 20000",
      "shop/p?##", "/r", 0);

  // Two cycles with the same non-matching insert pattern: the second
  // cycle's poll is answered by the internal cache (Car deltas do not
  // invalidate a poll over Mileage).
  db_.ExecuteSql("INSERT INTO Car VALUES ('F', 'Focus', 100)").value();
  inv.RunCycle().value();
  db_.ExecuteSql("INSERT INTO Car VALUES ('F2', 'Focus', 200)").value();
  inv.RunCycle().value();
  EXPECT_EQ(inv.stats().polls_issued, 2u);
  EXPECT_GE(inv.polling_cache()->stats().hits, 1u);

  // A Mileage update invalidates the cached poll result; correctness is
  // preserved: the page is ejected once Focus gains a join partner.
  db_.ExecuteSql("INSERT INTO Mileage VALUES ('Focus', 33)").value();
  auto report = inv.RunCycle().value();
  EXPECT_EQ(report.pages_invalidated, 1u);
}

TEST_F(PollingCacheTest, ExternalConnectionTakesPrecedence) {
  ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                  "Car", {{"maker", db::ColumnType::kString},
                                          {"model", db::ColumnType::kString},
                                          {"price", db::ColumnType::kInt}}))
                  .ok());
  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.polling_cache_capacity = 100;
  Invalidator inv(&db_, &map, &clock_, options);

  PollingDataCache external(&db_, 10);
  inv.SetPollingConnection(&external);
  map.Add(
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 20000",
      "shop/p?##", "/r", 0);
  db_.ExecuteSql("INSERT INTO Car VALUES ('F', 'Focus', 100)").value();
  inv.RunCycle().value();
  // The external connection served the poll, not the internal cache.
  EXPECT_EQ(external.stats().lookups, 1u);
  EXPECT_EQ(inv.polling_cache()->stats().lookups, 0u);
}

}  // namespace
}  // namespace cacheportal::invalidator
