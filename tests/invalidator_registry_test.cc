#include <gtest/gtest.h>

#include "invalidator/info_manager.h"
#include "invalidator/policy.h"
#include "invalidator/registry.h"
#include "invalidator/scheduler.h"
#include "sql/parser.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

// ---------------------------------------------------------------------
// QueryTypeRegistry
// ---------------------------------------------------------------------

TEST(RegistryTest, OfflineTypeRegistration) {
  QueryTypeRegistry registry;
  auto id = registry.RegisterType("by-price",
                                  "SELECT * FROM Car WHERE price < $1");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const QueryType* type = registry.FindType(*id);
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->name, "by-price");
  EXPECT_TRUE(type->cacheable);
  EXPECT_EQ(registry.NumTypes(), 1u);
}

TEST(RegistryTest, InstanceDiscoveryCreatesType) {
  QueryTypeRegistry registry;
  auto instance =
      registry.RegisterInstance("SELECT * FROM Car WHERE price < 20000");
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(registry.NumTypes(), 1u);
  EXPECT_EQ(registry.NumInstances(), 1u);
  const QueryType* type = registry.FindType((*instance)->type_id);
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->stats.instances_seen, 1u);
}

TEST(RegistryTest, InstancesOfSameTypeGrouped) {
  QueryTypeRegistry registry;
  auto a = registry.RegisterInstance("SELECT * FROM Car WHERE price < 1");
  auto b = registry.RegisterInstance("SELECT * FROM Car WHERE price < 2");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->type_id, (*b)->type_id);
  EXPECT_EQ(registry.NumTypes(), 1u);
  EXPECT_EQ(registry.InstancesOfType((*a)->type_id).size(), 2u);
}

TEST(RegistryTest, OfflineTypeMatchesDiscoveredInstances) {
  QueryTypeRegistry registry;
  auto id = registry.RegisterType("by-price",
                                  "SELECT * FROM Car WHERE price < $1");
  ASSERT_TRUE(id.ok());
  auto instance =
      registry.RegisterInstance("SELECT * FROM Car WHERE price < 20000");
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ((*instance)->type_id, *id);
  EXPECT_EQ(registry.NumTypes(), 1u);
  EXPECT_EQ(registry.FindType(*id)->name, "by-price");
}

TEST(RegistryTest, ReregisteringInstanceIsIdempotent) {
  QueryTypeRegistry registry;
  const std::string sql = "SELECT * FROM Car WHERE price < 1";
  registry.RegisterInstance(sql).value();
  registry.RegisterInstance(sql).value();
  EXPECT_EQ(registry.NumInstances(), 1u);
  // instances_seen counts only new registrations.
  auto instance = registry.FindInstance(sql);
  EXPECT_EQ(registry.FindType(instance->type_id)->stats.instances_seen, 1u);
}

TEST(RegistryTest, UnregisterInstance) {
  QueryTypeRegistry registry;
  const std::string sql = "SELECT * FROM Car WHERE price < 1";
  registry.RegisterInstance(sql).value();
  registry.UnregisterInstance(sql);
  EXPECT_EQ(registry.NumInstances(), 0u);
  EXPECT_EQ(registry.FindInstance(sql), nullptr);
  // The type survives (statistics are long-lived).
  EXPECT_EQ(registry.NumTypes(), 1u);
}

TEST(RegistryTest, BadSqlRejected) {
  QueryTypeRegistry registry;
  EXPECT_FALSE(registry.RegisterInstance("not sql at all").ok());
  EXPECT_FALSE(registry.RegisterType("t", "DELETE FROM Car").ok());
}

TEST(RegistryTest, StatsInvalidationRatio) {
  QueryTypeStats stats;
  EXPECT_EQ(stats.InvalidationRatio(), 0.0);
  stats.checks = 10;
  stats.affected = 4;
  EXPECT_DOUBLE_EQ(stats.InvalidationRatio(), 0.4);
  stats.total_invalidation_time = 1000;
  EXPECT_EQ(stats.AvgInvalidationTime(), 100);
}

// ---------------------------------------------------------------------
// PolicyEngine
// ---------------------------------------------------------------------

QueryType TypeWithStats(uint64_t checks, uint64_t affected) {
  QueryType type;
  type.name = "t";
  type.stats.checks = checks;
  type.stats.affected = affected;
  return type;
}

TEST(PolicyTest, DefaultsToCacheable) {
  PolicyEngine policy;
  EXPECT_TRUE(policy.IsQueryTypeCacheable(TypeWithStats(100, 100)));
  EXPECT_TRUE(policy.IsServletCacheable("anything"));
}

TEST(PolicyTest, HardRuleWins) {
  PolicyEngine policy;
  policy.AddRule({PolicyRule::Kind::kQueryBased, "t", false});
  EXPECT_FALSE(policy.IsQueryTypeCacheable(TypeWithStats(0, 0)));

  policy.AddRule({PolicyRule::Kind::kRequestBased, "servlet-x", false});
  EXPECT_FALSE(policy.IsServletCacheable("servlet-x"));
  EXPECT_TRUE(policy.IsServletCacheable("servlet-y"));
}

TEST(PolicyTest, InvalidationRatioThreshold) {
  PolicyEngine policy;
  PolicyThresholds thresholds;
  thresholds.max_invalidation_ratio = 0.5;
  thresholds.min_checks = 10;
  policy.SetThresholds(thresholds);

  // Below min_checks: always cacheable.
  EXPECT_TRUE(policy.IsQueryTypeCacheable(TypeWithStats(5, 5)));
  // Above threshold.
  EXPECT_FALSE(policy.IsQueryTypeCacheable(TypeWithStats(100, 80)));
  // Below threshold.
  EXPECT_TRUE(policy.IsQueryTypeCacheable(TypeWithStats(100, 20)));
}

TEST(PolicyTest, ProcessingTimeThreshold) {
  PolicyEngine policy;
  PolicyThresholds thresholds;
  thresholds.max_processing_time = 100;
  thresholds.min_checks = 1;
  policy.SetThresholds(thresholds);
  QueryType slow = TypeWithStats(10, 0);
  slow.stats.total_invalidation_time = 10000;  // Avg 1000 > 100.
  EXPECT_FALSE(policy.IsQueryTypeCacheable(slow));
  QueryType fast = TypeWithStats(10, 0);
  fast.stats.total_invalidation_time = 100;  // Avg 10.
  EXPECT_TRUE(policy.IsQueryTypeCacheable(fast));
}

// ---------------------------------------------------------------------
// InvalidationScheduler
// ---------------------------------------------------------------------

PollingTask Task(const std::string& sql, Micros deadline, size_t pages) {
  PollingTask task;
  task.instance_sql = sql;
  task.deadline = deadline;
  task.affected_pages = pages;
  return task;
}

TEST(SchedulerTest, UnlimitedBudgetPollsEverything) {
  InvalidationScheduler scheduler(0);
  std::vector<PollingTask> tasks;
  tasks.push_back(Task("a", 10, 1));
  tasks.push_back(Task("b", 5, 1));
  auto schedule = scheduler.Build(std::move(tasks));
  EXPECT_EQ(schedule.to_poll.size(), 2u);
  EXPECT_TRUE(schedule.conservative.empty());
  // Earliest deadline first.
  EXPECT_EQ(schedule.to_poll[0].instance_sql, "b");
}

TEST(SchedulerTest, BudgetOverflowGoesConservative) {
  InvalidationScheduler scheduler(2);
  std::vector<PollingTask> tasks;
  tasks.push_back(Task("a", 10, 1));
  tasks.push_back(Task("b", 10, 9));  // More pages at stake: prioritized.
  tasks.push_back(Task("c", 10, 5));
  auto schedule = scheduler.Build(std::move(tasks));
  ASSERT_EQ(schedule.to_poll.size(), 2u);
  EXPECT_EQ(schedule.to_poll[0].instance_sql, "b");
  EXPECT_EQ(schedule.to_poll[1].instance_sql, "c");
  ASSERT_EQ(schedule.conservative.size(), 1u);
  EXPECT_EQ(schedule.conservative[0].instance_sql, "a");
}

// ---------------------------------------------------------------------
// InformationManager (join indexes)
// ---------------------------------------------------------------------

class InfoManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable(db::TableSchema(
                            "Mileage", {{"model", db::ColumnType::kString},
                                        {"EPA", db::ColumnType::kInt}}))
            .ok());
    db_.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 28)").value();
    db_.ExecuteSql("INSERT INTO Mileage VALUES ('Civic', 36)").value();
  }

  std::unique_ptr<sql::SelectStatement> Poll(const std::string& sql) {
    return sql::Parser::ParseSelect(sql).value();
  }

  db::Database db_;
};

TEST_F(InfoManagerTest, IndexBootstrapsFromTable) {
  InformationManager info(&db_);
  ASSERT_TRUE(info.CreateJoinIndex("Mileage", "model").ok());
  EXPECT_TRUE(info.HasIndex("mileage", "MODEL"));  // Case-insensitive.

  auto answer = info.AnswerPoll(
      *Poll("SELECT 1 FROM Mileage WHERE 'Avalon' = Mileage.model"));
  ASSERT_TRUE(answer.has_value());
  EXPECT_TRUE(*answer);

  answer = info.AnswerPoll(
      *Poll("SELECT 1 FROM Mileage WHERE 'Eclipse' = Mileage.model"));
  ASSERT_TRUE(answer.has_value());
  EXPECT_FALSE(*answer);
}

TEST_F(InfoManagerTest, IndexTracksDeltas) {
  InformationManager info(&db_);
  ASSERT_TRUE(info.CreateJoinIndex("Mileage", "model").ok());

  db::DeltaSet deltas;
  db::UpdateRecord ins;
  ins.table = "Mileage";
  ins.op = db::UpdateOp::kInsert;
  ins.row = {Value::String("Eclipse"), Value::Int(30)};
  deltas.Add(ins);
  db::UpdateRecord del;
  del.table = "Mileage";
  del.op = db::UpdateOp::kDelete;
  del.row = {Value::String("Avalon"), Value::Int(28)};
  deltas.Add(del);
  info.ApplyDeltas(deltas);

  EXPECT_TRUE(*info.AnswerPoll(
      *Poll("SELECT 1 FROM Mileage WHERE 'Eclipse' = Mileage.model")));
  EXPECT_FALSE(*info.AnswerPoll(
      *Poll("SELECT 1 FROM Mileage WHERE 'Avalon' = Mileage.model")));
}

TEST_F(InfoManagerTest, DuplicateValuesNeedAllRemovals) {
  InformationManager info(&db_);
  ASSERT_TRUE(info.CreateJoinIndex("Mileage", "model").ok());
  // Add a second 'Civic' row, then delete one: index must still contain it.
  db::DeltaSet add;
  db::UpdateRecord ins;
  ins.table = "Mileage";
  ins.op = db::UpdateOp::kInsert;
  ins.row = {Value::String("Civic"), Value::Int(40)};
  add.Add(ins);
  info.ApplyDeltas(add);

  db::DeltaSet remove;
  db::UpdateRecord del;
  del.table = "Mileage";
  del.op = db::UpdateOp::kDelete;
  del.row = {Value::String("Civic"), Value::Int(36)};
  remove.Add(del);
  info.ApplyDeltas(remove);

  EXPECT_TRUE(*info.AnswerPoll(
      *Poll("SELECT 1 FROM Mileage WHERE 'Civic' = Mileage.model")));
}

TEST_F(InfoManagerTest, DisjunctionAnswered) {
  InformationManager info(&db_);
  ASSERT_TRUE(info.CreateJoinIndex("Mileage", "model").ok());
  auto answer = info.AnswerPoll(*Poll(
      "SELECT 1 FROM Mileage WHERE 'X' = Mileage.model OR 'Civic' = "
      "Mileage.model"));
  ASSERT_TRUE(answer.has_value());
  EXPECT_TRUE(*answer);
}

TEST_F(InfoManagerTest, UnansweredCases) {
  InformationManager info(&db_);
  ASSERT_TRUE(info.CreateJoinIndex("Mileage", "model").ok());
  // Conjunction: unsound to answer from a value index.
  EXPECT_FALSE(info.AnswerPoll(*Poll("SELECT 1 FROM Mileage WHERE 'Civic' = "
                                     "Mileage.model AND EPA > 30"))
                   .has_value());
  // Non-equality predicate.
  EXPECT_FALSE(
      info.AnswerPoll(*Poll("SELECT 1 FROM Mileage WHERE EPA > 30"))
          .has_value());
  // Unindexed column.
  EXPECT_FALSE(
      info.AnswerPoll(*Poll("SELECT 1 FROM Mileage WHERE 30 = EPA"))
          .has_value());
}

TEST_F(InfoManagerTest, CreateErrors) {
  InformationManager info(&db_);
  EXPECT_TRUE(info.CreateJoinIndex("Nope", "x").IsNotFound());
  EXPECT_TRUE(info.CreateJoinIndex("Mileage", "nope").IsNotFound());
  ASSERT_TRUE(info.CreateJoinIndex("Mileage", "model").ok());
  EXPECT_TRUE(info.CreateJoinIndex("Mileage", "model").IsAlreadyExists());
}

// ---------------------------------------------------------------------
// Interned instance ids and stable iteration
// ---------------------------------------------------------------------

TEST(RegistryTest, InstanceIdsAreInternedAndFindable) {
  QueryTypeRegistry registry;
  auto a = registry.RegisterInstance("SELECT * FROM Car WHERE price < 1");
  auto b = registry.RegisterInstance("SELECT * FROM Car WHERE price < 2");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->instance_id, (*b)->instance_id);
  const QueryInstance* by_id = registry.FindInstanceById((*a)->instance_id);
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(by_id->sql, "SELECT * FROM Car WHERE price < 1");
  EXPECT_EQ(registry.FindInstanceById(99999), nullptr);
  // Re-registering live SQL returns the same interned instance.
  auto again = registry.RegisterInstance("SELECT * FROM Car WHERE price < 1");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->instance_id, (*a)->instance_id);
}

TEST(RegistryTest, UnregisterFreesIdAndReRegisterMintsFreshOne) {
  QueryTypeRegistry registry;
  auto a = registry.RegisterInstance("SELECT * FROM Car WHERE price < 1");
  ASSERT_TRUE(a.ok());
  uint64_t old_id = (*a)->instance_id;
  registry.UnregisterInstance("SELECT * FROM Car WHERE price < 1");
  EXPECT_EQ(registry.FindInstanceById(old_id), nullptr);
  auto again = registry.RegisterInstance("SELECT * FROM Car WHERE price < 1");
  ASSERT_TRUE(again.ok());
  EXPECT_NE((*again)->instance_id, old_id);
}

TEST(RegistryTest, ForEachIterationIsStableAndOrdered) {
  QueryTypeRegistry registry;
  // Register in shuffled SQL order; iteration must come back sorted by
  // SQL text within a type regardless of registration order.
  ASSERT_TRUE(registry.RegisterInstance("SELECT * FROM Car WHERE price < 3")
                  .ok());
  ASSERT_TRUE(registry.RegisterInstance("SELECT * FROM Car WHERE price < 1")
                  .ok());
  ASSERT_TRUE(registry.RegisterInstance("SELECT * FROM Car WHERE price < 2")
                  .ok());
  uint64_t type_id = 0;
  size_t types = 0;
  registry.ForEachType([&](const QueryType& type) {
    type_id = type.type_id;
    ++types;
  });
  EXPECT_EQ(types, 1u);
  std::vector<std::string> seen;
  registry.ForEachInstanceOfType(type_id, [&](const QueryInstance& instance) {
    seen.push_back(instance.sql);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "SELECT * FROM Car WHERE price < 1");
  EXPECT_EQ(seen[1], "SELECT * FROM Car WHERE price < 2");
  EXPECT_EQ(seen[2], "SELECT * FROM Car WHERE price < 3");
  EXPECT_EQ(registry.NumInstancesOfType(type_id), 3u);
  EXPECT_EQ(registry.NumInstancesOfType(type_id + 1), 0u);
}

}  // namespace
}  // namespace cacheportal::invalidator
