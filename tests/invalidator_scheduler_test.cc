#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "invalidator/scheduler.h"
#include "sql/parser.h"

namespace cacheportal::invalidator {
namespace {

PollingTask MakeTask(const std::string& instance_sql, Micros deadline,
                     size_t affected_pages) {
  PollingTask task;
  task.instance_sql = instance_sql;
  task.query = sql::Parser::ParseSelect("SELECT * FROM T").value();
  task.deadline = deadline;
  task.affected_pages = affected_pages;
  return task;
}

std::vector<std::string> InstanceOrder(const std::vector<PollingTask>& tasks) {
  std::vector<std::string> order;
  for (const PollingTask& task : tasks) {
    if (order.empty() || order.back() != task.instance_sql) {
      order.push_back(task.instance_sql);
    }
  }
  return order;
}

TEST(SchedulerTest, UnlimitedBudgetAdmitsEverything) {
  InvalidationScheduler scheduler(0);
  std::vector<PollingTask> tasks;
  tasks.push_back(MakeTask("A", 10, 1));
  tasks.push_back(MakeTask("B", 20, 1));
  tasks.push_back(MakeTask("A", 10, 1));
  auto schedule = scheduler.Build(std::move(tasks));
  EXPECT_EQ(schedule.to_poll.size(), 3u);
  EXPECT_TRUE(schedule.conservative.empty());
}

/// The unit of scheduling is the instance: admitting two of an
/// instance's three polls would waste them (the instance is invalidated
/// conservatively anyway when its third poll is condemned), so the
/// scheduler must never split an instance across the budget line.
TEST(SchedulerTest, NeverSplitsAnInstanceAcrossTheBudget) {
  InvalidationScheduler scheduler(3);
  std::vector<PollingTask> tasks;
  tasks.push_back(MakeTask("A", 10, 5));
  tasks.push_back(MakeTask("A", 10, 5));
  tasks.push_back(MakeTask("B", 20, 5));
  tasks.push_back(MakeTask("B", 20, 5));
  auto schedule = scheduler.Build(std::move(tasks));

  // A (earlier deadline) fits whole; B's pair would blow the budget, so
  // B is condemned whole — NOT one poll admitted and one condemned.
  ASSERT_EQ(schedule.to_poll.size(), 2u);
  EXPECT_EQ(schedule.to_poll[0].instance_sql, "A");
  EXPECT_EQ(schedule.to_poll[1].instance_sql, "A");
  ASSERT_EQ(schedule.conservative.size(), 1u);
  EXPECT_EQ(schedule.conservative[0].instance_sql, "B");
}

/// A condemned instance appears exactly once in `conservative`, however
/// many polls it had: the cycle charges one conservative invalidation
/// per instance, not per poll.
TEST(SchedulerTest, CondemnedInstanceAppearsOnce) {
  InvalidationScheduler scheduler(1);
  std::vector<PollingTask> tasks;
  tasks.push_back(MakeTask("A", 10, 1));
  tasks.push_back(MakeTask("A", 10, 1));
  tasks.push_back(MakeTask("A", 10, 1));
  auto schedule = scheduler.Build(std::move(tasks));
  EXPECT_TRUE(schedule.to_poll.empty());
  ASSERT_EQ(schedule.conservative.size(), 1u);
  EXPECT_EQ(schedule.conservative[0].instance_sql, "A");
}

/// First-fit: a group too large for the remaining budget is condemned,
/// but later smaller groups still fill the remainder — polling them is
/// strictly better than leaving budget idle.
TEST(SchedulerTest, LaterSmallerGroupFillsRemainingBudget) {
  InvalidationScheduler scheduler(3);
  std::vector<PollingTask> tasks;
  tasks.push_back(MakeTask("A", 10, 9));
  tasks.push_back(MakeTask("A", 10, 9));
  tasks.push_back(MakeTask("B", 20, 9));
  tasks.push_back(MakeTask("B", 20, 9));
  tasks.push_back(MakeTask("C", 30, 9));
  auto schedule = scheduler.Build(std::move(tasks));

  EXPECT_EQ(InstanceOrder(schedule.to_poll),
            (std::vector<std::string>{"A", "C"}));
  EXPECT_EQ(schedule.to_poll.size(), 3u);
  ASSERT_EQ(schedule.conservative.size(), 1u);
  EXPECT_EQ(schedule.conservative[0].instance_sql, "B");
}

TEST(SchedulerTest, OrdersByDeadlineThenPagesAtStake) {
  InvalidationScheduler scheduler(0);
  std::vector<PollingTask> tasks;
  tasks.push_back(MakeTask("late-small", 30, 1));
  tasks.push_back(MakeTask("early", 10, 1));
  tasks.push_back(MakeTask("late-big", 30, 50));
  auto schedule = scheduler.Build(std::move(tasks));
  EXPECT_EQ(InstanceOrder(schedule.to_poll),
            (std::vector<std::string>{"early", "late-big", "late-small"}));
}

/// An instance's polls arrive contiguously in to_poll even when the
/// input interleaves instances — the cycle's poll executor groups by
/// adjacency.
TEST(SchedulerTest, GroupsInstancePollsContiguously) {
  InvalidationScheduler scheduler(0);
  std::vector<PollingTask> tasks;
  tasks.push_back(MakeTask("A", 10, 1));
  tasks.push_back(MakeTask("B", 10, 1));
  tasks.push_back(MakeTask("A", 10, 1));
  tasks.push_back(MakeTask("B", 10, 1));
  auto schedule = scheduler.Build(std::move(tasks));
  ASSERT_EQ(schedule.to_poll.size(), 4u);
  std::vector<std::string> order = InstanceOrder(schedule.to_poll);
  // Whatever the tie-break order, each instance forms one contiguous run.
  std::set<std::string> distinct(order.begin(), order.end());
  EXPECT_EQ(order.size(), distinct.size());
}

}  // namespace
}  // namespace cacheportal::invalidator
