#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "core/cache_portal.h"
#include "core/reliable_delivery.h"
#include "db/database.h"
#include "invalidator/durability.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

/// The site the invalidator process attaches to. It lives OUTSIDE the
/// simulated filesystem: a crash kills the invalidator, not the
/// database, exactly like production.
struct Site {
  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;

  Site() : db(&clock) {
    EXPECT_TRUE(
        db.CreateTable(db::TableSchema(
                           "Car", {{"maker", db::ColumnType::kString},
                                   {"model", db::ColumnType::kString},
                                   {"price", db::ColumnType::kInt}}))
            .ok());
    db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)").value();
    db.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Camry', 26000)").value();
  }
};

struct IncarnationOptions {
  size_t workers = 1;
  size_t shards = 2;
  bool sync_every_commit = true;
  uint64_t snapshot_every_cycles = 3;
};

/// One process lifetime: an Invalidator plus its DurabilityCoordinator
/// over the (shared, crashable) SimEnv directory "meta".
struct Incarnation {
  RecordingSink sink;
  std::unique_ptr<Invalidator> inv;
  std::unique_ptr<DurabilityCoordinator> coord;

  Incarnation(Site* site, SimEnv* env, IncarnationOptions opts = {}) {
    InvalidatorOptions iopts;
    iopts.worker_threads = opts.workers;
    iopts.metadata_shards = opts.shards;
    inv = std::make_unique<Invalidator>(&site->db, &site->map, &site->clock,
                                        iopts);
    inv->AddSink(&sink);
    DurabilityOptions dopts;
    dopts.dir = "meta";
    dopts.env = env;
    dopts.sync_every_commit = opts.sync_every_commit;
    dopts.snapshot_every_cycles = opts.snapshot_every_cycles;
    coord = std::make_unique<DurabilityCoordinator>(inv.get(), dopts);
  }
};

/// Drops the coordinator's "  storage: ..." line (its counters honestly
/// differ between a process that recovered and one that never died).
std::string StripStorage(const std::string& report) {
  std::string out;
  for (std::string_view line : StrSplit(report, '\n')) {
    if (line.rfind("  storage:", 0) == 0) continue;
    out.append(line);
    out.push_back('\n');
  }
  if (!out.empty() && report.back() != '\n') out.pop_back();
  return out;
}

constexpr int kRounds = 6;

/// Deterministic per-round site activity. Every insert under 20000
/// touches the "cheap" page; Honda rows touch the "honda" page.
void DoUpdates(Site* site, int round) {
  const char* makers[] = {"Toyota", "Honda", "Ford", "Kia"};
  site->db
      .ExecuteSql(StrCat("INSERT INTO Car VALUES ('", makers[round % 4],
                         "', 'M", round, "', ", 4000 + round * 3100, ")"))
      .value();
  if (round % 2 == 1) {
    site->db
        .ExecuteSql(
            StrCat("DELETE FROM Car WHERE price > ", 26000 - round * 1000))
        .value();
  }
}

/// (Re-)adds the QI/URL rows — ejected pages re-enter the cache between
/// cycles, as a live site's request traffic would re-populate them.
void DoMapAdds(Site* site) {
  site->map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##",
                "/r", 0);
  site->map.Add("SELECT * FROM Car WHERE maker = 'Honda'", "shop/honda?##",
                "/r", 0);
}

/// Runs rounds [start, kRounds). Returns the index of the round whose
/// cycle failed (the injected crash), or kRounds when all committed.
/// `skip_first_updates` resumes a crashed round whose site updates
/// already committed — the database survived; only the process died.
int RunRounds(Site* site, Incarnation* in, int start, bool skip_first_updates,
              std::vector<std::string>* reports) {
  for (int r = start; r < kRounds; ++r) {
    if (!(skip_first_updates && r == start)) DoUpdates(site, r);
    DoMapAdds(site);
    if (!in->coord->RunCycle().ok()) return r;
    if (reports != nullptr) {
      reports->push_back(StripStorage(in->inv->StatsReport()));
    }
  }
  return kRounds;
}

TEST(InvalidatorStorageTest, CrashRecoveryReplaysOutageUpdates) {
  Site site;
  SimEnv env;
  {
    Incarnation in1(&site, &env);
    ASSERT_TRUE(in1.coord->Open().ok());
    DoMapAdds(&site);
    in1.coord->RunCycle().value();  // Registers; journals; commits.
  }
  env.Recover();  // Power cut after the process died.
  // An update commits during the outage.
  site.db.ExecuteSql("INSERT INTO Car VALUES ('Kia', 'Rio', 9000)").value();

  Incarnation in2(&site, &env);
  ASSERT_TRUE(in2.coord->Open().ok());
  in2.coord->FinishRecovery();
  // The durable cursor is behind the log tail: the outage-time insert is
  // still unconsumed (a fresh, non-recovering invalidator would attach
  // at the tail and silently miss it).
  EXPECT_LT(in2.inv->consumed_update_seq(), site.db.update_log().LastSeq());
  EXPECT_EQ(in2.inv->metadata().NumInstances(), 2u);  // Registry rebuilt.
  in2.coord->RunCycle().value();
  EXPECT_TRUE(in2.sink.invalidated.contains("shop/cheap?##"));
}

// A real process restart rebuilds the sniffer's QI/URL map from live
// traffic: row ids restart at 1, BELOW the map cursors the dead process
// persisted. Recovery must clamp the cursors to the live map's tail, or
// every re-sniffed row would be silently skipped and updates would never
// eject the re-cached pages again.
TEST(InvalidatorStorageTest, RebuiltMapAfterRestartStillInvalidates) {
  Site site;
  SimEnv env;
  {
    Incarnation in1(&site, &env);
    ASSERT_TRUE(in1.coord->Open().ok());
    DoMapAdds(&site);
    in1.coord->RunCycle().value();  // Cursors advance past the map rows.
  }
  env.Recover();

  // The restarted process sees an EMPTY map (unlike Site's, which models
  // the map surviving). Ids restart from 1 as traffic re-populates it.
  sniffer::QiUrlMap rebuilt_map;
  RecordingSink sink;
  InvalidatorOptions iopts;
  iopts.metadata_shards = 2;
  Invalidator inv(&site.db, &rebuilt_map, &site.clock, iopts);
  inv.AddSink(&sink);
  DurabilityOptions dopts;
  dopts.dir = "meta";
  dopts.env = &env;
  DurabilityCoordinator coord(&inv, dopts);
  ASSERT_TRUE(coord.Open().ok());
  coord.FinishRecovery();
  EXPECT_EQ(inv.metadata().NumInstances(), 2u);  // Registry replayed.

  rebuilt_map.Add("SELECT * FROM Car WHERE price < 20000", "shop/cheap?##",
                  "/r", 0);
  site.db.ExecuteSql("INSERT INTO Car VALUES ('Kia', 'Rio', 9000)").value();
  coord.RunCycle().value();
  EXPECT_TRUE(sink.invalidated.contains("shop/cheap?##"));
}

TEST(InvalidatorStorageTest, CleanRestartIsInvisible) {
  Site site;
  SimEnv env;
  std::string before;
  {
    Incarnation in1(&site, &env);
    ASSERT_TRUE(in1.coord->Open().ok());
    DoMapAdds(&site);
    in1.coord->RunCycle().value();
    DoUpdates(&site, 0);
    DoMapAdds(&site);
    in1.coord->RunCycle().value();
    before = StripStorage(in1.inv->StatsReport());
  }
  Incarnation in2(&site, &env);
  ASSERT_TRUE(in2.coord->Open().ok());
  in2.coord->FinishRecovery();
  // Per-type statistics, lifetime counters, cursor positions — the whole
  // report minus the storage line is byte-identical.
  EXPECT_EQ(StripStorage(in2.inv->StatsReport()), before);
  EXPECT_EQ(in2.inv->consumed_update_seq(), site.db.update_log().LastSeq());
}

TEST(InvalidatorStorageTest, SnapshotBoundsReplayAfterRestart) {
  Site site;
  SimEnv env;
  IncarnationOptions opts;
  opts.snapshot_every_cycles = 0;  // Only explicit snapshots.
  uint64_t total_appended = 0;
  {
    Incarnation in1(&site, &env, opts);
    ASSERT_TRUE(in1.coord->Open().ok());
    DoMapAdds(&site);
    in1.coord->RunCycle().value();
    for (int r = 0; r < 3; ++r) {
      DoUpdates(&site, r);
      DoMapAdds(&site);
      in1.coord->RunCycle().value();
    }
    ASSERT_TRUE(in1.coord->Snapshot().ok());
    DoUpdates(&site, 3);
    DoMapAdds(&site);
    in1.coord->RunCycle().value();  // One post-snapshot commit.
    total_appended = in1.coord->store().stats().records_appended;
  }
  env.Recover();

  Incarnation in2(&site, &env, opts);
  ASSERT_TRUE(in2.coord->Open().ok());
  in2.coord->FinishRecovery();
  // O(delta): replay reads only the post-snapshot suffix (one commit
  // plus that round's registration churn) — not the whole history the
  // first process journaled.
  EXPECT_LT(in2.coord->store().stats().records_recovered, total_appended);
  EXPECT_LE(in2.coord->store().stats().records_recovered, 4u);
  EXPECT_NE(in2.coord->Report().find("replayed-commits=1"),
            std::string::npos);
  // And the recovered process still invalidates correctly.
  site.db.ExecuteSql("INSERT INTO Car VALUES ('Kia', 'Rio', 7000)").value();
  DoMapAdds(&site);
  in2.coord->RunCycle().value();
  EXPECT_TRUE(in2.sink.invalidated.contains("shop/cheap?##"));
}

/// Satellite: UpdateLog::TrimThrough coordinates with durability — the
/// log may drop a prefix only once the on-disk state durably covers it.
TEST(InvalidatorStorageTest, TrimThroughDurablePositionSurvivesCrash) {
  Site site;
  SimEnv env;
  IncarnationOptions opts;
  opts.sync_every_commit = false;  // Commits buffer; durable position lags.
  opts.snapshot_every_cycles = 0;
  Incarnation in1(&site, &env, opts);
  ASSERT_TRUE(in1.coord->Open().ok());
  // At Open the durable position is the attach point: records at or
  // below it predate deployment and are never consumed, even across a
  // crash+recover, so they are already trimmable.
  const uint64_t attach_seq = in1.coord->durable_update_seq();
  EXPECT_EQ(attach_seq, site.db.update_log().LastSeq());
  DoMapAdds(&site);
  in1.coord->RunCycle().value();
  DoUpdates(&site, 0);
  in1.coord->RunCycle().value();
  // Nothing synced since: the durable position has not moved past the
  // attach point, so the coordinated trim spares every deployment-era
  // record the post-crash replay still needs.
  EXPECT_EQ(in1.coord->durable_update_seq(), attach_seq);
  EXPECT_GT(in1.inv->consumed_update_seq(), attach_seq);
  site.db.update_log().TrimThrough(in1.coord->durable_update_seq());
  EXPECT_GT(site.db.update_log().size(), 0u);

  // A snapshot makes the consumed position durable; NOW the prefix is
  // droppable — and recovery must never need it back.
  ASSERT_TRUE(in1.coord->Snapshot().ok());
  EXPECT_EQ(in1.coord->durable_update_seq(), in1.inv->consumed_update_seq());
  EXPECT_GT(site.db.update_log().TrimThrough(in1.coord->durable_update_seq()),
            0u);

  env.Recover();
  Incarnation in2(&site, &env, opts);
  ASSERT_TRUE(in2.coord->Open().ok());
  in2.coord->FinishRecovery();
  EXPECT_EQ(in2.inv->consumed_update_seq(), in1.inv->consumed_update_seq());
  DoUpdates(&site, 1);  // Honda M1 at 7100: both pages go stale.
  DoMapAdds(&site);
  in2.coord->RunCycle().value();
  EXPECT_TRUE(in2.sink.invalidated.contains("shop/cheap?##"));
  EXPECT_TRUE(in2.sink.invalidated.contains("shop/honda?##"));
}

/// Satellite regression: the record whose seq equals durable_update_seq()
/// EXACTLY must land on the same side of every boundary. TrimThrough
/// drops seq <= durable, replay re-reads seq > durable, and a restarted
/// process attaches AT durable — so the boundary record is consumed
/// exactly once (before the snapshot), is trimmable immediately after
/// it, and is never wanted back by recovery. An off-by-one in any of
/// the three (trim keeping it, replay re-consuming it, or restart
/// attaching one past it) would either double-apply or lose it; this
/// test pins all three against a no-crash oracle.
TEST(InvalidatorStorageTest, BoundaryRecordAtDurableSeqTrimsAndReplaysOnce) {
  Site site;
  SimEnv env;
  IncarnationOptions opts;
  opts.sync_every_commit = false;
  opts.snapshot_every_cycles = 0;  // Durable position moves only on demand.

  // No-crash oracle over the identical workload (its own site + env).
  std::string oracle_report;
  std::set<std::string> oracle_ejects;
  {
    Site osite;
    SimEnv oenv;
    Incarnation oracle(&osite, &oenv, opts);
    ASSERT_TRUE(oracle.coord->Open().ok());
    DoMapAdds(&osite);
    oracle.coord->RunCycle().value();
    DoUpdates(&osite, 0);
    DoMapAdds(&osite);
    oracle.coord->RunCycle().value();
    ASSERT_TRUE(oracle.coord->Snapshot().ok());
    DoUpdates(&osite, 1);
    DoMapAdds(&osite);
    oracle.coord->RunCycle().value();
    oracle_report = StripStorage(oracle.inv->StatsReport());
    oracle_ejects = oracle.sink.invalidated;
  }

  uint64_t boundary = 0;
  {
    Incarnation in1(&site, &env, opts);
    ASSERT_TRUE(in1.coord->Open().ok());
    DoMapAdds(&site);
    in1.coord->RunCycle().value();
    DoUpdates(&site, 0);
    DoMapAdds(&site);
    in1.coord->RunCycle().value();
    ASSERT_TRUE(in1.coord->Snapshot().ok());
    boundary = in1.coord->durable_update_seq();
    // The snapshot pinned the durable position at the log tail: the last
    // consumed record IS the boundary record.
    ASSERT_EQ(boundary, in1.inv->consumed_update_seq());
    ASSERT_EQ(boundary, site.db.update_log().LastSeq());
    // Replay's view and trim's view agree about seq == boundary: replay
    // does not want it back...
    EXPECT_TRUE(site.db.update_log().ReadSince(boundary).empty());
    // ...and trim may drop it (inclusive upper bound).
    EXPECT_GT(site.db.update_log().TrimThrough(boundary), 0u);
    EXPECT_EQ(site.db.update_log().size(), 0u);
    // One record PAST the boundary commits before the crash; a repeated
    // trim at the same position must spare it for the post-crash replay.
    DoUpdates(&site, 1);
    EXPECT_EQ(site.db.update_log().TrimThrough(boundary), 0u);
    ASSERT_GT(site.db.update_log().size(), 0u);
  }
  env.Recover();

  Incarnation in2(&site, &env, opts);
  ASSERT_TRUE(in2.coord->Open().ok());
  in2.coord->FinishRecovery();
  // Restart attaches exactly AT the boundary — not one past it (which
  // would skip the first unconsumed record) and not one before it (which
  // would re-consume the trimmed boundary record, double-counting it).
  EXPECT_EQ(in2.inv->consumed_update_seq(), boundary);
  DoMapAdds(&site);
  in2.coord->RunCycle().value();
  // The post-boundary suffix was applied exactly once: every lifetime
  // counter matches the process that never crashed, and the eject set is
  // identical.
  EXPECT_EQ(StripStorage(in2.inv->StatsReport()), oracle_report);
  EXPECT_EQ(in2.sink.invalidated, oracle_ejects);
}

/// The same contract through the CachePortal facade: with durability
/// configured, automatic truncation stops at the durable position, and
/// Checkpoint() trims only after its snapshot is safely installed.
TEST(InvalidatorStorageTest, CachePortalTrimsOnlyThroughDurablePosition) {
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  SimEnv env;
  core::CachePortalOptions options;
  options.truncate_update_log = true;
  options.durability.dir = "meta";
  options.durability.env = &env;
  options.durability.sync_every_commit = false;
  options.durability.snapshot_every_cycles = 0;
  core::CachePortal portal(&db, &clock, options);
  ASSERT_TRUE(portal.RecoverDurableState().ok());

  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();
  portal.RunCycle().value();
  // The cycle consumed the record but its commit is not yet durable: the
  // post-crash replay still needs it, so truncation spared it.
  EXPECT_EQ(portal.durability()->durable_update_seq(), 0u);
  EXPECT_GE(db.update_log().size(), 1u);

  portal.Checkpoint();  // Installs a snapshot, then trims through it.
  EXPECT_EQ(portal.durability()->durable_update_seq(),
            portal.invalidator().consumed_update_seq());
  EXPECT_EQ(db.update_log().size(), 0u);
}

TEST(InvalidatorStorageTest, PendingDeliverySurvivesCrash) {
  Site site;
  SimEnv env;
  class DownSink : public InvalidationSink {
   public:
    Status SendInvalidation(const http::HttpRequest&,
                            const std::string&) override {
      return Status::Internal("cache unreachable");
    }
  } down;
  core::DeliveryOptions dopts;
  dopts.max_attempts = 50;
  {
    core::ReliableDeliveryQueue queue1(&site.clock, dopts);
    queue1.AddSink(&down, "edge");
    Invalidator inv1(&site.db, &site.map, &site.clock);
    inv1.AddSink(&queue1);
    DurabilityOptions d;
    d.dir = "meta";
    d.env = &env;
    DurabilityCoordinator coord1(&inv1, d);
    ASSERT_TRUE(coord1.Open().ok());
    DoMapAdds(&site);
    coord1.RunCycle().value();
    DoUpdates(&site, 0);  // Eject attempt fails; message stays queued.
    coord1.RunCycle().value();
    ASSERT_GE(queue1.pending(), 1u);
  }
  env.Recover();

  // Restart with a healthy cache behind the same sink name: the queued
  // message came back through the commit delta and delivers.
  RecordingSink healthy;
  core::ReliableDeliveryQueue queue2(&site.clock, dopts);
  queue2.AddSink(&healthy, "edge");
  Invalidator inv2(&site.db, &site.map, &site.clock);
  inv2.AddSink(&queue2);
  DurabilityOptions d;
  d.dir = "meta";
  d.env = &env;
  DurabilityCoordinator coord2(&inv2, d);
  ASSERT_TRUE(coord2.Open().ok());
  coord2.FinishRecovery();
  EXPECT_GE(queue2.pending_for("edge"), 1u);
  queue2.Pump();
  EXPECT_TRUE(healthy.invalidated.contains("shop/cheap?##"));
}

TEST(InvalidatorStorageTest, QuarantinedCorruptionSurfacesInStatsReport) {
  Site site;
  SimEnv env;
  IncarnationOptions opts;
  opts.snapshot_every_cycles = 0;  // Keep segment 1 alive to corrupt.
  {
    Incarnation in1(&site, &env, opts);
    ASSERT_TRUE(in1.coord->Open().ok());
    DoMapAdds(&site);
    in1.coord->RunCycle().value();
    DoUpdates(&site, 0);
    in1.coord->RunCycle().value();
  }
  // Disk rot flips bytes inside the last committed record.
  uint64_t size = env.ReadFile("meta/wal-000001.log")->size();
  ASSERT_TRUE(env.CorruptFile("meta/wal-000001.log", size - 2, "ZZ").ok());
  env.Recover();

  Incarnation in2(&site, &env, opts);
  ASSERT_TRUE(in2.coord->Open().ok());  // Contained, not fatal.
  in2.coord->FinishRecovery();
  EXPECT_GT(in2.coord->store().stats().quarantined_bytes, 0u);
  // The operator sees it in the ordinary stats report.
  std::string report = in2.inv->StatsReport();
  EXPECT_NE(report.find("  storage:"), std::string::npos);
  EXPECT_NE(report.find("last-quarantine="), std::string::npos);
  // And the process still runs and invalidates afterwards.
  DoUpdates(&site, 1);
  DoMapAdds(&site);
  in2.coord->RunCycle().value();
  EXPECT_TRUE(in2.sink.invalidated.contains("shop/cheap?##"));
}

/// The tentpole differential: kill the process at EVERY filesystem crash
/// point the whole workload consults, recover, and require that
///   (a) the recovered report equals the uncrashed run's report at SOME
///       committed-cycle boundary (recovery is cycle-atomic — never a
///       half-applied state), and
///   (b) finishing the workload ejects exactly the pages the uncrashed
///       run ejected (recovery is invisible to correctness).
class StorageDifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(StorageDifferentialTest, CrashAtEveryPointRecoversExactly) {
  IncarnationOptions opts;
  opts.workers = std::get<0>(GetParam());
  opts.shards = std::get<1>(GetParam());
  const uint64_t stride = std::get<2>(GetParam());

  // Uncrashed oracle: eject set + the report at every commit boundary.
  std::vector<std::string> boundary_reports;
  std::set<std::string> oracle_ejects;
  {
    Site site;
    SimEnv env;
    Incarnation oracle(&site, &env, opts);
    ASSERT_TRUE(oracle.coord->Open().ok());
    DoMapAdds(&site);
    oracle.coord->RunCycle().value();
    boundary_reports.push_back(StripStorage(oracle.inv->StatsReport()));
    ASSERT_EQ(RunRounds(&site, &oracle, 0, false, &boundary_reports),
              kRounds);
    oracle_ejects = oracle.sink.invalidated;
  }
  ASSERT_TRUE(oracle_ejects.contains("shop/cheap?##"));
  ASSERT_TRUE(oracle_ejects.contains("shop/honda?##"));

  // Dry run: count the crash points the workload (setup excluded)
  // consults. The workload is deterministic, so the count is exact.
  uint64_t total_points = 0;
  {
    Site site;
    FaultInjector faults(7);
    SimEnv env(&faults);
    Incarnation in(&site, &env, opts);
    ASSERT_TRUE(in.coord->Open().ok());
    DoMapAdds(&site);
    in.coord->RunCycle().value();
    faults.ArmCrash(1u << 30);
    ASSERT_EQ(RunRounds(&site, &in, 0, false, nullptr), kRounds);
    total_points = faults.crash_points_seen();
    faults.DisarmCrash();
  }
  ASSERT_GE(total_points, 40u);

  for (uint64_t k = 0; k < total_points; k += stride) {
    SCOPED_TRACE(StrCat("crash point ", k, " of ", total_points,
                        " (workers=", opts.workers, " shards=", opts.shards,
                        ")"));
    Site site;
    FaultInjector faults(7);
    SimEnv env(&faults);
    auto in1 = std::make_unique<Incarnation>(&site, &env, opts);
    ASSERT_TRUE(in1->coord->Open().ok());
    DoMapAdds(&site);
    in1->coord->RunCycle().value();

    faults.ArmCrash(k);
    int crashed_round = RunRounds(&site, in1.get(), 0, false, nullptr);
    ASSERT_LT(crashed_round, kRounds);
    ASSERT_EQ(faults.crashes_injected(), 1u);
    ASSERT_TRUE(env.crashed());
    std::set<std::string> ejects = in1->sink.invalidated;
    in1.reset();  // The process is gone.
    env.Recover();

    auto in2 = std::make_unique<Incarnation>(&site, &env, opts);
    Status opened = in2->coord->Open();
    ASSERT_TRUE(opened.ok()) << faults.last_crash_point() << ": "
                             << opened.message();
    in2->coord->FinishRecovery();
    std::string recovered = StripStorage(in2->inv->StatsReport());
    EXPECT_NE(std::find(boundary_reports.begin(), boundary_reports.end(),
                        recovered),
              boundary_reports.end())
        << "crash at " << faults.last_crash_point()
        << " recovered to a state that matches no commit boundary:\n"
        << recovered;

    // Finish the workload; the crashed round's site updates already
    // committed (the database did not die), so only its cycle re-runs.
    ASSERT_EQ(RunRounds(&site, in2.get(), crashed_round, true, nullptr),
              kRounds);
    ejects.insert(in2->sink.invalidated.begin(),
                  in2->sink.invalidated.end());
    EXPECT_EQ(ejects, oracle_ejects) << "crash at "
                                     << faults.last_crash_point();
  }
}

// Full sweeps at the corner configurations; strided spot checks on the
// mixed ones (the storage path is identical — only invalidator-internal
// parallelism differs — so corners carry the coverage).
INSTANTIATE_TEST_SUITE_P(
    Sweep, StorageDifferentialTest,
    ::testing::Values(std::make_tuple(size_t{1}, size_t{1}, uint64_t{1}),
                      std::make_tuple(size_t{4}, size_t{4}, uint64_t{1}),
                      std::make_tuple(size_t{1}, size_t{4}, uint64_t{7}),
                      std::make_tuple(size_t{4}, size_t{1}, uint64_t{7})));

}  // namespace
}  // namespace cacheportal::invalidator
