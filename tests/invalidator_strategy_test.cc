#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"
#include "db/delta.h"
#include "invalidator/baseline.h"
#include "invalidator/invalidator.h"
#include "invalidator/stages.h"
#include "invalidator/strategy.h"
#include "sniffer/qiurl_map.h"
#include "sql/parser.h"

namespace cacheportal::invalidator {
namespace {

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

void CreateCarTable(db::Database* db) {
  ASSERT_TRUE(db->CreateTable(db::TableSchema(
                                  "Car", {{"id", db::ColumnType::kInt},
                                          {"maker", db::ColumnType::kString},
                                          {"model", db::ColumnType::kString},
                                          {"price", db::ColumnType::kInt},
                                          {"stock", db::ColumnType::kInt}}))
                  .ok());
}

void CreateMileageTable(db::Database* db) {
  ASSERT_TRUE(
      db->CreateTable(db::TableSchema(
                          "Mileage", {{"model", db::ColumnType::kString},
                                      {"EPA", db::ColumnType::kInt}}))
          .ok());
}

// ---------------------------------------------------------------------------
// Tier assignment corpus: each template lands on the tier DecideTier
// promises for its shape, with the demotion reason recorded (DESIGN.md
// §16). Driven through the real registration path so the assignment is
// the one the pipeline will dispatch on.
// ---------------------------------------------------------------------------

class TierAssignmentTest : public ::testing::Test {
 protected:
  TierAssignmentTest() : db_(&clock_), inv_(&db_, &map_, &clock_) {
    CreateCarTable(&db_);
    CreateMileageTable(&db_);
  }

  TierDecision TierFor(const std::string& sql) {
    EXPECT_TRUE(inv_.RegisterInstance(sql).ok()) << sql;
    const QueryInstance* instance = inv_.metadata().FindInstance(sql);
    EXPECT_NE(instance, nullptr) << sql;
    std::optional<TierDecision> tier =
        inv_.metadata().TierOf(instance->type_id);
    EXPECT_TRUE(tier.has_value()) << sql;
    return tier.value_or(TierDecision{});
  }

  ManualClock clock_;
  db::Database db_;
  sniffer::QiUrlMap map_;
  Invalidator inv_;
};

TEST_F(TierAssignmentTest, SingleTableShapesAreExact) {
  for (const char* sql : {
           "SELECT * FROM Car WHERE price < 20000",
           "SELECT maker, model FROM Car WHERE price IN (9000, 18000)",
           "SELECT model FROM Car WHERE price BETWEEN 5000 AND 20000",
           "SELECT * FROM Car",
           "SELECT maker FROM Car WHERE price > 100 ORDER BY model",
           "SELECT * FROM Car WHERE price = 9000 OR maker = 'Ford'",
       }) {
    TierDecision decision = TierFor(sql);
    EXPECT_EQ(decision.tier, StrategyTier::kExact) << sql;
    EXPECT_TRUE(decision.reason.empty()) << sql << " -> " << decision.reason;
  }
}

TEST_F(TierAssignmentTest, IneligibleShapesDemoteWithNamedReasons) {
  struct Case {
    const char* sql;
    StrategyTier tier;
    const char* reason;
  };
  const Case cases[] = {
      // Multi-table FROM: interpreted analysis residualizes on nearly
      // every delta, so the steady state is polling.
      {"SELECT Car.maker FROM Car, Mileage WHERE Car.model = Mileage.model",
       StrategyTier::kPoll, "multi-table FROM"},
      // Self-join (aliases of one table) is its own blocker: row images
      // of one side say nothing about the other side's bindings.
      {"SELECT a.model FROM Car a, Car b WHERE a.price < b.price",
       StrategyTier::kPoll, "self-join"},
      // LIKE has no row-image evaluator; the matcher cannot anchor it
      // either, so it stays on the interpreted path.
      {"SELECT * FROM Car WHERE maker LIKE 'F%'", StrategyTier::kInterpret,
       "LIKE pattern"},
      // A NULL comparand makes 3VL satisfaction unknowable from images,
      // but the matcher still anchors the equality — compiled tier.
      {"SELECT * FROM Car WHERE maker = NULL", StrategyTier::kCompiledBatch,
       "NULL comparand"},
  };
  for (const Case& c : cases) {
    TierDecision decision = TierFor(c.sql);
    EXPECT_EQ(decision.tier, c.tier) << c.sql;
    EXPECT_EQ(decision.reason, c.reason) << c.sql;
  }
}

TEST_F(TierAssignmentTest, DisabledExactTierDemotesEligibleShapes) {
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTable(&db);
  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  options.exact_strategy = false;
  Invalidator inv(&db, &map, &clock, options);
  const std::string sql = "SELECT * FROM Car WHERE price < 20000";
  ASSERT_TRUE(inv.RegisterInstance(sql).ok());
  const QueryInstance* instance = inv.metadata().FindInstance(sql);
  ASSERT_NE(instance, nullptr);
  std::optional<TierDecision> tier = inv.metadata().TierOf(instance->type_id);
  ASSERT_TRUE(tier.has_value());
  EXPECT_NE(tier->tier, StrategyTier::kExact);
  EXPECT_EQ(tier->reason, "exact tier disabled");
}

// ---------------------------------------------------------------------------
// ExactInstanceAffected units: the row-image rule over hand-built deltas,
// pair semantics included.
// ---------------------------------------------------------------------------

class ExactRuleTest : public ::testing::Test {
 protected:
  ExactRuleTest()
      : schema_("Car", {{"id", db::ColumnType::kInt},
                        {"maker", db::ColumnType::kString},
                        {"model", db::ColumnType::kString},
                        {"price", db::ColumnType::kInt},
                        {"stock", db::ColumnType::kInt}}) {}

  bool Affected(const std::string& sql, const db::TableDelta& delta) {
    Result<std::unique_ptr<sql::SelectStatement>> statement =
        sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(statement.ok()) << sql;
    return ExactInstanceAffected(**statement, schema_, delta);
  }

  static db::Row Car(int64_t id, const std::string& maker,
                     const std::string& model, int64_t price, int64_t stock) {
    return {sql::Value::Int(id), sql::Value::String(maker),
            sql::Value::String(model), sql::Value::Int(price),
            sql::Value::Int(stock)};
  }

  db::TableSchema schema_;
};

TEST_F(ExactRuleTest, UnpairedRowsEjectIffWhereSatisfied) {
  db::TableDelta delta;
  delta.inserts.push_back(Car(1, "Ford", "Focus", 9000, 3));
  EXPECT_TRUE(Affected("SELECT * FROM Car WHERE price < 20000", delta));
  EXPECT_FALSE(Affected("SELECT * FROM Car WHERE price > 20000", delta));
  db::TableDelta deletion;
  deletion.deletes.push_back(Car(1, "Ford", "Focus", 9000, 3));
  EXPECT_TRUE(Affected("SELECT * FROM Car WHERE price < 20000", deletion));
  EXPECT_FALSE(Affected("SELECT * FROM Car WHERE price > 20000", deletion));
  // Absent WHERE: every membership change shows.
  EXPECT_TRUE(Affected("SELECT * FROM Car", delta));
}

TEST_F(ExactRuleTest, PairedFlipEjects) {
  db::TableDelta delta;
  delta.deletes.push_back(Car(1, "Ford", "Focus", 25000, 3));
  delta.inserts.push_back(Car(1, "Ford", "Focus", 9000, 3));
  delta.update_pairs.emplace_back(0, 0);
  // 25000 -> 9000 crosses the predicate: the row enters the result.
  EXPECT_TRUE(Affected("SELECT * FROM Car WHERE price < 20000", delta));
}

TEST_F(ExactRuleTest, PairedIrrelevantChangeRetains) {
  db::TableDelta delta;
  delta.deletes.push_back(Car(1, "Ford", "Focus", 9000, 3));
  delta.inserts.push_back(Car(1, "Ford", "Focus", 9000, 7));
  delta.update_pairs.emplace_back(0, 0);
  // stock changed; the result reads maker/model and filters on price —
  // bytes provably unchanged, the cached page stays. This retention is
  // exactly where the exact tier beats the conservative pipeline.
  EXPECT_FALSE(
      Affected("SELECT maker, model FROM Car WHERE price < 20000", delta));
  // But a result that reads stock (via * or explicitly) must eject.
  EXPECT_TRUE(Affected("SELECT * FROM Car WHERE price < 20000", delta));
  EXPECT_TRUE(Affected("SELECT stock FROM Car WHERE price < 20000", delta));
  // ORDER BY references count as reads too.
  EXPECT_TRUE(Affected(
      "SELECT maker FROM Car WHERE price < 20000 ORDER BY stock", delta));
}

TEST_F(ExactRuleTest, PairedBothOutsideIsInvisible) {
  db::TableDelta delta;
  delta.deletes.push_back(Car(1, "Ford", "Focus", 25000, 3));
  delta.inserts.push_back(Car(1, "Ford", "Focus", 30000, 3));
  delta.update_pairs.emplace_back(0, 0);
  EXPECT_FALSE(Affected("SELECT * FROM Car WHERE price < 20000", delta));
}

TEST_F(ExactRuleTest, SplitPairDegradesToUnpairedRule) {
  // The same update with its halves unpaired (split across delta
  // windows): both images satisfy, so both trip the unpaired rule — a
  // conservative eject, never a retention.
  db::TableDelta delta;
  delta.deletes.push_back(Car(1, "Ford", "Focus", 9000, 3));
  delta.inserts.push_back(Car(1, "Ford", "Focus", 9000, 7));
  EXPECT_TRUE(
      Affected("SELECT maker, model FROM Car WHERE price < 20000", delta));
}

TEST_F(ExactRuleTest, MalformedPairEjectsConservatively) {
  db::TableDelta delta;
  delta.inserts.push_back(Car(1, "Ford", "Focus", 25000, 3));
  delta.update_pairs.emplace_back(5, 0);  // Dangling deletes index.
  EXPECT_TRUE(Affected("SELECT * FROM Car WHERE price < 20000", delta));
}

// ---------------------------------------------------------------------------
// Differential property (the tentpole's correctness gate): twin worlds —
// exact tier on vs off — over seeded random workloads with UPDATEs split
// between selected and unselected columns, at {1,4} workers x {1,4}
// metadata shards. Per cycle: (a) the exact run's ejects are a SUBSET of
// the conservative run's (the tier only removes false ejects), and
// (b) the re-execution oracle finds ZERO stale retentions (every page
// whose result actually changed was ejected). Exact-only workloads
// additionally issue zero polls.
// ---------------------------------------------------------------------------

struct StrategyWorld {
  std::vector<std::set<std::string>> ejected;  // Per cycle.
  std::vector<std::set<std::string>> oracle_stale;
  uint64_t polls_issued = 0;
  std::string final_report;
};

StrategyWorld RunStrategyWorld(uint64_t seed, bool exact, size_t workers,
                               size_t shards) {
  Random rng(seed);
  ManualClock clock;
  db::Database db(&clock);
  CreateCarTable(&db);
  for (int i = 0; i < 16; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES (", i, ", 'm",
                         rng.Uniform(4), "', 'x", rng.Uniform(8), "', ",
                         rng.Uniform(30000), ", ", rng.Uniform(10), ")"))
        .value();
  }

  // Exact-eligible pool: single-table, schema-resolved, function-free.
  // Several shapes read a strict subset of the columns so unselected-
  // column UPDATEs separate the exact verdict from the conservative one.
  std::vector<std::string> sqls;
  for (int i = 0; i < 10; ++i) {
    switch (rng.Uniform(6)) {
      case 0:
        sqls.push_back(
            StrCat("SELECT * FROM Car WHERE price < ", rng.Uniform(30000)));
        break;
      case 1:
        sqls.push_back(StrCat("SELECT maker, model FROM Car WHERE price > ",
                              rng.Uniform(30000)));
        break;
      case 2:
        sqls.push_back(
            StrCat("SELECT model FROM Car WHERE stock = ", rng.Uniform(10)));
        break;
      case 3:
        sqls.push_back(StrCat("SELECT * FROM Car WHERE id IN (",
                              rng.Uniform(16), ", ", rng.Uniform(16), ")"));
        break;
      case 4: {
        uint64_t low = rng.Uniform(20000);
        sqls.push_back(StrCat("SELECT maker FROM Car WHERE price BETWEEN ",
                              low, " AND ", low + rng.Uniform(10000),
                              " ORDER BY model"));
        break;
      }
      default:
        sqls.push_back(
            StrCat("SELECT maker FROM Car WHERE model = 'x", rng.Uniform(8),
                   "'"));
        break;
    }
  }

  sniffer::QiUrlMap map;
  RecordingSink sink;
  InvalidatorOptions options;
  options.exact_strategy = exact;
  options.worker_threads = workers;
  options.metadata_shards = shards;
  Invalidator inv(&db, &map, &clock, options);
  inv.AddSink(&sink);
  BaselineInvalidator oracle(&db, &map);

  StrategyWorld result;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (size_t i = 0; i < sqls.size(); ++i) {
      map.Add(sqls[i], StrCat("shop/p", i, "?##"), "/r", 0);
    }
    // Let the oracle snapshot newly (re-)cached instances BEFORE the
    // updates, so its diff covers exactly this cycle's changes.
    oracle.RunCycle().value();
    int burst = 1 + static_cast<int>(rng.Uniform(4));
    for (int u = 0; u < burst; ++u) {
      switch (rng.Uniform(6)) {
        case 0:
          db.ExecuteSql(StrCat("INSERT INTO Car VALUES (", 16 + rng.Uniform(64),
                               ", 'm", rng.Uniform(4), "', 'x", rng.Uniform(8),
                               "', ", rng.Uniform(30000), ", ", rng.Uniform(10),
                               ")"))
              .value();
          break;
        case 1:
          db.ExecuteSql(
                StrCat("DELETE FROM Car WHERE price > ", 20000 + rng.Uniform(10000)))
              .value();
          break;
        case 2:
          // Unselected-column update for the column-subset shapes.
          db.ExecuteSql(StrCat("UPDATE Car SET stock = ", rng.Uniform(10),
                               " WHERE id = ", rng.Uniform(16)))
              .value();
          break;
        case 3:
          db.ExecuteSql(StrCat("UPDATE Car SET price = ", rng.Uniform(30000),
                               " WHERE id = ", rng.Uniform(16)))
              .value();
          break;
        case 4:
          db.ExecuteSql(StrCat("UPDATE Car SET model = 'x", rng.Uniform(8),
                               "' WHERE stock = ", rng.Uniform(10)))
              .value();
          break;
        default:
          db.ExecuteSql(StrCat("UPDATE Car SET maker = 'm", rng.Uniform(4),
                               "' WHERE price < ", rng.Uniform(30000)))
              .value();
          break;
      }
    }
    BaselineInvalidator::CycleResult truth = oracle.RunCycle().value();
    sink.invalidated.clear();
    inv.RunCycle().value();
    result.ejected.push_back(sink.invalidated);
    result.oracle_stale.push_back(truth.stale_pages);
  }
  result.polls_issued = inv.stats().polls_issued;
  result.final_report = inv.StatsReport();
  return result;
}

class StrategyDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyDifferentialTest, ExactIsSubsetOfConservativeAndNeverStale) {
  const uint64_t seed = GetParam();
  uint64_t retained = 0;
  for (size_t workers : {1u, 4u}) {
    for (size_t shards : {1u, 4u}) {
      SCOPED_TRACE(StrCat("seed ", seed, " workers ", workers, " shards ",
                          shards));
      StrategyWorld conservative =
          RunStrategyWorld(seed, /*exact=*/false, workers, shards);
      StrategyWorld precise =
          RunStrategyWorld(seed, /*exact=*/true, workers, shards);
      ASSERT_EQ(precise.ejected.size(), conservative.ejected.size());
      for (size_t c = 0; c < precise.ejected.size(); ++c) {
        // (a) Subset: the exact tier removes ejects, never adds them.
        for (const std::string& page : precise.ejected[c]) {
          EXPECT_TRUE(conservative.ejected[c].contains(page))
              << "cycle " << c << ": exact ejected '" << page
              << "' but the conservative pipeline did not";
        }
        // (b) Zero stale retention: every page whose re-executed result
        // changed was ejected by the exact run.
        for (const std::string& page : precise.oracle_stale[c]) {
          EXPECT_TRUE(precise.ejected[c].contains(page))
              << "cycle " << c << ": STALE RETENTION of '" << page << "'";
        }
        retained += conservative.ejected[c].size() - precise.ejected[c].size();
      }
      // The workload is exact-only: the exact run never polls.
      EXPECT_EQ(precise.polls_issued, 0u);
    }
  }
  // Not asserted per seed (a seed may legitimately produce only flips),
  // but visible in the test record: how many false ejects the tier
  // removed across the matrix.
  RecordProperty("false_ejects_removed", static_cast<int>(retained));
}

TEST_P(StrategyDifferentialTest, ExactRunIsDeterministicAcrossTheMatrix) {
  const uint64_t seed = GetParam();
  StrategyWorld base = RunStrategyWorld(seed, /*exact=*/true, 1, 1);
  for (size_t workers : {1u, 4u}) {
    for (size_t shards : {1u, 4u}) {
      StrategyWorld got = RunStrategyWorld(seed, /*exact=*/true, workers,
                                           shards);
      ASSERT_EQ(got.ejected.size(), base.ejected.size());
      for (size_t c = 0; c < base.ejected.size(); ++c) {
        EXPECT_EQ(got.ejected[c], base.ejected[c])
            << "seed " << seed << " workers " << workers << " shards "
            << shards << " cycle " << c;
      }
      EXPECT_EQ(got.final_report, base.final_report)
          << "seed " << seed << " workers " << workers << " shards " << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyDifferentialTest,
                         ::testing::Range<uint64_t>(1, 12));

// ---------------------------------------------------------------------------
// Overload-rung interaction: exact verdicts are immune to the economy and
// conservative rungs (they issue no polls, so there is nothing to take),
// and only the emergency flush overrides them.
// ---------------------------------------------------------------------------

/// Owns every component a StageEnv borrows (invalidator_pipeline_test's
/// fixture, with the strategy-config plane ctor).
struct StageFixture {
  StageFixture() : db(&clock), plane(&db, 2, StrategyConfig{}), info(&db),
                   scheduler(/*max_polls_per_cycle=*/0) {}

  StageEnv Env() {
    StageEnv env;
    env.database = &db;
    env.map = &map;
    env.clock = &clock;
    env.options = &options;
    env.plane = &plane;
    env.info = &info;
    env.scheduler = &scheduler;
    env.sinks = &sinks;
    env.stats = &stats;
    env.cycle_matcher_stats = &cycle_matcher_stats;
    env.last_update_seq = &last_update_seq;
    env.last_map_epoch = &last_map_epoch;
    env.execute_poll = [this](const std::string& poll_sql) {
      return db.ExecuteSql(poll_sql);
    };
    return env;
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  InvalidatorOptions options;
  MetadataPlane plane;
  InformationManager info;
  InvalidationScheduler scheduler;
  RecordingSink sink;
  std::vector<InvalidationSink*> sinks = {&sink};
  InvalidatorStats stats;
  MatcherStats cycle_matcher_stats;
  uint64_t last_update_seq = 0;
  std::optional<uint64_t> last_map_epoch;
};

TEST(StrategyRungTest, ConservativeRungNeverCondemnsExactInstances) {
  StageFixture fx;
  CreateCarTable(&fx.db);
  CreateMileageTable(&fx.db);
  fx.db.ExecuteSql("INSERT INTO Car VALUES (1, 'Ford', 'Focus', 9000, 3)")
      .value();
  fx.last_update_seq = fx.db.update_log().LastSeq();
  // An exact instance a stock-only update provably does not affect, and
  // a join instance the same cycle cannot decide without a poll.
  const std::string exact_sql = "SELECT maker, model FROM Car WHERE price < 20000";
  const std::string join_sql =
      "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model";
  fx.map.Add(exact_sql, "p-exact", "/r", 0);
  fx.map.Add(join_sql, "p-join", "/r", 0);
  fx.db.ExecuteSql("UPDATE Car SET stock = 9 WHERE id = 1").value();
  fx.db.ExecuteSql("INSERT INTO Mileage VALUES ('Focus', 30)").value();

  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  ASSERT_TRUE(ctx.proceed);
  // IngestStage resolves the cycle's policy itself, so the rung under
  // test is installed after it runs (the PollStage-test idiom).
  ctx.policy = MakeStagePolicy(DegradationMode::kConservative, fx.options);
  ASSERT_TRUE(ctx.policy.skip_polls);
  EXPECT_TRUE(ctx.policy.exact_exempt);
  ASSERT_TRUE(ImpactStage(fx.Env()).Run(ctx).ok());
  ASSERT_TRUE(PollStage(fx.Env()).Run(ctx).ok());
  // The join instance is condemned (skip_polls); the exact instance's
  // precise "unaffected" verdict survives the rung untouched.
  EXPECT_TRUE(ctx.affected.contains(join_sql));
  EXPECT_FALSE(ctx.affected.contains(exact_sql));
  EXPECT_EQ(ctx.report.polls_issued, 0u);
}

TEST(StrategyRungTest, EmergencyFlushOverridesExactVerdicts) {
  StageFixture fx;
  CreateCarTable(&fx.db);
  fx.db.ExecuteSql("INSERT INTO Car VALUES (1, 'Ford', 'Focus', 9000, 3)")
      .value();
  fx.last_update_seq = fx.db.update_log().LastSeq();
  const std::string exact_sql = "SELECT maker, model FROM Car WHERE price < 20000";
  fx.map.Add(exact_sql, "p-exact", "/r", 0);
  // Provably irrelevant under the exact rule — but the emergency rung
  // flushes every instance reading a backlogged table, exact included.
  fx.db.ExecuteSql("UPDATE Car SET stock = 9 WHERE id = 1").value();

  CycleContext ctx;
  ASSERT_TRUE(IngestStage(fx.Env()).Run(ctx).ok());
  ASSERT_TRUE(ctx.proceed);
  // Installed after IngestStage, which resolves the policy itself.
  ctx.policy = MakeStagePolicy(DegradationMode::kEmergency, fx.options);
  EXPECT_FALSE(ctx.policy.exact_exempt);
  ASSERT_TRUE(ImpactStage(fx.Env()).Run(ctx).ok());
  EXPECT_TRUE(ctx.affected.contains(exact_sql));
}

}  // namespace
}  // namespace cacheportal::invalidator
