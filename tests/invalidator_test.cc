#include <gtest/gtest.h>

#include "common/clock.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

/// Records invalidation messages instead of delivering them.
class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest& message,
                          const std::string& cache_key) override {
    keys.push_back(cache_key);
    messages.push_back(message);
    return Status::OK();
  }

  std::vector<std::string> keys;
  std::vector<http::HttpRequest> messages;
};

class InvalidatorTest : public ::testing::Test {
 protected:
  InvalidatorTest() : db_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                    "Car", {{"maker", db::ColumnType::kString},
                                            {"model", db::ColumnType::kString},
                                            {"price", db::ColumnType::kInt}}))
                    .ok());
    ASSERT_TRUE(
        db_.CreateTable(db::TableSchema(
                            "Mileage", {{"model", db::ColumnType::kString},
                                        {"EPA", db::ColumnType::kInt}}))
            .ok());
    db_.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 28)").value();
  }

  std::unique_ptr<Invalidator> Make(InvalidatorOptions options = {}) {
    auto inv = std::make_unique<Invalidator>(&db_, &map_, &clock_, options);
    inv->AddSink(&sink_);
    return inv;
  }

  /// Simulates the sniffer having recorded that `page` was built from
  /// `query_sql`.
  void MapPage(const std::string& query_sql, const std::string& page) {
    map_.Add(query_sql, page, "/r", clock_.NowMicros());
  }

  ManualClock clock_;
  db::Database db_;
  sniffer::QiUrlMap map_;
  RecordingSink sink_;
};

constexpr char kCheapCars[] = "SELECT * FROM Car WHERE price < 20000";
constexpr char kJoin[] =
    "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND "
    "Car.price < 20000";

TEST_F(InvalidatorTest, NoUpdatesNoInvalidations) {
  auto inv = Make();
  MapPage(kCheapCars, "shop/cars?price=20000##");
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->updates, 0u);
  EXPECT_EQ(report->pages_invalidated, 0u);
  EXPECT_EQ(report->new_instances, 1u);
  EXPECT_TRUE(sink_.keys.empty());
}

TEST_F(InvalidatorTest, MatchingInsertInvalidatesPage) {
  auto inv = Make();
  MapPage(kCheapCars, "shop/cars?price=20000##");
  db_.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_invalidated, 1u);
  ASSERT_EQ(sink_.keys.size(), 1u);
  EXPECT_EQ(sink_.keys[0], "shop/cars?price=20000##");
  // The eject message is a well-formed HTTP request with the directive.
  const http::HttpRequest& msg = sink_.messages[0];
  EXPECT_EQ(msg.host, "shop");
  EXPECT_EQ(msg.path, "/cars");
  EXPECT_TRUE(
      http::CacheControl::Parse(*msg.headers.Get("Cache-Control")).eject);
}

TEST_F(InvalidatorTest, NonMatchingInsertLeavesPageAlone) {
  auto inv = Make();
  MapPage(kCheapCars, "page1");
  db_.ExecuteSql("INSERT INTO Car VALUES ('Lexus', 'LS', 90000)").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_invalidated, 0u);
  EXPECT_EQ(inv->stats().unaffected, 1u);
  // The page stays registered for later cycles.
  EXPECT_FALSE(map_.PagesForQuery(kCheapCars).empty());
}

TEST_F(InvalidatorTest, JoinQueryUsesPollingQuery) {
  auto inv = Make();
  MapPage(kJoin, "page-join");
  // Avalon IS in Mileage: the polling query returns non-empty.
  db_.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)")
      .value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->polls_issued, 1u);
  EXPECT_EQ(report->pages_invalidated, 1u);
  EXPECT_EQ(inv->stats().poll_hits, 1u);
}

TEST_F(InvalidatorTest, JoinQueryPollMissLeavesPage) {
  auto inv = Make();
  MapPage(kJoin, "page-join");
  db_.ExecuteSql("INSERT INTO Car VALUES ('Ford', 'Focus', 15000)").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->polls_issued, 1u);
  EXPECT_EQ(report->pages_invalidated, 0u);
}

TEST_F(InvalidatorTest, JoinIndexAvoidsPolling) {
  auto inv = Make();
  ASSERT_TRUE(inv->CreateJoinIndex("Mileage", "model").ok());
  MapPage(kJoin, "page-join");
  db_.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)")
      .value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->polls_issued, 0u);
  EXPECT_GE(report->polls_answered_by_index, 1u);
  EXPECT_EQ(report->pages_invalidated, 1u);
}

TEST_F(InvalidatorTest, PollingBudgetForcesConservativeInvalidation) {
  InvalidatorOptions options;
  options.max_polls_per_cycle = 1;
  auto inv = Make(options);
  // Two join instances; tuple requires polling for both, and the poll
  // would come back empty (Focus not in Mileage) — but only one poll is
  // allowed, so the other instance is conservatively invalidated.
  MapPage(kJoin, "page-a");
  MapPage(
      "SELECT Car.maker FROM Car, Mileage WHERE Car.model = Mileage.model "
      "AND Car.price < 30000",
      "page-b");
  db_.ExecuteSql("INSERT INTO Car VALUES ('Ford', 'Focus', 15000)").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->polls_issued, 1u);
  EXPECT_EQ(report->conservative_invalidations, 1u);
  EXPECT_EQ(report->pages_invalidated, 1u);  // Only the conservative one.
}

TEST_F(InvalidatorTest, UpdateStatementInvalidates) {
  auto inv = Make();
  db_.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 25000)").value();
  // Drain the log so only the UPDATE is in the next cycle.
  inv->RunCycle().value();
  MapPage(kCheapCars, "page1");
  // Price drops under the threshold: Δ⁻(25000) misses, Δ⁺(18000) hits.
  db_.ExecuteSql("UPDATE Car SET price = 18000 WHERE model = 'Civic'")
      .value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_invalidated, 1u);
}

TEST_F(InvalidatorTest, DeleteOfMatchingRowInvalidates) {
  auto inv = Make();
  db_.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)").value();
  inv->RunCycle().value();
  MapPage(kCheapCars, "page1");
  db_.ExecuteSql("DELETE FROM Car WHERE model = 'Civic'").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_invalidated, 1u);
}

TEST_F(InvalidatorTest, SharedPageInvalidatedOnceAcrossInstances) {
  auto inv = Make();
  MapPage(kCheapCars, "shared-page");
  MapPage("SELECT * FROM Car WHERE maker = 'Honda'", "shared-page");
  db_.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_invalidated, 1u);
  EXPECT_EQ(sink_.keys.size(), 1u);
  // Both instances are retired with the page.
  EXPECT_EQ(inv->metadata().NumInstances(), 0u);
}

TEST_F(InvalidatorTest, MultipleCyclesConsumeLogIncrementally) {
  auto inv = Make();
  MapPage(kCheapCars, "p1");
  db_.ExecuteSql("INSERT INTO Car VALUES ('A', 'X', 50000)").value();
  auto r1 = inv->RunCycle();
  EXPECT_EQ(r1->updates, 1u);
  auto r2 = inv->RunCycle();
  EXPECT_EQ(r2->updates, 0u);  // Log already consumed.
  db_.ExecuteSql("INSERT INTO Car VALUES ('B', 'Y', 50)").value();
  auto r3 = inv->RunCycle();
  EXPECT_EQ(r3->updates, 1u);
  EXPECT_EQ(r3->pages_invalidated, 1u);
}

TEST_F(InvalidatorTest, PerTupleModeIssuesMorePolls) {
  InvalidatorOptions batched;
  batched.batch_deltas = true;
  InvalidatorOptions per_tuple;
  per_tuple.batch_deltas = false;

  // Run the same scenario under both modes in separate worlds.
  for (bool batch : {true, false}) {
    ManualClock clock;
    db::Database db(&clock);
    db.CreateTable(db::TableSchema("Car",
                                   {{"maker", db::ColumnType::kString},
                                    {"model", db::ColumnType::kString},
                                    {"price", db::ColumnType::kInt}}));
    db.CreateTable(db::TableSchema(
        "Mileage",
        {{"model", db::ColumnType::kString}, {"EPA", db::ColumnType::kInt}}));
    sniffer::QiUrlMap map;
    RecordingSink sink;
    Invalidator inv(&db, &map, &clock, batch ? batched : per_tuple);
    inv.AddSink(&sink);
    map.Add(kJoin, "p", "/r", 0);
    // Three inserts that each require polling (none in Mileage).
    db.ExecuteSql("INSERT INTO Car VALUES ('A', 'X', 1)").value();
    db.ExecuteSql("INSERT INTO Car VALUES ('B', 'Y', 2)").value();
    db.ExecuteSql("INSERT INTO Car VALUES ('C', 'Z', 3)").value();
    auto report = inv.RunCycle();
    ASSERT_TRUE(report.ok());
    if (batch) {
      EXPECT_EQ(report->polls_issued, 1u);  // One OR-combined poll.
    } else {
      EXPECT_EQ(report->polls_issued, 3u);  // One poll per tuple.
    }
    EXPECT_EQ(report->pages_invalidated, 0u);
  }
}

TEST_F(InvalidatorTest, PolicyDiscoveryMarksChurningTypeNonCacheable) {
  InvalidatorOptions options;
  options.thresholds.max_invalidation_ratio = 0.5;
  options.thresholds.min_checks = 2;
  auto inv = Make(options);

  for (int i = 0; i < 4; ++i) {
    MapPage(kCheapCars, "page" + std::to_string(i));
    db_.ExecuteSql("INSERT INTO Car VALUES ('H', 'C', 100)").value();
    inv->RunCycle().value();
  }
  // Every cycle invalidated the instance: ratio 1.0 > 0.5.
  EXPECT_FALSE(inv->IsQuerySqlCacheable(kCheapCars));
}

TEST_F(InvalidatorTest, OfflineRegistrationNamesDiscoveredInstances) {
  auto inv = Make();
  ASSERT_TRUE(
      inv->RegisterQueryType("cheap-cars",
                             "SELECT * FROM Car WHERE price < $1")
          .ok());
  MapPage(kCheapCars, "p");
  inv->RunCycle().value();
  const QueryInstance* instance =
      inv->metadata().FindInstance(kCheapCars);
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(inv->metadata().FindType(instance->type_id)->name, "cheap-cars");
}

TEST_F(InvalidatorTest, UnparseableQueryInstancesAreSkippedGracefully) {
  auto inv = Make();
  // The sniffer can log queries our dialect cannot parse (stored procs,
  // vendor syntax); they must not break the cycle or other instances.
  MapPage("EXEC sp_vendor_magic(42)", "page-weird");
  MapPage(kCheapCars, "page-ok?##");
  db_.ExecuteSql("INSERT INTO Car VALUES ('H', 'C', 100)").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The parseable instance was processed and its page invalidated.
  EXPECT_EQ(report->pages_invalidated, 1u);
  EXPECT_EQ(sink_.keys.size(), 1u);
  EXPECT_EQ(inv->metadata().NumInstances(), 0u);
}

TEST_F(InvalidatorTest, InstanceOverUnknownTableIsBenign) {
  // A query instance referencing a table this DBMS does not have (e.g.
  // the application also talks to another database) never matches any
  // delta and never blocks the cycle.
  auto inv = Make();
  MapPage("SELECT * FROM Ghost WHERE x = 1", "shop/ghost?##");
  MapPage(kCheapCars, "shop/ok?##");
  db_.ExecuteSql("INSERT INTO Car VALUES ('H', 'C', 100)").value();
  auto report = inv->RunCycle();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pages_invalidated, 1u);  // Only the Car page.
  ASSERT_EQ(sink_.keys.size(), 1u);
  EXPECT_EQ(sink_.keys[0], "shop/ok?##");
  // The ghost instance stays registered, unaffected.
  EXPECT_FALSE(map_.PagesForQuery("SELECT * FROM Ghost WHERE x = 1")
                   .empty());
}

TEST_F(InvalidatorTest, StatsAccumulate) {
  auto inv = Make();
  MapPage(kCheapCars, "p");
  db_.ExecuteSql("INSERT INTO Car VALUES ('H', 'C', 100)").value();
  inv->RunCycle().value();
  const InvalidatorStats& stats = inv->stats();
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(stats.updates_processed, 1u);
  EXPECT_EQ(stats.instance_checks, 1u);
  EXPECT_EQ(stats.affected_immediately, 1u);
  EXPECT_EQ(stats.pages_invalidated, 1u);
  EXPECT_EQ(stats.messages_sent, 1u);
}

}  // namespace
}  // namespace cacheportal::invalidator
