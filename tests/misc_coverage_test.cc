#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "invalidator/scheduler.h"
#include "server/jdbc.h"

namespace cacheportal {
namespace {

// ---------------------------------------------------------------------
// CachePortal::WrapConnection — the single-connection attachment path
// (sites that hand CachePortal an already-open connection instead of a
// driver).
// ---------------------------------------------------------------------

TEST(WrapConnectionTest, LogsQueriesThroughWrappedConnection) {
  ManualClock clock;
  db::Database db(&clock);
  db.ExecuteSql("CREATE TABLE T (x INT)").value();
  db.ExecuteSql("INSERT INTO T VALUES (1)").value();

  core::CachePortal portal(&db, &clock);
  server::MemoryDbDriver driver;
  driver.BindDatabase("d", &db);
  auto raw = driver.Connect("jdbc:cacheportal:d").value();
  std::unique_ptr<server::Connection> wrapped =
      portal.WrapConnection(raw.get());

  ASSERT_TRUE(wrapped->ExecuteQuery("SELECT * FROM T").ok());
  ASSERT_TRUE(wrapped->ExecuteUpdate("INSERT INTO T VALUES (2)").ok());
  ASSERT_EQ(portal.query_log().size(), 2u);
  EXPECT_TRUE(portal.query_log().entries()[0].is_select);
  EXPECT_FALSE(portal.query_log().entries()[1].is_select);
}

// ---------------------------------------------------------------------
// Scheduler edge cases.
// ---------------------------------------------------------------------

TEST(SchedulerEdgeTest, EmptyTaskList) {
  invalidator::InvalidationScheduler scheduler(4);
  auto schedule = scheduler.Build({});
  EXPECT_TRUE(schedule.to_poll.empty());
  EXPECT_TRUE(schedule.conservative.empty());
}

TEST(SchedulerEdgeTest, BudgetExactlyMatchesTasks) {
  invalidator::InvalidationScheduler scheduler(2);
  std::vector<invalidator::PollingTask> tasks(2);
  tasks[0].instance_sql = "a";
  tasks[1].instance_sql = "b";
  auto schedule = scheduler.Build(std::move(tasks));
  EXPECT_EQ(schedule.to_poll.size(), 2u);
  EXPECT_TRUE(schedule.conservative.empty());
}

// ---------------------------------------------------------------------
// HeaderMap ordering (serialization stability).
// ---------------------------------------------------------------------

TEST(HeaderOrderTest, InsertionOrderPreserved) {
  http::HeaderMap headers;
  headers.Add("B", "2");
  headers.Add("A", "1");
  headers.Add("C", "3");
  ASSERT_EQ(headers.entries().size(), 3u);
  EXPECT_EQ(headers.entries()[0].first, "B");
  EXPECT_EQ(headers.entries()[1].first, "A");
  EXPECT_EQ(headers.entries()[2].first, "C");
  // Set replaces in place at the end.
  headers.Set("A", "9");
  EXPECT_EQ(headers.entries().back().first, "A");
  EXPECT_EQ(headers.Get("A"), "9");
}

// ---------------------------------------------------------------------
// Database odds and ends.
// ---------------------------------------------------------------------

TEST(DatabaseMiscTest, TableNamesInCreationOrder) {
  db::Database db;
  db.ExecuteSql("CREATE TABLE Zebra (x INT)").value();
  db.ExecuteSql("CREATE TABLE Apple (x INT)").value();
  EXPECT_EQ(db.TableNames(),
            (std::vector<std::string>{"Zebra", "Apple"}));
}

TEST(DatabaseMiscTest, EmptyTableQueriesBehave) {
  db::Database db;
  db.ExecuteSql("CREATE TABLE T (x INT)").value();
  EXPECT_TRUE(db.ExecuteSql("SELECT * FROM T ORDER BY x")->rows.empty());
  EXPECT_TRUE(db.ExecuteSql("SELECT * FROM T WHERE x = 1")->rows.empty());
  EXPECT_EQ(db.ExecuteSql("DELETE FROM T")->rows[0][0], sql::Value::Int(0));
  EXPECT_EQ(db.ExecuteSql("UPDATE T SET x = 1")->rows[0][0],
            sql::Value::Int(0));
  auto agg = db.ExecuteSql("SELECT COUNT(*) FROM T");
  EXPECT_EQ(agg->rows[0][0], sql::Value::Int(0));
}

TEST(DatabaseMiscTest, DistinctCountsLoadStats) {
  db::Database db;
  db.ExecuteSql("CREATE TABLE T (x INT)").value();
  uint64_t q0 = db.queries_executed(), d0 = db.dml_executed();
  db.ExecuteSql("INSERT INTO T VALUES (1)").value();
  db.ExecuteSql("SELECT * FROM T").value();
  db.ExecuteSql("SELECT * FROM T").value();
  EXPECT_EQ(db.queries_executed() - q0, 2u);
  EXPECT_EQ(db.dml_executed() - d0, 1u);
}

// ---------------------------------------------------------------------
// ConnectionPool wrap-around with the logging driver stacked on top.
// ---------------------------------------------------------------------

TEST(PoolStackTest, LoggingPoolServesAllConnections) {
  ManualClock clock;
  db::Database db(&clock);
  db.ExecuteSql("CREATE TABLE T (x INT)").value();
  core::CachePortal portal(&db, &clock);
  auto raw = std::make_unique<server::MemoryDbDriver>();
  raw->BindDatabase("d", &db);
  server::DriverManager manager;
  manager.RegisterDriver(portal.WrapDriver(raw.get()));
  auto pool = std::move(server::ConnectionPool::Create(
                            "p", "jdbc:cacheportal-log:jdbc:cacheportal:d",
                            3, &manager)
                            .value());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(pool->Acquire()->ExecuteQuery("SELECT * FROM T").ok());
  }
  EXPECT_EQ(pool->acquisitions(), 6u);
  EXPECT_EQ(portal.query_log().size(), 6u);
}

}  // namespace
}  // namespace cacheportal
