#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"

namespace cacheportal::core {
namespace {

/// Pages built from MULTIPLE queries (Table 1's query_per_request > 1):
/// the time-interval mapper must associate every query executed inside
/// the request window with the page, and an update affecting ANY of them
/// must invalidate it.
class MultiQueryPageTest : public ::testing::Test {
 protected:
  MultiQueryPageTest() : db_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                    "Product", {{"name", db::ColumnType::kString},
                                                {"price", db::ColumnType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                    "Promo", {{"name", db::ColumnType::kString},
                                              {"pct", db::ColumnType::kInt}}))
                    .ok());
    db_.ExecuteSql("INSERT INTO Product VALUES ('pen', 10)").value();
    db_.ExecuteSql("INSERT INTO Promo VALUES ('pen', 15)").value();

    portal_ = std::make_unique<CachePortal>(&db_, &clock_);
    auto raw = std::make_unique<server::MemoryDbDriver>();
    raw->BindDatabase("shop", &db_);
    drivers_.RegisterDriver(portal_->WrapDriver(raw.get()));
    raw_ = std::move(raw);
    pool_ = std::move(server::ConnectionPool::Create(
                          "p", "jdbc:cacheportal-log:jdbc:cacheportal:shop",
                          1, &drivers_)
                          .value());
    app_ = std::make_unique<server::ApplicationServer>(pool_.get());
    // The storefront page runs TWO queries: the catalog and the promos.
    ASSERT_TRUE(
        app_->RegisterServlet(
                "/store",
                std::make_unique<server::FunctionServlet>(
                    [this](const http::HttpRequest&,
                           server::ServletContext* ctx) {
                      clock_.Advance(100);
                      auto products = ctx->connection->ExecuteQuery(
                          "SELECT name, price FROM Product WHERE price < "
                          "100");
                      clock_.Advance(100);
                      auto promos = ctx->connection->ExecuteQuery(
                          "SELECT name, pct FROM Promo WHERE pct > 10");
                      return http::HttpResponse::Ok(
                          products->ToString() + promos->ToString());
                    }),
                server::ServletConfig{})
            .ok());
    portal_->AttachTo(app_.get());
    proxy_ = portal_->CreateProxy(app_.get());
  }

  http::HttpResponse Get() {
    clock_.Advance(50);
    return proxy_->Handle(*http::HttpRequest::Get("http://shop/store"));
  }

  ManualClock clock_;
  db::Database db_;
  std::unique_ptr<CachePortal> portal_;
  server::DriverManager drivers_;
  std::unique_ptr<server::Driver> raw_;
  std::unique_ptr<server::ConnectionPool> pool_;
  std::unique_ptr<server::ApplicationServer> app_;
  CachingProxy* proxy_ = nullptr;
};

TEST_F(MultiQueryPageTest, MapperAssociatesBothQueries) {
  Get();
  portal_->RunCycle().value();
  EXPECT_EQ(portal_->query_log().size(), 2u);
  EXPECT_EQ(portal_->qiurl_map().size(), 2u);  // Two (query, page) rows.
  EXPECT_EQ(portal_->qiurl_map().NumPages(), 1u);
  EXPECT_EQ(portal_->qiurl_map().NumQueries(), 2u);
}

TEST_F(MultiQueryPageTest, FirstQueryUpdateInvalidates) {
  Get();
  portal_->RunCycle().value();
  db_.ExecuteSql("INSERT INTO Product VALUES ('book', 20)").value();
  auto report = portal_->RunCycle().value();
  EXPECT_EQ(report.pages_invalidated, 1u);
  http::HttpResponse fresh = Get();
  EXPECT_EQ(fresh.headers.Get("X-Cache"), "MISS");
  EXPECT_NE(fresh.body.find("book"), std::string::npos);
}

TEST_F(MultiQueryPageTest, SecondQueryUpdateAlsoInvalidates) {
  Get();
  portal_->RunCycle().value();
  db_.ExecuteSql("INSERT INTO Promo VALUES ('book', 25)").value();
  auto report = portal_->RunCycle().value();
  EXPECT_EQ(report.pages_invalidated, 1u);
  EXPECT_NE(Get().body.find("25"), std::string::npos);
}

TEST_F(MultiQueryPageTest, UnrelatedUpdateLeavesPageCached) {
  Get();
  portal_->RunCycle().value();
  // Fails both conditions: price >= 100 and pct <= 10.
  db_.ExecuteSql("INSERT INTO Product VALUES ('yacht', 500000)").value();
  db_.ExecuteSql("INSERT INTO Promo VALUES ('yacht', 3)").value();
  auto report = portal_->RunCycle().value();
  EXPECT_EQ(report.pages_invalidated, 0u);
  EXPECT_EQ(Get().headers.Get("X-Cache"), "HIT");
}

TEST_F(MultiQueryPageTest, PageEjectionRetiresBothInstances) {
  Get();
  portal_->RunCycle().value();
  EXPECT_EQ(portal_->invalidator().metadata().NumInstances(), 2u);
  db_.ExecuteSql("INSERT INTO Product VALUES ('book', 20)").value();
  portal_->RunCycle().value();
  // The page is gone, so both instances leave the map; the Product one
  // is retired immediately, the Promo one on its next idle check.
  portal_->RunCycle().value();
  db_.ExecuteSql("INSERT INTO Promo VALUES ('x', 99)").value();
  portal_->RunCycle().value();
  EXPECT_EQ(portal_->invalidator().metadata().NumInstances(), 0u);
}

}  // namespace
}  // namespace cacheportal::core
