#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/remote_cache.h"
#include "net/http_server.h"

namespace cacheportal::net {
namespace {

/// Concurrency soak: multiple client threads hammer the (serially
/// handling) server. Verifies no lost responses, no torn messages, and
/// clean shutdown with clients mid-flight.
TEST(NetConcurrentTest, ParallelClientsAllServed) {
  std::atomic<int> handled{0};
  auto server = HttpServer::Start([&handled](const std::string& request) {
    auto parsed = http::HttpRequest::Parse(request);
    if (!parsed.ok()) return http::HttpResponse(400, "bad").Serialize();
    ++handled;
    return http::HttpResponse::Ok("echo:" + parsed->path).Serialize();
  });
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string path = "/t" + std::to_string(t) + "i" +
                           std::to_string(i);
        auto req = http::HttpRequest::Get("http://h" + path);
        auto wire = FetchWire(port, req->Serialize());
        if (!wire.ok()) continue;
        auto resp = http::HttpResponse::Parse(*wire);
        if (resp.ok() && resp->body == "echo:" + path) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(handled.load(), kThreads * kPerThread);
}

TEST(NetConcurrentTest, CachedEndpointUnderParallelClients) {
  ManualClock clock;
  cache::PageCache page_cache(64, &clock);
  class Origin : public server::RequestHandler {
   public:
    http::HttpResponse Handle(const http::HttpRequest&) override {
      ++generations;
      http::HttpResponse resp = http::HttpResponse::Ok("page");
      http::CacheControl cc;
      cc.is_private = true;
      cc.owner = http::kCachePortalOwner;
      resp.SetCacheControl(cc);
      return resp;
    }
    int generations = 0;
  } origin;
  core::RemoteCacheEndpoint endpoint(&page_cache, &origin);
  std::mutex mu;
  auto server = HttpServer::Start([&](const std::string& request) {
    std::lock_guard<std::mutex> lock(mu);
    return endpoint.HandleWire(request);
  });
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  // 8 distinct pages requested by 4 threads repeatedly: each page is
  // generated exactly once; everything else hits.
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 24; ++i) {
        auto req = http::HttpRequest::Get(
            "http://h/p?id=" + std::to_string(i % 8));
        auto wire = FetchWire(port, req->Serialize());
        if (wire.ok() && http::HttpResponse::Parse(*wire).ok()) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 4 * 24);
  EXPECT_EQ(origin.generations, 8);
  EXPECT_EQ(page_cache.stats().hits, 4u * 24u - 8u);
}

}  // namespace
}  // namespace cacheportal::net
