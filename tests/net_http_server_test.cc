#include <gtest/gtest.h>

#include <mutex>

#include "common/clock.h"
#include "core/remote_cache.h"
#include "net/http_server.h"

namespace cacheportal::net {
namespace {

TEST(HttpServerTest, EchoHandlerRoundTrip) {
  auto server = HttpServer::Start([](const std::string& request) {
    auto parsed = http::HttpRequest::Parse(request);
    if (!parsed.ok()) {
      return http::HttpResponse(400, "bad").Serialize();
    }
    return http::HttpResponse::Ok("path=" + parsed->path).Serialize();
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);

  auto wire = FetchWire((*server)->port(),
                        http::HttpRequest::Get("http://h/ping")->Serialize());
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  auto response = http::HttpResponse::Parse(*wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "path=/ping");
  EXPECT_EQ((*server)->requests_handled(), 1u);
}

TEST(HttpServerTest, SequentialRequests) {
  int counter = 0;
  auto server = HttpServer::Start([&counter](const std::string&) {
    return http::HttpResponse::Ok(std::to_string(++counter)).Serialize();
  });
  ASSERT_TRUE(server.ok());
  for (int i = 1; i <= 5; ++i) {
    auto wire = FetchWire(
        (*server)->port(), http::HttpRequest::Get("http://h/")->Serialize());
    ASSERT_TRUE(wire.ok());
    EXPECT_EQ(http::HttpResponse::Parse(*wire)->body, std::to_string(i));
  }
}

TEST(HttpServerTest, PostBodyDeliveredWhole) {
  auto server = HttpServer::Start([](const std::string& request) {
    auto parsed = http::HttpRequest::Parse(request);
    if (!parsed.ok()) return http::HttpResponse(400, "bad").Serialize();
    return http::HttpResponse::Ok("qty=" + parsed->post_params["qty"])
        .Serialize();
  });
  ASSERT_TRUE(server.ok());
  auto post = http::HttpRequest::Post("http://h/buy", {{"qty", "17"}});
  auto wire = FetchWire((*server)->port(), post->Serialize());
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(http::HttpResponse::Parse(*wire)->body, "qty=17");
}

TEST(HttpServerTest, StopIsIdempotentAndJoins) {
  auto server = HttpServer::Start(
      [](const std::string&) { return http::HttpResponse::Ok("x").Serialize(); });
  ASSERT_TRUE(server.ok());
  (*server)->Stop();
  (*server)->Stop();  // No crash.
  // Fetch after stop fails cleanly.
  auto wire = FetchWire((*server)->port(), "GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(wire.ok());
}

TEST(HttpServerTest, RejectsNullHandler) {
  EXPECT_FALSE(HttpServer::Start(nullptr).ok());
}

TEST(HttpServerTest, CacheEndpointOverRealTcp) {
  // An edge cache served over an actual socket: the full NetCache-style
  // deployment, including a real eject message on the wire.
  ManualClock clock;
  cache::PageCache page_cache(16, &clock);
  class Origin : public server::RequestHandler {
   public:
    http::HttpResponse Handle(const http::HttpRequest&) override {
      http::HttpResponse resp = http::HttpResponse::Ok("content");
      http::CacheControl cc;
      cc.is_private = true;
      cc.owner = http::kCachePortalOwner;
      resp.SetCacheControl(cc);
      return resp;
    }
  } origin;
  core::RemoteCacheEndpoint endpoint(&page_cache, &origin);
  std::mutex mu;  // Endpoint state is single-threaded.
  auto server = HttpServer::Start([&](const std::string& request) {
    std::lock_guard<std::mutex> lock(mu);
    return endpoint.HandleWire(request);
  });
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  auto get = http::HttpRequest::Get("http://edge/p?id=1");
  auto first = http::HttpResponse::Parse(*FetchWire(port, get->Serialize()));
  EXPECT_EQ(first->headers.Get("X-Cache"), "MISS");
  auto second = http::HttpResponse::Parse(*FetchWire(port, get->Serialize()));
  EXPECT_EQ(second->headers.Get("X-Cache"), "HIT");

  // Eject over the wire.
  auto eject = http::HttpRequest::Get("http://edge/p?id=1");
  eject->headers.Set("Cache-Control", "eject");
  auto ejected =
      http::HttpResponse::Parse(*FetchWire(port, eject->Serialize()));
  EXPECT_EQ(ejected->status_code, 204);

  auto third = http::HttpResponse::Parse(*FetchWire(port, get->Serialize()));
  EXPECT_EQ(third->headers.Get("X-Cache"), "MISS");
}

}  // namespace
}  // namespace cacheportal::net
