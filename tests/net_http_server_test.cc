#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <mutex>

#include "common/clock.h"
#include "core/remote_cache.h"
#include "net/http_server.h"

namespace cacheportal::net {
namespace {

TEST(HttpServerTest, EchoHandlerRoundTrip) {
  auto server = HttpServer::Start([](const std::string& request) {
    auto parsed = http::HttpRequest::Parse(request);
    if (!parsed.ok()) {
      return http::HttpResponse(400, "bad").Serialize();
    }
    return http::HttpResponse::Ok("path=" + parsed->path).Serialize();
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);

  auto wire = FetchWire((*server)->port(),
                        http::HttpRequest::Get("http://h/ping")->Serialize());
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  auto response = http::HttpResponse::Parse(*wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "path=/ping");
  EXPECT_EQ((*server)->requests_handled(), 1u);
}

TEST(HttpServerTest, SequentialRequests) {
  int counter = 0;
  auto server = HttpServer::Start([&counter](const std::string&) {
    return http::HttpResponse::Ok(std::to_string(++counter)).Serialize();
  });
  ASSERT_TRUE(server.ok());
  for (int i = 1; i <= 5; ++i) {
    auto wire = FetchWire(
        (*server)->port(), http::HttpRequest::Get("http://h/")->Serialize());
    ASSERT_TRUE(wire.ok());
    EXPECT_EQ(http::HttpResponse::Parse(*wire)->body, std::to_string(i));
  }
}

TEST(HttpServerTest, PostBodyDeliveredWhole) {
  auto server = HttpServer::Start([](const std::string& request) {
    auto parsed = http::HttpRequest::Parse(request);
    if (!parsed.ok()) return http::HttpResponse(400, "bad").Serialize();
    return http::HttpResponse::Ok("qty=" + parsed->post_params["qty"])
        .Serialize();
  });
  ASSERT_TRUE(server.ok());
  auto post = http::HttpRequest::Post("http://h/buy", {{"qty", "17"}});
  auto wire = FetchWire((*server)->port(), post->Serialize());
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(http::HttpResponse::Parse(*wire)->body, "qty=17");
}

TEST(HttpServerTest, StopIsIdempotentAndJoins) {
  auto server = HttpServer::Start(
      [](const std::string&) { return http::HttpResponse::Ok("x").Serialize(); });
  ASSERT_TRUE(server.ok());
  (*server)->Stop();
  (*server)->Stop();  // No crash.
  // Fetch after stop fails cleanly.
  auto wire = FetchWire((*server)->port(), "GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(wire.ok());
}

TEST(HttpServerTest, RejectsNullHandler) {
  EXPECT_FALSE(HttpServer::Start(nullptr).ok());
}

TEST(HttpServerTest, CacheEndpointOverRealTcp) {
  // An edge cache served over an actual socket: the full NetCache-style
  // deployment, including a real eject message on the wire.
  ManualClock clock;
  cache::PageCache page_cache(16, &clock);
  class Origin : public server::RequestHandler {
   public:
    http::HttpResponse Handle(const http::HttpRequest&) override {
      http::HttpResponse resp = http::HttpResponse::Ok("content");
      http::CacheControl cc;
      cc.is_private = true;
      cc.owner = http::kCachePortalOwner;
      resp.SetCacheControl(cc);
      return resp;
    }
  } origin;
  core::RemoteCacheEndpoint endpoint(&page_cache, &origin);
  std::mutex mu;  // Endpoint state is single-threaded.
  auto server = HttpServer::Start([&](const std::string& request) {
    std::lock_guard<std::mutex> lock(mu);
    return endpoint.HandleWire(request);
  });
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  auto get = http::HttpRequest::Get("http://edge/p?id=1");
  auto first = http::HttpResponse::Parse(*FetchWire(port, get->Serialize()));
  EXPECT_EQ(first->headers.Get("X-Cache"), "MISS");
  auto second = http::HttpResponse::Parse(*FetchWire(port, get->Serialize()));
  EXPECT_EQ(second->headers.Get("X-Cache"), "HIT");

  // Eject over the wire.
  auto eject = http::HttpRequest::Get("http://edge/p?id=1");
  eject->headers.Set("Cache-Control", "eject");
  auto ejected =
      http::HttpResponse::Parse(*FetchWire(port, eject->Serialize()));
  EXPECT_EQ(ejected->status_code, 204);

  auto third = http::HttpResponse::Parse(*FetchWire(port, get->Serialize()));
  EXPECT_EQ(third->headers.Get("X-Cache"), "MISS");
}

TEST(HttpServerTest, SlowLorisConnectionIsDroppedAfterIoTimeout) {
  HttpServerOptions options;
  options.io_timeout = 100 * kMicrosPerMilli;
  auto server = HttpServer::Start(
      [](const std::string&) { return http::HttpResponse::Ok("x").Serialize(); },
      options);
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  // A slow-loris peer: connects, sends a partial request line, and then
  // goes silent. Without SO_RCVTIMEO this would wedge the
  // single-threaded accept loop forever.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_GT(::send(fd, "GET / HTT", 9, 0), 0);

  // A well-behaved request issued behind the stalled one: the server must
  // time out the loris and still answer. FetchWire blocks until then.
  auto wire = FetchWire(port,
                        http::HttpRequest::Get("http://h/after")->Serialize());
  ::close(fd);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(http::HttpResponse::Parse(*wire)->status_code, 200);
  EXPECT_EQ((*server)->connections_timed_out(), 1u);
  EXPECT_EQ((*server)->requests_handled(), 1u);
}

TEST(HttpServerTest, ShedCheckRefusesWith503AndRetryAfter) {
  bool shedding = false;
  HttpServerOptions options;
  options.shed_check = [&shedding] { return shedding; };
  options.retry_after_seconds = 7;
  auto server = HttpServer::Start(
      [](const std::string&) { return http::HttpResponse::Ok("x").Serialize(); },
      options);
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();
  auto get = http::HttpRequest::Get("http://h/")->Serialize();

  // Not shedding: normal service.
  auto ok = http::HttpResponse::Parse(*FetchWire(port, get));
  EXPECT_EQ(ok->status_code, 200);

  // Shedding: the request is refused up front — the handler never runs —
  // with the standard back-off contract for well-behaved clients.
  shedding = true;
  auto shed = http::HttpResponse::Parse(*FetchWire(port, get));
  EXPECT_EQ(shed->status_code, 503);
  EXPECT_EQ(shed->headers.Get("Retry-After"), "7");
  EXPECT_EQ((*server)->connections_rejected(), 1u);
  EXPECT_EQ((*server)->requests_handled(), 1u);

  // Load drops: service resumes with no residue.
  shedding = false;
  auto again = http::HttpResponse::Parse(*FetchWire(port, get));
  EXPECT_EQ(again->status_code, 200);
  EXPECT_EQ((*server)->connections_rejected(), 1u);
}

TEST(HttpServerTest, PartialBodyTimesOutWithoutWedgingTheServer) {
  HttpServerOptions options;
  options.io_timeout = 100 * kMicrosPerMilli;
  auto server = HttpServer::Start(
      [](const std::string&) { return http::HttpResponse::Ok("x").Serialize(); },
      options);
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  // Headers promise a body that never arrives — the body-stage loris.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char kHeaders[] = "POST /buy HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
  ASSERT_GT(::send(fd, kHeaders, sizeof(kHeaders) - 1, 0), 0);

  auto wire = FetchWire(port,
                        http::HttpRequest::Get("http://h/after")->Serialize());
  ::close(fd);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ((*server)->connections_timed_out(), 1u);
}

}  // namespace
}  // namespace cacheportal::net
