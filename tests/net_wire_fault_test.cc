// A seeded invalidation storm through the full reliability stack over a
// real loopback socket with injected socket faults — drops, resets,
// partial writes, partitions — on both sides of the wire. The pass
// condition is oracle equality: everything the delivery queue accepted
// must be applied by the server exactly once, regardless of which faults
// fired. The multiprocess variant (net_wire_multiprocess_test) adds real
// processes and a SIGKILL restart; this one keeps everything in-process
// so a failure is debuggable.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/reliable_delivery.h"
#include "core/remote_cache.h"
#include "http/message.h"
#include "net/invalidation_server.h"
#include "net/wire_client.h"
#include "tools/storm.h"

namespace cacheportal {
namespace {

struct AppliedKeys {
  std::mutex mu;
  std::vector<std::string> keys;
  net::InvalidationServer::ApplyFn Fn() {
    return [this](const std::string& payload, uint64_t, uint64_t) {
      Result<http::HttpRequest> eject = http::HttpRequest::Parse(payload);
      if (!eject.ok()) return eject.status();
      std::lock_guard<std::mutex> lock(mu);
      keys.push_back(eject->ToPageId().CacheKey());
      return Status::OK();
    };
  }
};

// One storm, parameterized by the fault mix. Returns the applied keys.
std::vector<std::string> RunStorm(uint64_t seed, uint64_t count,
                                  const FaultConfig& client_faults,
                                  const FaultConfig& server_faults,
                                  core::DeliveryStats* stats_out) {
  AppliedKeys applied;
  FaultInjector server_injector(seed * 2 + 1, server_faults);
  net::InvalidationServerOptions server_options;
  server_options.faults = &server_injector;
  server_options.io_timeout = kMicrosPerSecond;
  auto server =
      net::InvalidationServer::Start(applied.Fn(), std::move(server_options));
  EXPECT_TRUE(server.ok());

  ManualClock clock;
  FaultInjector client_injector(seed, client_faults);
  net::WireClientOptions client_options;
  client_options.port = (*server)->port();
  client_options.io_timeout = 100 * kMicrosPerMilli;  // Real ack bound.
  client_options.reconnect_backoff = 10 * kMicrosPerMilli;
  client_options.faults = &client_injector;
  net::WireInvalidationClient client(&clock, client_options);

  core::WireCacheSink sink(
      [&client](const std::string& bytes, const std::string& key) {
        return client.Deliver(key, bytes);
      },
      [&client] { return client.HealthReport(); });

  core::DeliveryOptions delivery_options;
  delivery_options.max_attempts = 10000;
  delivery_options.delivery_deadline = 0;
  delivery_options.initial_backoff = 5 * kMicrosPerMilli;
  delivery_options.max_backoff = 50 * kMicrosPerMilli;
  delivery_options.jitter_fraction = 0.0;
  core::ReliableDeliveryQueue queue(&clock, delivery_options);
  queue.AddSink(&sink, "wire-cache");

  for (uint64_t i = 0; i < count; ++i) {
    queue.SendInvalidation(tools::StormEject(seed, i),
                           tools::StormKey(seed, i));
  }
  queue.DrainWith(&clock);
  EXPECT_EQ(queue.pending(), 0u);
  if (stats_out != nullptr) *stats_out = queue.stats();

  std::lock_guard<std::mutex> lock(applied.mu);
  return applied.keys;
}

TEST(WireFaultStormTest, CleanWireDeliversEverythingExactlyOnce) {
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(3, 50, FaultConfig{}, FaultConfig{}, &stats);
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(3, 50));
  EXPECT_EQ(stats.delivered, 50u);
  EXPECT_EQ(stats.dead_lettered, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(WireFaultStormTest, StormSurvivesClientSideSocketFaults) {
  FaultConfig faults;
  faults.drop_probability = 0.08;
  faults.reset_probability = 0.05;
  faults.partial_write_probability = 0.05;
  faults.partition_probability = 0.05;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(17, 120, faults, FaultConfig{}, &stats);

  // Exactly-once applies despite at-least-once transport: the (epoch,
  // seq) ledger absorbed every replay, so no key appears twice.
  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(17, 120));
  EXPECT_EQ(stats.delivered, 120u);
  EXPECT_EQ(stats.dead_lettered, 0u);
  EXPECT_GT(stats.retries, 0u) << "faults configured but none disturbed "
                                  "delivery; the test lost its teeth";
}

TEST(WireFaultStormTest, StormSurvivesServerSideAckFaults) {
  // Dropped and reset acks: the eject APPLIES but the confirmation dies,
  // forcing replays the ledger must dedup.
  FaultConfig faults;
  faults.drop_probability = 0.1;
  faults.reset_probability = 0.05;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(29, 80, FaultConfig{}, faults, &stats);

  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(29, 80));
  EXPECT_EQ(stats.dead_lettered, 0u);
}

TEST(WireFaultStormTest, StormSurvivesFaultsOnBothSides) {
  FaultConfig client_faults;
  client_faults.drop_probability = 0.05;
  client_faults.partition_probability = 0.05;
  FaultConfig server_faults;
  server_faults.drop_probability = 0.05;
  server_faults.partial_write_probability = 0.03;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(31, 100, client_faults, server_faults, &stats);

  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(31, 100));
  EXPECT_EQ(stats.dead_lettered, 0u);
}

}  // namespace
}  // namespace cacheportal
