// A seeded invalidation storm through the full reliability stack over a
// real loopback socket with injected socket faults — drops, resets,
// partial writes, partitions — on both sides of the wire. The pass
// condition is oracle equality: everything the delivery queue accepted
// must be applied by the server exactly once, regardless of which faults
// fired. The multiprocess variant (net_wire_multiprocess_test) adds real
// processes and a SIGKILL restart; this one keeps everything in-process
// so a failure is debuggable.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/reliable_delivery.h"
#include "core/remote_cache.h"
#include "http/message.h"
#include "net/invalidation_server.h"
#include "net/wire_client.h"
#include "tools/storm.h"

namespace cacheportal {
namespace {

struct AppliedKeys {
  std::mutex mu;
  std::vector<std::string> keys;
  net::InvalidationServer::ApplyFn Fn() {
    return [this](std::string_view payload, uint64_t, uint64_t) {
      Result<http::HttpRequest> eject =
          http::HttpRequest::Parse(std::string(payload));
      if (!eject.ok()) return eject.status();
      std::lock_guard<std::mutex> lock(mu);
      keys.push_back(eject->ToPageId().CacheKey());
      return Status::OK();
    };
  }
};

// One storm, parameterized by the fault mix and (for the pipelined
// variants) the wire batch size and in-flight window. batch == 1 keeps
// the original stop-and-wait single-message path. Returns the applied
// keys.
std::vector<std::string> RunStorm(uint64_t seed, uint64_t count,
                                  const FaultConfig& client_faults,
                                  const FaultConfig& server_faults,
                                  core::DeliveryStats* stats_out,
                                  size_t batch = 1, size_t window = 1) {
  AppliedKeys applied;
  FaultInjector server_injector(seed * 2 + 1, server_faults);
  net::InvalidationServerOptions server_options;
  server_options.faults = &server_injector;
  server_options.io_timeout = kMicrosPerSecond;
  auto server =
      net::InvalidationServer::Start(applied.Fn(), std::move(server_options));
  EXPECT_TRUE(server.ok());

  ManualClock clock;
  FaultInjector client_injector(seed, client_faults);
  net::WireClientOptions client_options;
  client_options.port = (*server)->port();
  client_options.io_timeout = 100 * kMicrosPerMilli;  // Real ack bound.
  client_options.reconnect_backoff = 10 * kMicrosPerMilli;
  client_options.batch_max = batch;
  client_options.window_frames = window;
  client_options.faults = &client_injector;
  net::WireInvalidationClient client(&clock, client_options);

  core::WireCacheSink::FramedTransport single =
      [&client](const std::string& bytes, const std::string& key) {
        return client.Deliver(key, bytes);
      };
  core::WireCacheSink::HealthFn health = [&client] {
    return client.HealthReport();
  };
  // batch == 1 constructs the legacy single-message sink so the original
  // tests keep their exact delivery path.
  core::WireCacheSink sink =
      batch > 1 ? core::WireCacheSink(
                      single,
                      [&client](const std::vector<
                                std::pair<std::string, std::string>>& kv) {
                        std::vector<net::WireInvalidationClient::BatchEntry>
                            entries;
                        entries.reserve(kv.size());
                        for (const auto& [key, bytes] : kv) {
                          entries.push_back({key, bytes});
                        }
                        net::WireBatchResult sent =
                            client.DeliverBatch(entries);
                        return invalidator::BatchSendResult{sent.confirmed,
                                                            sent.status};
                      },
                      health)
                : core::WireCacheSink(single, health);

  core::DeliveryOptions delivery_options;
  delivery_options.max_attempts = 10000;
  delivery_options.delivery_deadline = 0;
  delivery_options.initial_backoff = 5 * kMicrosPerMilli;
  delivery_options.max_backoff = 50 * kMicrosPerMilli;
  delivery_options.jitter_fraction = 0.0;
  delivery_options.batch_max = static_cast<int>(batch);
  core::ReliableDeliveryQueue queue(&clock, delivery_options);
  queue.AddSink(&sink, "wire-cache");

  for (uint64_t i = 0; i < count; ++i) {
    queue.SendInvalidation(tools::StormEject(seed, i),
                           tools::StormKey(seed, i));
  }
  queue.DrainWith(&clock);
  EXPECT_EQ(queue.pending(), 0u);
  if (stats_out != nullptr) *stats_out = queue.stats();

  std::lock_guard<std::mutex> lock(applied.mu);
  return applied.keys;
}

TEST(WireFaultStormTest, CleanWireDeliversEverythingExactlyOnce) {
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(3, 50, FaultConfig{}, FaultConfig{}, &stats);
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(3, 50));
  EXPECT_EQ(stats.delivered, 50u);
  EXPECT_EQ(stats.dead_lettered, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(WireFaultStormTest, StormSurvivesClientSideSocketFaults) {
  FaultConfig faults;
  faults.drop_probability = 0.08;
  faults.reset_probability = 0.05;
  faults.partial_write_probability = 0.05;
  faults.partition_probability = 0.05;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(17, 120, faults, FaultConfig{}, &stats);

  // Exactly-once applies despite at-least-once transport: the (epoch,
  // seq) ledger absorbed every replay, so no key appears twice.
  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(17, 120));
  EXPECT_EQ(stats.delivered, 120u);
  EXPECT_EQ(stats.dead_lettered, 0u);
  EXPECT_GT(stats.retries, 0u) << "faults configured but none disturbed "
                                  "delivery; the test lost its teeth";
}

TEST(WireFaultStormTest, StormSurvivesServerSideAckFaults) {
  // Dropped and reset acks: the eject APPLIES but the confirmation dies,
  // forcing replays the ledger must dedup.
  FaultConfig faults;
  faults.drop_probability = 0.1;
  faults.reset_probability = 0.05;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(29, 80, FaultConfig{}, faults, &stats);

  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(29, 80));
  EXPECT_EQ(stats.dead_lettered, 0u);
}

TEST(WireFaultStormTest, StormSurvivesFaultsOnBothSides) {
  FaultConfig client_faults;
  client_faults.drop_probability = 0.05;
  client_faults.partition_probability = 0.05;
  FaultConfig server_faults;
  server_faults.drop_probability = 0.05;
  server_faults.partial_write_probability = 0.03;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(31, 100, client_faults, server_faults, &stats);

  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(31, 100));
  EXPECT_EQ(stats.dead_lettered, 0u);
}

TEST(WireFaultStormTest, PipelinedStormSurvivesDroppedAndLateAcks) {
  // Dropped ack frames under pipelining: a lost ACK for seq N followed
  // by a delivered cumulative ACK for N+k is exactly the reordered-ack
  // case — the later ack confirms the earlier run, and replays of
  // already-applied entries must dedup against the ledger.
  FaultConfig server_faults;
  server_faults.drop_probability = 0.15;
  server_faults.reset_probability = 0.05;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(41, 150, FaultConfig{}, server_faults, &stats,
               /*batch=*/16, /*window=*/32);

  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(41, 150));
  EXPECT_EQ(stats.delivered, 150u);
  EXPECT_EQ(stats.dead_lettered, 0u);
  EXPECT_GT(stats.batch_flushes, 0u) << "batch path never exercised";
}

TEST(WireFaultStormTest, PipelinedStormSurvivesMidBatchResets) {
  // Client-side resets and partitions kill connections with whole batch
  // runs un-acked; the replay starts from the last cumulative ack, so
  // entries that DID apply before the reset come back as dups.
  FaultConfig client_faults;
  client_faults.reset_probability = 0.06;
  client_faults.partition_probability = 0.05;
  client_faults.drop_probability = 0.05;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(43, 150, client_faults, FaultConfig{}, &stats,
               /*batch=*/16, /*window=*/32);

  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(43, 150));
  EXPECT_EQ(stats.delivered, 150u);
  EXPECT_EQ(stats.dead_lettered, 0u);
  EXPECT_GT(stats.retries, 0u) << "faults configured but none disturbed "
                                  "delivery; the test lost its teeth";
}

TEST(WireFaultStormTest, PipelinedStormSurvivesFaultsOnBothSides) {
  FaultConfig client_faults;
  client_faults.drop_probability = 0.05;
  client_faults.partition_probability = 0.04;
  client_faults.partial_write_probability = 0.04;
  FaultConfig server_faults;
  server_faults.drop_probability = 0.08;
  server_faults.partial_write_probability = 0.03;
  core::DeliveryStats stats;
  std::vector<std::string> applied =
      RunStorm(47, 200, client_faults, server_faults, &stats,
               /*batch=*/64, /*window=*/128);

  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(47, 200));
  EXPECT_EQ(stats.delivered, 200u);
  EXPECT_EQ(stats.dead_lettered, 0u);
}

TEST(WireFaultStormTest, PipelinedStormSurvivesServerRestartEpochBump) {
  // The server dies mid-storm with whole batch runs un-acked and its
  // successor restarts at a bumped epoch with an EMPTY ledger: protocol
  // dedup cannot span the bump (every seq is renamed), so — exactly as
  // cache_node does — the apply fn dedups by content. The applied key
  // SET must equal the oracle, with each key applied-and-logged once.
  const uint64_t seed = 53;
  const uint64_t count = 120;
  std::mutex mu;
  std::set<std::string> applied_keys;
  std::vector<std::string> applied_log;
  auto apply = [&](std::string_view payload, uint64_t, uint64_t) {
    Result<http::HttpRequest> eject =
        http::HttpRequest::Parse(std::string(payload));
    if (!eject.ok()) return eject.status();
    std::string key = eject->ToPageId().CacheKey();
    std::lock_guard<std::mutex> lock(mu);
    if (applied_keys.insert(key).second) applied_log.push_back(key);
    return Status::OK();
  };

  net::InvalidationServerOptions first_options;
  first_options.session_epoch = 1;
  auto first = net::InvalidationServer::Start(apply, std::move(first_options));
  ASSERT_TRUE(first.ok());
  uint16_t port = (*first)->port();

  ManualClock clock;
  FaultInjector client_injector(seed, [] {
    FaultConfig faults;
    faults.drop_probability = 0.05;  // Some acks vanish pre-restart too.
    return faults;
  }());
  net::WireClientOptions client_options;
  client_options.port = port;
  client_options.io_timeout = 100 * kMicrosPerMilli;
  client_options.reconnect_backoff = 10 * kMicrosPerMilli;
  client_options.batch_max = 16;
  client_options.window_frames = 32;
  client_options.faults = &client_injector;
  net::WireInvalidationClient client(&clock, client_options);

  core::WireCacheSink sink(
      [&client](const std::string& bytes, const std::string& key) {
        return client.Deliver(key, bytes);
      },
      [&client](
          const std::vector<std::pair<std::string, std::string>>& kv) {
        std::vector<net::WireInvalidationClient::BatchEntry> entries;
        entries.reserve(kv.size());
        for (const auto& [key, bytes] : kv) entries.push_back({key, bytes});
        net::WireBatchResult sent = client.DeliverBatch(entries);
        return invalidator::BatchSendResult{sent.confirmed, sent.status};
      },
      [&client] { return client.HealthReport(); });

  core::DeliveryOptions delivery_options;
  delivery_options.max_attempts = 10000;
  delivery_options.delivery_deadline = 0;
  delivery_options.initial_backoff = 5 * kMicrosPerMilli;
  delivery_options.max_backoff = 50 * kMicrosPerMilli;
  delivery_options.jitter_fraction = 0.0;
  delivery_options.batch_max = 16;
  core::ReliableDeliveryQueue queue(&clock, delivery_options);
  queue.AddSink(&sink, "wire-cache");

  // First half of the storm reaches the first incarnation (partially —
  // one Pump flushes at most batch_max per sink pass, and faults bite).
  for (uint64_t i = 0; i < count / 2; ++i) {
    queue.SendInvalidation(tools::StormEject(seed, i),
                           tools::StormKey(seed, i));
  }
  queue.Pump();
  (*first)->Stop();

  // Second half arrives while the cache is down; the successor restarts
  // on the same port with a bumped epoch.
  for (uint64_t i = count / 2; i < count; ++i) {
    queue.SendInvalidation(tools::StormEject(seed, i),
                           tools::StormKey(seed, i));
  }
  net::InvalidationServerOptions successor_options;
  successor_options.port = port;
  successor_options.session_epoch = 2;
  auto second =
      net::InvalidationServer::Start(apply, std::move(successor_options));
  ASSERT_TRUE(second.ok());

  clock.Advance(kMicrosPerSecond);
  queue.DrainWith(&clock);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().dead_lettered, 0u);
  EXPECT_EQ(queue.stats().delivered, count);
  EXPECT_EQ(client.epochs_seen(), 2u);

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(applied_log.size(), applied_keys.size()) << "duplicate applies";
  std::vector<std::string> sorted(applied_keys.begin(), applied_keys.end());
  EXPECT_EQ(sorted, tools::StormOracle(seed, count));
}

}  // namespace
}  // namespace cacheportal
