// The capstone: real processes on a real socket. Forks the cache_node
// and invalidator_node binaries (paths injected by CMake), sustains a
// seeded eject storm through client-side injected faults, SIGKILLs the
// cache mid-storm, restarts it on the same port, and then requires the
// cache's applied log to be byte-identical to the in-process oracle —
// every key exactly once, across two cache incarnations.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/delivery_router.h"
#include "tools/storm.h"

#ifndef CACHEPORTAL_CACHE_NODE_BIN
#error "CACHEPORTAL_CACHE_NODE_BIN must be defined by the build"
#endif
#ifndef CACHEPORTAL_INVALIDATOR_NODE_BIN
#error "CACHEPORTAL_INVALIDATOR_NODE_BIN must be defined by the build"
#endif

namespace cacheportal {
namespace {

pid_t Spawn(const std::string& binary,
            const std::vector<std::string>& args) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  execv(binary.c_str(), argv.data());
  _exit(127);
}

int WaitFor(pid_t pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

// Polls `predicate` every 20ms for up to `seconds`.
bool PollFor(double seconds, const std::function<bool()>& predicate) {
  for (int i = 0; i < static_cast<int>(seconds * 50); ++i) {
    if (predicate()) return true;
    usleep(20 * 1000);
  }
  return predicate();
}

class MultiprocessWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/cacheportal_wire_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::system(("rm -rf " + dir_).c_str());
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  pid_t SpawnCache(const std::vector<std::string>& extra = {}) {
    std::vector<std::string> args = {
        "--port-file=" + Path("port.txt"),
        "--state-file=" + Path("state.txt"),
        "--applied-log=" + Path("applied.txt"),
    };
    args.insert(args.end(), extra.begin(), extra.end());
    return Spawn(CACHEPORTAL_CACHE_NODE_BIN, args);
  }

  /// A cache in the fan-out fleet: per-index state files, matching the
  /// "peer-<i>" names the invalidator's ring uses.
  pid_t SpawnPeer(int i, const std::vector<std::string>& extra = {}) {
    std::string n = std::to_string(i);
    std::vector<std::string> args = {
        "--port-file=" + Path("port" + n + ".txt"),
        "--state-file=" + Path("state" + n + ".txt"),
        "--applied-log=" + Path("applied" + n + ".txt"),
    };
    args.insert(args.end(), extra.begin(), extra.end());
    return Spawn(CACHEPORTAL_CACHE_NODE_BIN, args);
  }

  std::string dir_;
};

TEST_F(MultiprocessWireTest, CleanStormDeliversExactlyOnce) {
  pid_t cache = SpawnCache();
  ASSERT_TRUE(PollFor(5, [&] { return !ReadAll(Path("port.txt")).empty(); }))
      << "cache_node never published its port";

  pid_t invalidator = Spawn(
      CACHEPORTAL_INVALIDATOR_NODE_BIN,
      {"--port-file=" + Path("port.txt"), "--count=200", "--seed=5",
       "--report-file=" + Path("report.txt")});
  int inv_status = WaitFor(invalidator);
  EXPECT_TRUE(WIFEXITED(inv_status) && WEXITSTATUS(inv_status) == 0)
      << ReadAll(Path("report.txt"));

  kill(cache, SIGTERM);
  int cache_status = WaitFor(cache);
  EXPECT_TRUE(WIFEXITED(cache_status) && WEXITSTATUS(cache_status) == 0);

  std::vector<std::string> applied = ReadLines(Path("applied.txt"));
  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(5, 200));
}

TEST_F(MultiprocessWireTest, StormSurvivesPartitionsAndCacheRestart) {
  pid_t cache = SpawnCache();
  ASSERT_TRUE(PollFor(5, [&] { return !ReadAll(Path("port.txt")).empty(); }))
      << "cache_node never published its port";
  std::string port = ReadAll(Path("port.txt"));
  port.erase(port.find_last_not_of("\n \t") + 1);

  // Client-side faults on: drops blackhole ejects, partitions refuse
  // reconnects. The invalidator must still deliver all 600. Pinned to
  // stop-and-wait (batch=1) — this test's premise is a kill landing
  // mid-storm, and the single-message wire paces the storm slowly
  // enough for that; the batched-pipeline variant below has its own
  // restart coverage.
  pid_t invalidator = Spawn(
      CACHEPORTAL_INVALIDATOR_NODE_BIN,
      {"--port-file=" + Path("port.txt"), "--count=600", "--seed=13",
       "--batch=1", "--window=1",
       "--drop=0.05", "--partition=0.03", "--reset=0.03",
       "--drain-seconds=90", "--report-file=" + Path("report.txt")});

  // Let the storm get going, then kill the cache without warning.
  ASSERT_TRUE(PollFor(30, [&] {
    return ReadLines(Path("applied.txt")).size() >= 25;
  })) << "storm never started applying";
  kill(cache, SIGKILL);
  WaitFor(cache);
  size_t applied_at_kill = ReadLines(Path("applied.txt")).size();

  // Give the invalidator a moment to hit the dead port, then restart the
  // cache on the SAME port — epoch bumps, ledger and applied keys replay
  // from the on-disk state.
  usleep(300 * 1000);
  pid_t cache2 = SpawnCache({"--port=" + port});
  // Startup barrier before any signal can reach cache2: its second
  // epoch line proves it is past signal-handler installation.
  ASSERT_TRUE(PollFor(5, [&] {
    return ReadAll(Path("state.txt")).find("epoch 2") != std::string::npos;
  })) << "restarted cache_node never announced its epoch";

  int inv_status = WaitFor(invalidator);
  EXPECT_TRUE(WIFEXITED(inv_status) && WEXITSTATUS(inv_status) == 0)
      << "invalidator_node failed:\n"
      << ReadAll(Path("report.txt"));

  kill(cache2, SIGTERM);
  int cache2_status = WaitFor(cache2);
  EXPECT_TRUE(WIFEXITED(cache2_status) && WEXITSTATUS(cache2_status) == 0);

  // Oracle equality across both incarnations: all 600 keys, no key
  // applied twice — the (epoch, seq) ledger deduped intra-session
  // replays and the applied-key replay deduped restart replays.
  std::vector<std::string> applied = ReadLines(Path("applied.txt"));
  std::set<std::string> unique(applied.begin(), applied.end());
  EXPECT_EQ(unique.size(), applied.size()) << "duplicate applies";
  std::sort(applied.begin(), applied.end());
  EXPECT_EQ(applied, tools::StormOracle(13, 600));
  EXPECT_GT(applied.size(), applied_at_kill)
      << "no progress after the restart";

  // The second incarnation must have announced a bumped epoch.
  std::vector<std::string> state = ReadLines(Path("state.txt"));
  int epoch_lines = 0;
  for (const std::string& line : state) {
    if (line.rfind("epoch ", 0) == 0) ++epoch_lines;
  }
  EXPECT_EQ(epoch_lines, 2) << "expected two incarnations in state file";

  // The report must show a complete storm with no dead letters.
  std::string report = ReadAll(Path("report.txt"));
  EXPECT_NE(report.find("complete=1"), std::string::npos) << report;
  EXPECT_NE(report.find("dead-letters=0"), std::string::npos) << report;
  EXPECT_NE(report.find("epochs-seen=2"), std::string::npos) << report;
}

TEST_F(MultiprocessWireTest, BatchedFanOutStormSurvivesFaultsAndRestart) {
  // 1 invalidator -> 3 cache_nodes through the pipelined batched wire:
  // consistent-hash fan-out, EJECT_BATCH frames with cumulative acks,
  // server-side ack drops/resets on every node, client-side socket
  // faults, and a SIGKILL restart of one node mid-storm. Each node's
  // applied log must be byte-identical to the oracle subset the hash
  // ring assigns it — exactly once per key, across incarnations.
  const uint64_t seed = 21;
  const uint64_t count = 600;
  const int peers = 3;

  std::vector<pid_t> caches;
  for (int i = 0; i < peers; ++i) {
    caches.push_back(SpawnPeer(
        i, {"--ack-drop=0.05", "--ack-reset=0.03",
            "--fault-seed=" + std::to_string(100 + i)}));
  }
  std::vector<std::string> ports(peers);
  for (int i = 0; i < peers; ++i) {
    std::string port_file = Path("port" + std::to_string(i) + ".txt");
    ASSERT_TRUE(PollFor(5, [&] { return !ReadAll(port_file).empty(); }))
        << "cache_node " << i << " never published its port";
    ports[i] = ReadAll(port_file);
    ports[i].erase(ports[i].find_last_not_of("\n \t") + 1);
  }

  pid_t invalidator = Spawn(
      CACHEPORTAL_INVALIDATOR_NODE_BIN,
      {"--port-file=" + Path("port0.txt") + "," + Path("port1.txt") + "," +
           Path("port2.txt"),
       "--count=" + std::to_string(count), "--seed=" + std::to_string(seed),
       "--batch=64", "--window=128", "--drop=0.04", "--reset=0.03",
       "--partition=0.02", "--drain-seconds=90",
       "--report-file=" + Path("report.txt")});

  // Let the storm get going, then SIGKILL one peer without warning and
  // restart it on the SAME port (epoch bump + ledger/applied replay).
  const int victim = 1;
  std::string victim_log = Path("applied" + std::to_string(victim) + ".txt");
  ASSERT_TRUE(PollFor(30, [&] {
    return ReadLines(victim_log).size() >= 10;
  })) << "storm never started applying on the victim node";
  kill(caches[victim], SIGKILL);
  WaitFor(caches[victim]);
  usleep(300 * 1000);
  caches[victim] = SpawnPeer(
      victim, {"--port=" + ports[victim], "--ack-drop=0.05",
               "--fault-seed=" + std::to_string(200 + victim)});
  // Startup barrier before any signal can reach the restarted victim.
  ASSERT_TRUE(PollFor(5, [&] {
    return ReadAll(Path("state" + std::to_string(victim) + ".txt"))
               .find("epoch 2") != std::string::npos;
  })) << "restarted victim never announced its epoch";

  int inv_status = WaitFor(invalidator);
  EXPECT_TRUE(WIFEXITED(inv_status) && WEXITSTATUS(inv_status) == 0)
      << "invalidator_node failed:\n"
      << ReadAll(Path("report.txt"));

  for (int i = 0; i < peers; ++i) {
    kill(caches[i], SIGTERM);
    int status = WaitFor(caches[i]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "cache_node " << i << " did not exit cleanly";
  }

  // Recompute each node's expected subset with the same deterministic
  // ring the invalidator used: names "peer-0..2", FNV-1a hashing.
  core::HashRing ring;
  for (int i = 0; i < peers; ++i) {
    ring.AddNode("peer-" + std::to_string(i));
  }
  std::vector<std::vector<std::string>> expected(peers);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key = tools::StormKey(seed, i);
    std::string owner = ring.NodeFor(key);
    expected[owner.back() - '0'].push_back(key);
  }

  std::vector<std::string> all_applied;
  for (int i = 0; i < peers; ++i) {
    std::vector<std::string> applied =
        ReadLines(Path("applied" + std::to_string(i) + ".txt"));
    std::set<std::string> unique(applied.begin(), applied.end());
    EXPECT_EQ(unique.size(), applied.size())
        << "duplicate applies on node " << i;
    all_applied.insert(all_applied.end(), applied.begin(), applied.end());
    std::sort(applied.begin(), applied.end());
    std::sort(expected[i].begin(), expected[i].end());
    EXPECT_EQ(applied, expected[i])
        << "node " << i << " applied set diverges from its ring subset";
  }
  std::sort(all_applied.begin(), all_applied.end());
  EXPECT_EQ(all_applied, tools::StormOracle(seed, count));

  // The victim's state file must show both incarnations.
  std::vector<std::string> state =
      ReadLines(Path("state" + std::to_string(victim) + ".txt"));
  int epoch_lines = 0;
  for (const std::string& line : state) {
    if (line.rfind("epoch ", 0) == 0) ++epoch_lines;
  }
  EXPECT_EQ(epoch_lines, 2) << "expected two incarnations on the victim";

  std::string report = ReadAll(Path("report.txt"));
  EXPECT_NE(report.find("complete=1"), std::string::npos) << report;
  EXPECT_NE(report.find("peers=3"), std::string::npos) << report;
}

}  // namespace
}  // namespace cacheportal
