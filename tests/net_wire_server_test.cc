// InvalidationServer + WireInvalidationClient over real loopback
// sockets: handshake, ack-based resume, (epoch, seq) dedup, restart
// epoch bumps, version-mismatch refusal, corruption quarantine, and the
// slow-loris partial-frame timeout. Raw-socket sessions drive the
// protocol-violation cases the well-behaved client cannot produce.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "http/message.h"
#include "net/invalidation_server.h"
#include "net/socket_util.h"
#include "net/wire_client.h"

namespace cacheportal::net {
namespace {

http::HttpRequest Eject(const std::string& url) {
  http::HttpRequest message = *http::HttpRequest::Get(url);
  message.headers.Set("Cache-Control", "eject");
  return message;
}

/// Thread-safe record of what the server applied.
struct ApplyLog {
  std::mutex mu;
  std::vector<std::string> payloads;
  InvalidationServer::ApplyFn Fn() {
    return [this](std::string_view payload, uint64_t, uint64_t) {
      std::lock_guard<std::mutex> lock(mu);
      payloads.emplace_back(payload);
      return Status::OK();
    };
  }
  size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return payloads.size();
  }
};

/// A hand-rolled wire session for protocol-violation tests.
class RawSession {
 public:
  explicit RawSession(uint16_t port) {
    Result<int> fd = ConnectLoopback(port);
    EXPECT_TRUE(fd.ok());
    fd_ = *fd;
    SetSocketIoTimeout(fd_, 2 * kMicrosPerSecond);
  }
  ~RawSession() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(const WireFrame& frame) {
    return WriteAllBytes(fd_, EncodeFrame(frame));
  }
  bool SendRaw(const std::string& bytes) {
    return WriteAllBytes(fd_, bytes);
  }

  /// Next frame from the server; nullopt on timeout/close/corrupt.
  std::optional<WireFrame> Read() {
    char chunk[4096];
    while (true) {
      DecodeResult decoded = DecodeFrame(buffer_);
      if (decoded.outcome == DecodeOutcome::kFrame) {
        buffer_.erase(0, decoded.consumed);
        return decoded.frame;
      }
      if (decoded.outcome == DecodeOutcome::kCorrupt) return std::nullopt;
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the server has closed its end (read returns 0/EOF).
  bool ServerClosed() {
    char chunk[64];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    return n == 0;
  }

  std::optional<WireFrame> Handshake(uint32_t version = kWireProtocolVersion,
                                     uint64_t known_epoch = 0) {
    WireFrame hello;
    hello.type = FrameType::kHello;
    hello.epoch = known_epoch;
    hello.payload = EncodeHelloPayload(version, "raw-test");
    if (!Send(hello)) return std::nullopt;
    return Read();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(InvalidationServerTest, BindsEphemeralPortAndReportsIt) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());
  EXPECT_GT((*server)->port(), 0);

  // The bound port can be rebound by a successor after Stop (the
  // restart-on-same-port path SO_REUSEADDR enables).
  uint16_t port = (*server)->port();
  (*server)->Stop();
  InvalidationServerOptions options;
  options.port = port;
  auto successor = InvalidationServer::Start(log.Fn(), std::move(options));
  ASSERT_TRUE(successor.ok());
  EXPECT_EQ((*successor)->port(), port);
}

TEST(InvalidationServerTest, ClientHandshakesAndDeliversEjects) {
  ApplyLog log;
  InvalidationServerOptions options;
  options.session_epoch = 5;
  auto server = InvalidationServer::Start(log.Fn(), std::move(options));
  ASSERT_TRUE(server.ok());

  ManualClock clock;
  WireClientOptions client_options;
  client_options.port = (*server)->port();
  WireInvalidationClient client(&clock, client_options);

  std::string eject = Eject("http://edge/p?id=1").Serialize();
  EXPECT_TRUE(client.Deliver("k1", eject).ok());
  EXPECT_TRUE(client.Deliver("k2", Eject("http://edge/p?id=2").Serialize())
                  .ok());
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(client.reconnects(), 0u);
  EXPECT_EQ(client.epochs_seen(), 1u);
  EXPECT_EQ(client.acks_received(), 2u);

  ASSERT_EQ(log.size(), 2u);
  {
    std::lock_guard<std::mutex> lock(log.mu);
    EXPECT_EQ(log.payloads[0], eject);
  }
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.hellos_accepted, 1u);
  EXPECT_EQ(stats.ejects_applied, 2u);
  EXPECT_EQ(stats.ejects_duplicate, 0u);
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(5), 2u);

  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.heartbeats_sent(), 1u);
  EXPECT_EQ((*server)->stats().heartbeats_answered, 1u);
}

TEST(InvalidationServerTest, ReplayedSeqIsAckedWithoutReapply) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  std::optional<WireFrame> hello_ack = session.Handshake();
  ASSERT_TRUE(hello_ack.has_value());
  ASSERT_EQ(hello_ack->type, FrameType::kHelloAck);
  uint64_t epoch = hello_ack->epoch;

  WireFrame eject;
  eject.type = FrameType::kEject;
  eject.epoch = epoch;
  eject.seq = 1;
  eject.payload = "payload";
  ASSERT_TRUE(session.Send(eject));
  std::optional<WireFrame> ack = session.Read();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, FrameType::kAck);
  EXPECT_EQ(ack->seq, 1u);

  // The replay (lost ack) is acked again but applied exactly once.
  ASSERT_TRUE(session.Send(eject));
  ack = session.Read();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, FrameType::kAck);
  EXPECT_EQ(log.size(), 1u);
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ejects_applied, 1u);
  EXPECT_EQ(stats.ejects_duplicate, 1u);
}

TEST(InvalidationServerTest, FailedApplyIsNotRecordedAndRetryReapplies) {
  // The ApplyFn contract: a non-OK return must NOT advance the dedup
  // ledger, so the client's retry of the same (epoch, seq) is re-applied
  // rather than duplicate-acked (which would silently lose the eject).
  std::mutex mu;
  int calls = 0;
  auto flaky = [&](std::string_view, uint64_t, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    return ++calls == 1 ? Status::Internal("cache busy") : Status::OK();
  };
  auto server = InvalidationServer::Start(flaky);
  ASSERT_TRUE(server.ok());

  WireFrame eject;
  eject.type = FrameType::kEject;
  eject.epoch = 1;
  eject.seq = 1;
  eject.payload = "payload";
  {
    RawSession session((*server)->port());
    ASSERT_TRUE(session.Handshake().has_value());
    ASSERT_TRUE(session.Send(eject));
    std::optional<WireFrame> reply = session.Read();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_NE(reply->payload.find("apply failed"), std::string::npos);
    EXPECT_TRUE(session.ServerClosed());
  }
  // The failed seq is not in the ledger: the retry must apply.
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(1), 0u);
  {
    RawSession retry((*server)->port());
    std::optional<WireFrame> hello_ack = retry.Handshake();
    ASSERT_TRUE(hello_ack.has_value());
    EXPECT_EQ(hello_ack->seq, 0u);  // Resume point excludes the failure.
    ASSERT_TRUE(retry.Send(eject));
    std::optional<WireFrame> ack = retry.Read();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->type, FrameType::kAck);
    EXPECT_EQ(ack->seq, 1u);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(calls, 2);
  }
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.apply_failures, 1u);
  EXPECT_EQ(stats.ejects_applied, 1u);
  EXPECT_EQ(stats.ejects_duplicate, 0u);
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(1), 1u);
}

TEST(InvalidationServerTest, HelloAckCarriesResumePoint) {
  ApplyLog log;
  InvalidationServerOptions options;
  options.session_epoch = 3;
  options.ledger.Admit(3, 17);  // Restored: seq 17 already applied.
  auto server = InvalidationServer::Start(log.Fn(), std::move(options));
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  std::optional<WireFrame> hello_ack = session.Handshake();
  ASSERT_TRUE(hello_ack.has_value());
  EXPECT_EQ(hello_ack->epoch, 3u);
  EXPECT_EQ(hello_ack->seq, 17u);  // Resume after this.
}

TEST(InvalidationServerTest, DroppedAckLeadsToReplayAndDedup) {
  ApplyLog log;
  FaultInjector faults(/*seed=*/42);
  InvalidationServerOptions options;
  options.faults = &faults;
  auto server = InvalidationServer::Start(log.Fn(), std::move(options));
  ASSERT_TRUE(server.ok());

  ManualClock clock;
  WireClientOptions client_options;
  client_options.port = (*server)->port();
  client_options.io_timeout = 200 * kMicrosPerMilli;  // Real time.
  WireInvalidationClient client(&clock, client_options);

  ASSERT_TRUE(client.Deliver("k1", "first").ok());

  // Every server reply vanishes: the eject applies but its ack is lost,
  // so the client times out and the delivery fails retryably.
  FaultConfig drop_all;
  drop_all.drop_probability = 1.0;
  faults.SetConfig(drop_all);
  Status lost = client.Deliver("k2", "second");
  ASSERT_FALSE(lost.ok());
  EXPECT_TRUE(lost.IsUnavailable());

  // Heal, let the reconnect backoff lapse, redeliver: the client reuses
  // k2's (epoch, seq), the server dedups, and the ack finally lands.
  faults.Heal();
  clock.Advance(kMicrosPerSecond);
  ASSERT_TRUE(client.Deliver("k2", "second").ok());
  EXPECT_EQ(client.replays(), 1u);
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(log.size(), 2u);
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ejects_applied, 2u);
  EXPECT_EQ(stats.ejects_duplicate, 1u);
}

TEST(InvalidationServerTest, RestartBumpsEpochAndClientRebases) {
  ApplyLog log;
  auto first = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(first.ok());
  uint16_t port = (*first)->port();

  ManualClock clock;
  WireClientOptions client_options;
  client_options.port = port;
  client_options.io_timeout = 200 * kMicrosPerMilli;
  WireInvalidationClient client(&clock, client_options);
  ASSERT_TRUE(client.Deliver("k1", "one").ok());

  // The cache dies mid-storm...
  (*first)->Stop();
  Status down = client.Deliver("k2", "two");
  ASSERT_FALSE(down.ok());
  EXPECT_TRUE(down.IsUnavailable());

  // ...and its successor restarts on the same port with a bumped epoch
  // (what cache_node does by persisting the epoch line).
  InvalidationServerOptions successor_options;
  successor_options.port = port;
  successor_options.session_epoch = 2;
  auto second =
      InvalidationServer::Start(log.Fn(), std::move(successor_options));
  ASSERT_TRUE(second.ok());

  clock.Advance(kMicrosPerSecond);
  ASSERT_TRUE(client.Deliver("k2", "two").ok());
  EXPECT_EQ(client.epochs_seen(), 2u);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ((*second)->stats().ejects_applied, 1u);
  EXPECT_EQ((*second)->session_epoch(), 2u);
}

TEST(InvalidationServerTest, VersionMismatchIsRefusedExplicitly) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  std::optional<WireFrame> reply = session.Handshake(/*version=*/99);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->payload.find("version mismatch"), std::string::npos);
  EXPECT_TRUE(session.ServerClosed());
  EXPECT_EQ((*server)->stats().version_mismatches, 1u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(InvalidationServerTest, CorruptStreamIsQuarantinedLoudly) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  // Garbage from the first byte (an HTTP client on the wrong port).
  {
    RawSession session((*server)->port());
    ASSERT_TRUE(session.SendRaw("GET / HTTP/1.1\r\n\r\n"));
    std::optional<WireFrame> reply = session.Read();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_NE(reply->payload.find("quarantined"), std::string::npos);
    EXPECT_TRUE(session.ServerClosed());
  }
  // A bit-flipped frame after a clean handshake.
  {
    RawSession session((*server)->port());
    ASSERT_TRUE(session.Handshake().has_value());
    WireFrame eject;
    eject.type = FrameType::kEject;
    eject.epoch = 1;
    eject.seq = 1;
    eject.payload = "payload";
    std::string wire = EncodeFrame(eject);
    wire[kFrameHeaderSize] ^= 0x40;  // Flip a payload bit: CRC mismatch.
    ASSERT_TRUE(session.SendRaw(wire));
    std::optional<WireFrame> reply = session.Read();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_NE(reply->payload.find("quarantined"), std::string::npos);
  }
  EXPECT_EQ((*server)->stats().frames_quarantined, 2u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(InvalidationServerTest, EjectBeforeHelloIsQuarantined) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  WireFrame eject;
  eject.type = FrameType::kEject;
  eject.epoch = 1;
  eject.seq = 1;
  ASSERT_TRUE(session.Send(eject));
  std::optional<WireFrame> reply = session.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ((*server)->stats().frames_quarantined, 1u);
}

TEST(InvalidationServerTest, StaleEpochEjectIsRejected) {
  ApplyLog log;
  InvalidationServerOptions options;
  options.session_epoch = 4;
  auto server = InvalidationServer::Start(log.Fn(), std::move(options));
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  ASSERT_TRUE(session.Handshake().has_value());
  WireFrame eject;
  eject.type = FrameType::kEject;
  eject.epoch = 3;  // Minted against the previous incarnation.
  eject.seq = 9;
  ASSERT_TRUE(session.Send(eject));
  std::optional<WireFrame> reply = session.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->payload.find("stale epoch"), std::string::npos);
  EXPECT_EQ((*server)->stats().stale_epoch_frames, 1u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(InvalidationServerTest, BatchAppliesAllEntriesWithOneCumulativeAck) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  std::optional<WireFrame> hello_ack = session.Handshake();
  ASSERT_TRUE(hello_ack.has_value());
  uint64_t epoch = hello_ack->epoch;

  WireFrame batch;
  batch.type = FrameType::kEjectBatch;
  batch.epoch = epoch;
  batch.seq = 1;  // Entries carry seqs 1, 2, 3.
  batch.payload = EncodeEjectBatchPayload({"e1", "e2", "e3"});
  ASSERT_TRUE(session.Send(batch));
  std::optional<WireFrame> ack = session.Read();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, FrameType::kAck);
  EXPECT_EQ(ack->seq, 3u);  // One cumulative ack for the whole run.

  ASSERT_EQ(log.size(), 3u);
  {
    std::lock_guard<std::mutex> lock(log.mu);
    EXPECT_EQ(log.payloads, (std::vector<std::string>{"e1", "e2", "e3"}));
  }
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ejects_applied, 3u);
  EXPECT_EQ(stats.batch_frames, 1u);
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(epoch), 3u);
}

TEST(InvalidationServerTest, ReplayedBatchIsDupAckedWithoutReapply) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  std::optional<WireFrame> hello_ack = session.Handshake();
  ASSERT_TRUE(hello_ack.has_value());

  WireFrame batch;
  batch.type = FrameType::kEjectBatch;
  batch.epoch = hello_ack->epoch;
  batch.seq = 1;
  batch.payload = EncodeEjectBatchPayload({"e1", "e2"});
  ASSERT_TRUE(session.Send(batch));
  ASSERT_TRUE(session.Read().has_value());

  // The replay (lost ack) is acked again but applied exactly once.
  ASSERT_TRUE(session.Send(batch));
  std::optional<WireFrame> ack = session.Read();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, FrameType::kAck);
  EXPECT_EQ(ack->seq, 2u);
  EXPECT_EQ(log.size(), 2u);
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ejects_applied, 2u);
  EXPECT_EQ(stats.ejects_duplicate, 2u);
  EXPECT_EQ(stats.batch_frames, 2u);
}

TEST(InvalidationServerTest, OverlappingBatchAppliesOnlyFreshSuffix) {
  // A replayed run that extends past the old high-water mark (the client
  // regrouped after a partial ack): the prefix dedups, the suffix
  // applies, one ack covers everything.
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  std::optional<WireFrame> hello_ack = session.Handshake();
  ASSERT_TRUE(hello_ack.has_value());
  uint64_t epoch = hello_ack->epoch;

  WireFrame first;
  first.type = FrameType::kEjectBatch;
  first.epoch = epoch;
  first.seq = 1;
  first.payload = EncodeEjectBatchPayload({"e1", "e2", "e3"});
  ASSERT_TRUE(session.Send(first));
  ASSERT_TRUE(session.Read().has_value());

  WireFrame overlap;
  overlap.type = FrameType::kEjectBatch;
  overlap.epoch = epoch;
  overlap.seq = 2;  // Seqs 2..5: 2 and 3 are dups, 4 and 5 are fresh.
  overlap.payload = EncodeEjectBatchPayload({"e2", "e3", "e4", "e5"});
  ASSERT_TRUE(session.Send(overlap));
  std::optional<WireFrame> ack = session.Read();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->seq, 5u);
  EXPECT_EQ(log.size(), 5u);
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ejects_applied, 5u);
  EXPECT_EQ(stats.ejects_duplicate, 2u);
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(epoch), 5u);
}

TEST(InvalidationServerTest, MalformedBatchPayloadIsQuarantined) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  ASSERT_TRUE(session.Handshake().has_value());
  WireFrame batch;
  batch.type = FrameType::kEjectBatch;
  batch.epoch = 1;
  batch.seq = 1;
  batch.payload = "not a batch payload";  // Valid frame, garbage inside.
  ASSERT_TRUE(session.Send(batch));
  std::optional<WireFrame> reply = session.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->payload.find("quarantined"), std::string::npos);
  EXPECT_TRUE(session.ServerClosed());
  EXPECT_EQ((*server)->stats().frames_quarantined, 1u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(InvalidationServerTest, BatchBeforeHelloIsQuarantined) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  WireFrame batch;
  batch.type = FrameType::kEjectBatch;
  batch.epoch = 1;
  batch.seq = 1;
  batch.payload = EncodeEjectBatchPayload({"e1"});
  ASSERT_TRUE(session.Send(batch));
  std::optional<WireFrame> reply = session.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ((*server)->stats().frames_quarantined, 1u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(InvalidationServerTest, StaleEpochBatchIsRejected) {
  ApplyLog log;
  InvalidationServerOptions options;
  options.session_epoch = 4;
  auto server = InvalidationServer::Start(log.Fn(), std::move(options));
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  ASSERT_TRUE(session.Handshake().has_value());
  WireFrame batch;
  batch.type = FrameType::kEjectBatch;
  batch.epoch = 3;  // Minted against the previous incarnation.
  batch.seq = 1;
  batch.payload = EncodeEjectBatchPayload({"e1", "e2"});
  ASSERT_TRUE(session.Send(batch));
  std::optional<WireFrame> reply = session.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->payload.find("stale epoch"), std::string::npos);
  EXPECT_EQ((*server)->stats().stale_epoch_frames, 1u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(InvalidationServerTest, MidBatchApplyFailureRecordsPrefixAndRetryResumes) {
  // An apply failure mid-batch must NOT produce the cumulative ack (it
  // would claim the whole run) but MUST keep the applied prefix in the
  // ledger, so the retry dedups the prefix and applies only the rest.
  std::mutex mu;
  int calls = 0;
  std::vector<std::string> applied;
  auto flaky = [&](std::string_view payload, uint64_t, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    if (++calls == 2) return Status::Internal("cache busy");
    applied.emplace_back(payload);
    return Status::OK();
  };
  auto server = InvalidationServer::Start(flaky);
  ASSERT_TRUE(server.ok());

  WireFrame batch;
  batch.type = FrameType::kEjectBatch;
  batch.epoch = 1;
  batch.seq = 1;
  batch.payload = EncodeEjectBatchPayload({"e1", "e2", "e3"});
  {
    RawSession session((*server)->port());
    ASSERT_TRUE(session.Handshake().has_value());
    ASSERT_TRUE(session.Send(batch));
    std::optional<WireFrame> reply = session.Read();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_NE(reply->payload.find("apply failed"), std::string::npos);
    EXPECT_TRUE(session.ServerClosed());
  }
  // Only the pre-failure prefix is recorded.
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(1), 1u);
  {
    RawSession retry((*server)->port());
    std::optional<WireFrame> hello_ack = retry.Handshake();
    ASSERT_TRUE(hello_ack.has_value());
    EXPECT_EQ(hello_ack->seq, 1u);  // Resume point: the applied prefix.
    ASSERT_TRUE(retry.Send(batch));
    std::optional<WireFrame> ack = retry.Read();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->type, FrameType::kAck);
    EXPECT_EQ(ack->seq, 3u);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(calls, 4);  // e1 ok, e2 fail, then e2 and e3 on retry.
    EXPECT_EQ(applied, (std::vector<std::string>{"e1", "e2", "e3"}));
  }
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.apply_failures, 1u);
  EXPECT_EQ(stats.ejects_applied, 3u);
  EXPECT_EQ(stats.ejects_duplicate, 1u);
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(1), 3u);
}

TEST(WireClientTest, DeliverBatchPipelinesFramesAndConfirmsAll) {
  ApplyLog log;
  auto server = InvalidationServer::Start(log.Fn());
  ASSERT_TRUE(server.ok());

  ManualClock clock;
  WireClientOptions client_options;
  client_options.port = (*server)->port();
  client_options.batch_max = 2;  // 5 entries -> 3 frames in flight.
  client_options.window_frames = 8;
  WireInvalidationClient client(&clock, client_options);

  // BatchEntry holds views, so the backing strings must outlive the
  // DeliverBatch call — owned vectors, not StrCat temporaries.
  std::vector<std::string> keys;
  std::vector<std::string> payloads;
  for (int i = 0; i < 5; ++i) {
    keys.push_back(StrCat("k", i));
    payloads.push_back(StrCat("payload-", i));
  }
  std::vector<WireInvalidationClient::BatchEntry> entries;
  for (int i = 0; i < 5; ++i) {
    entries.push_back({keys[i], payloads[i]});
  }
  WireBatchResult sent = client.DeliverBatch(entries);
  EXPECT_TRUE(sent.status.ok()) << sent.status.ToString();
  EXPECT_EQ(sent.confirmed, 5u);
  EXPECT_EQ(client.batch_frames_sent(), 2u);  // Two full runs of 2...
  EXPECT_EQ(client.batched_entries(), 4u);
  EXPECT_EQ(log.size(), 5u);
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.ejects_applied, 5u);
  EXPECT_EQ(stats.batch_frames, 2u);  // ...plus one singleton kEject.

  // Everything acked: a follow-up batch continues the seq run on the
  // same connection.
  WireBatchResult more = client.DeliverBatch(
      {{"k5", "payload-5"}, {"k6", "payload-6"}});
  EXPECT_TRUE(more.status.ok());
  EXPECT_EQ(more.confirmed, 2u);
  EXPECT_EQ(client.connects(), 1u);  // Still the first connection.
  EXPECT_EQ(log.size(), 7u);
  EXPECT_EQ((*server)->ledger_snapshot().last_applied(1), 7u);
}

TEST(WireClientTest, PingLatchesFatalOnVersionMismatchError) {
  // A hand-rolled server that handshakes cleanly, then answers the first
  // heartbeat with an ERROR carrying "version mismatch" (a mid-session
  // downgrade). Ping must latch this as fatal exactly like Deliver and
  // ConnectLocked do — retrying a peer speaking another protocol can
  // never succeed.
  auto listener = BindLoopbackListener(/*port=*/0, /*backlog=*/1);
  ASSERT_TRUE(listener.ok());
  std::thread server([fd = listener->fd] {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) return;
    std::string buffer;
    char chunk[4096];
    auto read_frame = [&]() -> std::optional<WireFrame> {
      while (true) {
        DecodeResult decoded = DecodeFrame(buffer);
        if (decoded.outcome == DecodeOutcome::kFrame) {
          buffer.erase(0, decoded.consumed);
          return decoded.frame;
        }
        if (decoded.outcome == DecodeOutcome::kCorrupt) return std::nullopt;
        ssize_t n = ::read(conn, chunk, sizeof(chunk));
        if (n <= 0) return std::nullopt;
        buffer.append(chunk, static_cast<size_t>(n));
      }
    };
    if (read_frame().has_value()) {  // HELLO.
      WireFrame hello_ack;
      hello_ack.type = FrameType::kHelloAck;
      hello_ack.epoch = 1;
      hello_ack.payload = EncodeHelloAckPayload(kWireProtocolVersion);
      WriteAllBytes(conn, EncodeFrame(hello_ack));
      if (read_frame().has_value()) {  // HEARTBEAT.
        WireFrame error;
        error.type = FrameType::kError;
        error.payload = "version mismatch: server speaks 2";
        WriteAllBytes(conn, EncodeFrame(error));
      }
    }
    ::close(conn);
  });

  ManualClock clock;
  WireClientOptions options;
  options.port = listener->port;
  options.io_timeout = 2 * kMicrosPerSecond;
  WireInvalidationClient client(&clock, options);
  Status ping = client.Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_TRUE(ping.IsNotSupported());
  EXPECT_FALSE(client.connected());
  // Latched: every later call fails fatally WITHOUT reconnecting.
  EXPECT_TRUE(client.Ping().IsNotSupported());
  EXPECT_TRUE(client.Deliver("k", "payload").IsNotSupported());
  EXPECT_EQ(client.connects(), 1u);
  server.join();
  ::close(listener->fd);
}

TEST(InvalidationServerTest, SlowLorisPartialFrameTimesOutQuietly) {
  ApplyLog log;
  InvalidationServerOptions options;
  options.io_timeout = 100 * kMicrosPerMilli;  // Real time.
  auto server = InvalidationServer::Start(log.Fn(), std::move(options));
  ASSERT_TRUE(server.ok());

  RawSession session((*server)->port());
  ASSERT_TRUE(session.Handshake().has_value());
  // Half an eject frame, then silence: a torn frame is NOT corruption —
  // the connection is dropped and counted, but not quarantined.
  WireFrame eject;
  eject.type = FrameType::kEject;
  eject.epoch = 1;
  eject.seq = 1;
  eject.payload = "payload";
  std::string wire = EncodeFrame(eject);
  ASSERT_TRUE(session.SendRaw(wire.substr(0, wire.size() / 2)));
  EXPECT_TRUE(session.ServerClosed());  // Blocks until the timeout fires.
  InvalidationServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.partial_frame_timeouts, 1u);
  EXPECT_EQ(stats.frames_quarantined, 0u);
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace cacheportal::net
