// Frame-codec corpus for the invalidation wire (net/wire.h): the same
// adversarial treatment tests/storage_wal_test.cc gives WAL segments —
// truncation at every byte boundary must read as "need more", any
// single-bit flip must never decode as a valid frame, and the resume
// ledger must dedup replays and survive an encode/decode round trip.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"

namespace cacheportal::net {
namespace {

WireFrame SampleFrame() {
  WireFrame frame;
  frame.type = FrameType::kEject;
  frame.epoch = 7;
  frame.seq = 42;
  frame.payload = "GET /page?id=1 HTTP/1.1\r\nCache-Control: eject\r\n\r\n";
  return frame;
}

TEST(WireFrameTest, RoundTripsEveryFrameType) {
  for (uint8_t type = 1; type <= 8; ++type) {
    WireFrame frame;
    frame.type = static_cast<FrameType>(type);
    frame.epoch = 0x0123456789abcdefULL;
    frame.seq = 0xfedcba9876543210ULL;
    frame.payload = std::string("payload-") + static_cast<char>('0' + type);
    DecodeResult decoded = DecodeFrame(EncodeFrame(frame));
    ASSERT_EQ(decoded.outcome, DecodeOutcome::kFrame) << int(type);
    EXPECT_EQ(decoded.frame.type, frame.type);
    EXPECT_EQ(decoded.frame.epoch, frame.epoch);
    EXPECT_EQ(decoded.frame.seq, frame.seq);
    EXPECT_EQ(decoded.frame.payload, frame.payload);
    EXPECT_EQ(decoded.consumed, kFrameHeaderSize + frame.payload.size());
  }
}

TEST(WireFrameTest, RoundTripsEmptyAndBinaryPayloads) {
  WireFrame empty;
  empty.type = FrameType::kHeartbeat;
  DecodeResult decoded = DecodeFrame(EncodeFrame(empty));
  ASSERT_EQ(decoded.outcome, DecodeOutcome::kFrame);
  EXPECT_TRUE(decoded.frame.payload.empty());

  WireFrame binary = SampleFrame();
  binary.payload = std::string("\x00\xff\r\n\x01CPW1", 9);  // Embedded magic.
  decoded = DecodeFrame(EncodeFrame(binary));
  ASSERT_EQ(decoded.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(decoded.frame.payload, binary.payload);
}

TEST(WireFrameTest, DecodesBackToBackFramesFromOneBuffer) {
  WireFrame first = SampleFrame();
  WireFrame second = SampleFrame();
  second.seq = 43;
  second.payload = "second";
  std::string buffer = EncodeFrame(first);
  AppendFrame(&buffer, second);

  DecodeResult one = DecodeFrame(buffer);
  ASSERT_EQ(one.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(one.frame.seq, 42u);
  DecodeResult two = DecodeFrame(
      std::string_view(buffer).substr(one.consumed));
  ASSERT_EQ(two.outcome, DecodeOutcome::kFrame);
  EXPECT_EQ(two.frame.seq, 43u);
  EXPECT_EQ(two.frame.payload, "second");
}

TEST(WireFrameTest, TruncationAtEveryBoundaryNeedsMore) {
  // A prefix of a valid frame is a torn frame (peer mid-write), never
  // corruption: every cut point must say kNeedMore, because more bytes
  // genuinely could complete it.
  std::string wire = EncodeFrame(SampleFrame());
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    DecodeResult decoded = DecodeFrame(std::string_view(wire).substr(0, cut));
    EXPECT_EQ(decoded.outcome, DecodeOutcome::kNeedMore) << "cut=" << cut;
  }
}

TEST(WireFrameTest, SingleBitFlipsNeverDecodeAsTheSameFrame) {
  // CRC coverage: flipping any bit of the covered region (type, epoch,
  // seq, payload) must be detected as corruption; flipping length or crc
  // bytes must corrupt or (for length bits that enlarge the frame)
  // starve as kNeedMore — never yield a valid frame with wrong content.
  WireFrame frame = SampleFrame();
  std::string wire = EncodeFrame(frame);
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      DecodeResult decoded = DecodeFrame(flipped);
      if (decoded.outcome == DecodeOutcome::kFrame) {
        // Only acceptable if the frame still matches (impossible for a
        // real flip, but keep the assertion precise).
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " decoded as a valid frame";
      }
    }
  }
}

TEST(WireFrameTest, ForeignMagicIsCorruptImmediately) {
  // An HTTP client (or garbage) connecting to the wire port must be
  // rejected on the first bytes, not after a header's worth accumulates.
  DecodeResult decoded = DecodeFrame("GET / HTTP/1.1\r\n");
  EXPECT_EQ(decoded.outcome, DecodeOutcome::kCorrupt);
  EXPECT_EQ(DecodeFrame("X").outcome, DecodeOutcome::kCorrupt);
  EXPECT_EQ(DecodeFrame("CPX").outcome, DecodeOutcome::kCorrupt);
  // A true prefix of the magic is still potentially a frame.
  EXPECT_EQ(DecodeFrame("CPW").outcome, DecodeOutcome::kNeedMore);
  EXPECT_EQ(DecodeFrame("CPW2").outcome, DecodeOutcome::kCorrupt);
}

TEST(WireFrameTest, OversizedLengthPrefixIsCorruptNotAllocation) {
  // An absurd length must be rejected from the header alone — waiting
  // for (or allocating) 4 GiB of payload is the DoS this guards.
  std::string wire = EncodeFrame(SampleFrame());
  wire[4] = '\xff';
  wire[5] = '\xff';
  wire[6] = '\xff';
  wire[7] = '\xff';
  DecodeResult decoded = DecodeFrame(wire);
  EXPECT_EQ(decoded.outcome, DecodeOutcome::kCorrupt);

  // Just past the cap: corrupt. At the cap: merely incomplete.
  WireFrame frame = SampleFrame();
  std::string header_only = EncodeFrame(frame).substr(0, kFrameHeaderSize);
  header_only[4] = static_cast<char>((kMaxFramePayload + 1) & 0xff);
  header_only[5] = static_cast<char>(((kMaxFramePayload + 1) >> 8) & 0xff);
  header_only[6] = static_cast<char>(((kMaxFramePayload + 1) >> 16) & 0xff);
  header_only[7] = static_cast<char>(((kMaxFramePayload + 1) >> 24) & 0xff);
  EXPECT_EQ(DecodeFrame(header_only).outcome, DecodeOutcome::kCorrupt);
  header_only[4] = static_cast<char>(kMaxFramePayload & 0xff);
  header_only[5] = static_cast<char>((kMaxFramePayload >> 8) & 0xff);
  header_only[6] = static_cast<char>((kMaxFramePayload >> 16) & 0xff);
  header_only[7] = static_cast<char>((kMaxFramePayload >> 24) & 0xff);
  EXPECT_EQ(DecodeFrame(header_only).outcome, DecodeOutcome::kNeedMore);
}

TEST(WireFrameTest, UnknownFrameTypeIsCorrupt) {
  WireFrame frame = SampleFrame();
  std::string wire = EncodeFrame(frame);
  // Type byte is CRC-covered, so patch both type and a recomputed CRC by
  // re-encoding with a raw out-of-range type.
  for (uint8_t bad_type : {uint8_t{0}, uint8_t{9}, uint8_t{255}}) {
    WireFrame patched = frame;
    patched.type = static_cast<FrameType>(bad_type);
    DecodeResult decoded = DecodeFrame(EncodeFrame(patched));
    EXPECT_EQ(decoded.outcome, DecodeOutcome::kCorrupt)
        << "type=" << int(bad_type);
  }
}

TEST(EjectBatchPayloadTest, RoundTripsTypicalAndBinaryEntries) {
  std::vector<std::string> entries = {
      "GET /a?id=1 HTTP/1.1\r\nCache-Control: eject\r\n\r\n",
      "",  // An empty entry is legal at this layer.
      std::string("\x00\xff\r\nCPW1", 8),  // Binary, embedded magic.
      std::string(1000, 'x'),
  };
  // The parsed views borrow from the blob, so it must be a named local
  // that outlives the assertions (not a temporary).
  std::string blob = EncodeEjectBatchPayload(
      std::vector<std::string_view>(entries.begin(), entries.end()));
  Result<std::vector<std::string_view>> parsed = ParseEjectBatchPayload(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*parsed)[i], entries[i]) << "entry " << i;
  }

  std::string single_blob = EncodeEjectBatchPayload({"one"});
  parsed = ParseEjectBatchPayload(single_blob);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0], "one");
}

TEST(EjectBatchPayloadTest, RejectsEmptyZeroCountAndAbsurdCount) {
  EXPECT_FALSE(ParseEjectBatchPayload("").ok());
  EXPECT_FALSE(ParseEjectBatchPayload("abc").ok());  // Short of a count.
  // count = 0: a batch frame with nothing in it is malformed, not empty.
  EXPECT_FALSE(
      ParseEjectBatchPayload(std::string("\x00\x00\x00\x00", 4)).ok());
  // count = 2^32-1: must reject by bound-check, not by allocating.
  EXPECT_FALSE(
      ParseEjectBatchPayload(std::string("\xff\xff\xff\xff", 4)).ok());
  // count just over the cap.
  std::string over(4, '\0');
  uint32_t count = kMaxBatchEntries + 1;
  for (int i = 0; i < 4; ++i) over[i] = static_cast<char>(count >> (8 * i));
  EXPECT_FALSE(ParseEjectBatchPayload(over).ok());
}

TEST(EjectBatchPayloadTest, TruncationAtEveryBoundaryIsParseError) {
  // Inside a decoded frame there is no "more bytes coming": the frame
  // length already bounded the payload, so any cut is corruption.
  std::string payload =
      EncodeEjectBatchPayload({"alpha", "", "gamma-longer-entry"});
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::string prefix = payload.substr(0, cut);
    Result<std::vector<std::string_view>> parsed =
        ParseEjectBatchPayload(prefix);
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
  }
  // Trailing garbage after the last entry is equally malformed.
  EXPECT_FALSE(ParseEjectBatchPayload(payload + "x").ok());
}

TEST(EjectBatchFrameTest, TruncationAtEveryBoundaryNeedsMore) {
  WireFrame frame;
  frame.type = FrameType::kEjectBatch;
  frame.epoch = 3;
  frame.seq = 100;
  frame.payload = EncodeEjectBatchPayload({"first", "second", "third"});
  std::string wire = EncodeFrame(frame);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    DecodeResult decoded = DecodeFrame(std::string_view(wire).substr(0, cut));
    EXPECT_EQ(decoded.outcome, DecodeOutcome::kNeedMore) << "cut=" << cut;
  }
  DecodeResult whole = DecodeFrame(wire);
  ASSERT_EQ(whole.outcome, DecodeOutcome::kFrame);
  Result<std::vector<std::string_view>> parsed =
      ParseEjectBatchPayload(whole.frame.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
}

TEST(EjectBatchFrameTest, SingleBitFlipsNeverDecodeAsTheSameFrame) {
  WireFrame frame;
  frame.type = FrameType::kEjectBatch;
  frame.epoch = 9;
  frame.seq = 7;
  frame.payload = EncodeEjectBatchPayload({"entry-a", "entry-b"});
  std::string wire = EncodeFrame(frame);
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      DecodeResult decoded = DecodeFrame(flipped);
      if (decoded.outcome == DecodeOutcome::kFrame) {
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " decoded as a valid frame";
      }
    }
  }
}

TEST(WireHandshakeTest, HelloPayloadRoundTrips) {
  std::string payload = EncodeHelloPayload(3, "edge-17");
  Result<HelloInfo> info = ParseHelloPayload(payload);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 3u);
  EXPECT_EQ(info->client_id, "edge-17");

  EXPECT_FALSE(ParseHelloPayload("").ok());
  EXPECT_FALSE(ParseHelloPayload("cachewire").ok());
  EXPECT_FALSE(ParseHelloPayload("cachewire x edge").ok());
  EXPECT_FALSE(ParseHelloPayload("otherproto 1 edge").ok());

  Result<uint32_t> version = ParseHelloAckPayload(EncodeHelloAckPayload(1));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);
  EXPECT_FALSE(ParseHelloAckPayload("cachewire one").ok());
}

TEST(ResumeLedgerTest, DedupsDuplicatesAndOutOfOrderSeqs) {
  ResumeLedger ledger;
  EXPECT_EQ(ledger.Admit(1, 1), ResumeLedger::Verdict::kApply);
  EXPECT_EQ(ledger.Admit(1, 2), ResumeLedger::Verdict::kApply);
  // Exact replay.
  EXPECT_EQ(ledger.Admit(1, 2), ResumeLedger::Verdict::kDuplicate);
  // Out-of-order: below the high-water mark counts as already seen (the
  // client assigns seqs monotonically, so a lower seq is a stale replay).
  EXPECT_EQ(ledger.Admit(1, 1), ResumeLedger::Verdict::kDuplicate);
  EXPECT_EQ(ledger.Admit(1, 5), ResumeLedger::Verdict::kApply);
  EXPECT_EQ(ledger.last_applied(1), 5u);
  // Epochs are independent dedup domains.
  EXPECT_EQ(ledger.Admit(2, 1), ResumeLedger::Verdict::kApply);
  EXPECT_EQ(ledger.last_applied(2), 1u);
  EXPECT_EQ(ledger.last_applied(99), 0u);
}

TEST(ResumeLedgerTest, EncodeDecodeRoundTrips) {
  ResumeLedger ledger;
  ledger.Admit(1, 10);
  ledger.Admit(2, 3);
  ledger.Admit(40, 7);

  Result<ResumeLedger> decoded = ResumeLedger::Decode(ledger.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->entries(), ledger.entries());
  EXPECT_EQ(decoded->Admit(1, 10), ResumeLedger::Verdict::kDuplicate);
  EXPECT_EQ(decoded->Admit(1, 11), ResumeLedger::Verdict::kApply);
}

TEST(ResumeLedgerTest, DecodeRejectsCorruptBlobs) {
  EXPECT_FALSE(ResumeLedger::Decode("").ok());
  EXPECT_FALSE(ResumeLedger::Decode("something else").ok());
  // Truncated: no end marker.
  EXPECT_FALSE(ResumeLedger::Decode("resume-ledger 1\n1 10\n").ok());
  EXPECT_FALSE(ResumeLedger::Decode("resume-ledger 1\n1 x\nend\n").ok());
  EXPECT_FALSE(ResumeLedger::Decode("resume-ledger 1\n1 2 3\nend\n").ok());
}

}  // namespace
}  // namespace cacheportal::net
