#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/logging.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "sim/metrics.h"
#include "sniffer/qiurl_map.h"
#include "sniffer/request_logger.h"

namespace cacheportal {
namespace {

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

TEST(LoggingTest, LevelThresholdRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped silently (no crash).
  LogMessage(LogLevel::kDebug, "dropped");
  LogMessage(LogLevel::kError, "emitted to stderr");
  SetLogLevel(original);
}

// ---------------------------------------------------------------------
// Invalidator stats report
// ---------------------------------------------------------------------

TEST(StatsReportTest, ContainsCountersAndTypes) {
  ManualClock clock;
  db::Database db(&clock);
  db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}})).ok();
  sniffer::QiUrlMap map;
  invalidator::Invalidator inv(&db, &map, &clock, {});
  class CountingSink : public invalidator::InvalidationSink {
   public:
    Status SendInvalidation(const http::HttpRequest&,
                            const std::string&) override {
      return Status::OK();
    }
  } sink;
  inv.AddSink(&sink);
  inv.RegisterQueryType("by-x", "SELECT * FROM T WHERE x = $1").ok();
  map.Add("SELECT * FROM T WHERE x = 5", "shop/p?##", "/r", 0);
  db.ExecuteSql("INSERT INTO T VALUES (5)").value();
  inv.RunCycle().value();

  std::string report = inv.StatsReport();
  EXPECT_NE(report.find("cycles=1"), std::string::npos) << report;
  EXPECT_NE(report.find("pages-invalidated=1"), std::string::npos);
  // Regression: messages-sent was silently missing from the report even
  // while the counter ticked.
  EXPECT_EQ(inv.stats().messages_sent, 1u);
  EXPECT_NE(report.find("messages-sent=1"), std::string::npos) << report;
  EXPECT_NE(report.find("type 'by-x'"), std::string::npos);
  EXPECT_NE(report.find("inval-ratio=1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Per-servlet request-logger stats
// ---------------------------------------------------------------------

TEST(ServletStatsTest, CountsRewriteOutcomes) {
  ManualClock clock;
  sniffer::RequestLog log;
  sniffer::RequestLogger logger(&log, &clock);
  server::ServletConfig sensitive;
  sensitive.name = "ticker";
  sensitive.temporal_sensitivity = 1;  // Tighter than any cycle.
  logger.RegisterServlet(sensitive);

  auto req = http::HttpRequest::Get("http://s/x");

  // Dynamic page (no directive): rewritten to cacheable.
  uint64_t t1 = logger.BeforeService("pages", *req);
  http::HttpResponse r1 = http::HttpResponse::Ok("x");
  logger.AfterService(t1, "pages", *req, &r1);

  // Explicitly cacheable: untouched.
  uint64_t t2 = logger.BeforeService("pages", *req);
  http::HttpResponse r2 = http::HttpResponse::Ok("x");
  http::CacheControl cc;
  cc.is_public = true;
  r2.SetCacheControl(cc);
  logger.AfterService(t2, "pages", *req, &r2);

  // Temporally sensitive servlet: kept non-cacheable.
  uint64_t t3 = logger.BeforeService("ticker", *req);
  http::HttpResponse r3 = http::HttpResponse::Ok("x");
  logger.AfterService(t3, "ticker", *req, &r3);

  sniffer::RequestLogger::ServletStats pages = logger.StatsFor("pages");
  EXPECT_EQ(pages.requests, 2u);
  EXPECT_EQ(pages.rewritten_cacheable, 1u);
  EXPECT_EQ(pages.already_cacheable, 1u);
  EXPECT_EQ(pages.kept_non_cacheable, 0u);

  sniffer::RequestLogger::ServletStats ticker = logger.StatsFor("ticker");
  EXPECT_EQ(ticker.requests, 1u);
  EXPECT_EQ(ticker.kept_non_cacheable, 1u);

  // Unknown servlet: zeros.
  EXPECT_EQ(logger.StatsFor("nope").requests, 0u);
}

// ---------------------------------------------------------------------
// Sim metrics helpers
// ---------------------------------------------------------------------

TEST(SimMetricsTest, MeanAccumulator) {
  sim::MeanAccumulator acc;
  EXPECT_EQ(acc.Mean(), 0.0);
  acc.Add(10);
  acc.Add(20);
  EXPECT_DOUBLE_EQ(acc.Mean(), 15.0);
  EXPECT_EQ(acc.count, 2u);
}

TEST(SimMetricsTest, RecordsSplitHitAndMiss) {
  sim::SimMetrics metrics;
  metrics.RecordMiss(sim::RequestClass::kLight, 100.0, 40.0);
  metrics.RecordHit(sim::RequestClass::kHeavy, 10.0);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_DOUBLE_EQ(metrics.miss_db.Mean(), 40.0);
  EXPECT_DOUBLE_EQ(metrics.miss_response.Mean(), 100.0);
  EXPECT_DOUBLE_EQ(metrics.hit_response.Mean(), 10.0);
  EXPECT_DOUBLE_EQ(metrics.response.Mean(), 55.0);
  EXPECT_EQ(metrics.per_class[0].count, 1u);
  EXPECT_EQ(metrics.per_class[2].count, 1u);
  std::string row = metrics.ToRowString();
  EXPECT_NE(row.find("missDB"), std::string::npos);
}

TEST(SimMetricsTest, Percentiles) {
  sim::SimMetrics metrics;
  EXPECT_EQ(metrics.Percentile(0.5), 0.0);  // No samples.
  for (int i = 1; i <= 100; ++i) {
    metrics.RecordHit(sim::RequestClass::kLight, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(metrics.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(metrics.Percentile(1.0), 100.0);
  EXPECT_NEAR(metrics.Percentile(0.5), 50.5, 0.6);
  EXPECT_NEAR(metrics.Percentile(0.95), 95.0, 1.2);
}

TEST(SimNamesTest, EnumNames) {
  EXPECT_STREQ(sim::RequestClassName(sim::RequestClass::kLight), "light");
  EXPECT_STREQ(sim::RequestClassName(sim::RequestClass::kHeavy), "heavy");
  EXPECT_NE(std::string(sim::SiteConfigName(sim::SiteConfig::kWebCache))
                .find("III"),
            std::string::npos);
}

}  // namespace
}  // namespace cacheportal
