#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "http/message.h"
#include "http/url.h"

namespace cacheportal::http {
namespace {

std::string RandomToken(Random* rng, size_t max_len) {
  size_t len = 1 + rng->Uniform(max_len);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(33 + rng->Uniform(94));  // Printable, no space.
  }
  return out;
}

class HttpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HttpPropertyTest, ParamMapRoundTripsArbitraryContent) {
  Random rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    ParamMap params;
    size_t n = rng.Uniform(6);
    for (size_t j = 0; j < n; ++j) {
      // Values may contain reserved characters; keys too.
      std::string key = RandomToken(&rng, 8);
      std::string value;
      size_t vlen = rng.Uniform(12);
      for (size_t k = 0; k < vlen; ++k) {
        value += static_cast<char>(32 + rng.Uniform(95));
      }
      params[key] = value;
    }
    EXPECT_EQ(ParseQueryString(BuildQueryString(params)), params);
  }
}

TEST_P(HttpPropertyTest, PageIdCacheKeyRoundTrips) {
  Random rng(GetParam() * 31 + 7);
  for (int i = 0; i < 100; ++i) {
    PageId id("host" + std::to_string(rng.Uniform(5)),
              "/p" + std::to_string(rng.Uniform(9)));
    for (size_t j = 0; j < rng.Uniform(4); ++j) {
      id.get_params()[RandomToken(&rng, 6)] = RandomToken(&rng, 10);
    }
    for (size_t j = 0; j < rng.Uniform(3); ++j) {
      id.post_params()[RandomToken(&rng, 6)] = RandomToken(&rng, 10);
    }
    for (size_t j = 0; j < rng.Uniform(3); ++j) {
      id.cookie_params()[RandomToken(&rng, 6)] = RandomToken(&rng, 10);
    }
    auto back = PageId::FromCacheKey(id.CacheKey());
    ASSERT_TRUE(back.ok()) << id.CacheKey();
    EXPECT_EQ(*back, id);
  }
}

TEST_P(HttpPropertyTest, RequestWireRoundTrips) {
  Random rng(GetParam() * 733 + 1);
  for (int i = 0; i < 100; ++i) {
    HttpRequest req;
    req.method = rng.OneIn(0.5) ? Method::kGet : Method::kPost;
    req.host = "h" + std::to_string(rng.Uniform(4));
    req.path = "/p" + std::to_string(rng.Uniform(9));
    for (size_t j = 0; j < rng.Uniform(4); ++j) {
      req.get_params[RandomToken(&rng, 5)] = RandomToken(&rng, 8);
    }
    if (req.method == Method::kPost) {
      for (size_t j = 0; j < rng.Uniform(3); ++j) {
        req.post_params[RandomToken(&rng, 5)] = RandomToken(&rng, 8);
      }
    }
    // Cookie values must avoid ';' and '=' (cookie-string syntax).
    for (size_t j = 0; j < rng.Uniform(3); ++j) {
      req.cookies["c" + std::to_string(j)] = "v" + std::to_string(
          rng.Uniform(100));
    }
    auto parsed = HttpRequest::Parse(req.Serialize());
    ASSERT_TRUE(parsed.ok()) << req.Serialize();
    EXPECT_EQ(parsed->method, req.method);
    EXPECT_EQ(parsed->host, req.host);
    EXPECT_EQ(parsed->path, req.path);
    EXPECT_EQ(parsed->get_params, req.get_params);
    EXPECT_EQ(parsed->post_params, req.post_params);
    EXPECT_EQ(parsed->cookies, req.cookies);
  }
}

TEST_P(HttpPropertyTest, ResponseWireRoundTripsArbitraryBodies) {
  Random rng(GetParam() * 977 + 3);
  for (int i = 0; i < 100; ++i) {
    HttpResponse resp;
    resp.status_code = rng.OneIn(0.7) ? 200 : 404;
    size_t len = rng.Uniform(200);
    for (size_t j = 0; j < len; ++j) {
      resp.body += static_cast<char>(rng.Uniform(256));
    }
    auto parsed = HttpResponse::Parse(resp.Serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->status_code, resp.status_code);
    EXPECT_EQ(parsed->body, resp.body);
  }
}

TEST_P(HttpPropertyTest, ParserNeverCrashesOnRandomBytes) {
  Random rng(GetParam() * 13 + 11);
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.Uniform(120);
    std::string bytes;
    for (size_t j = 0; j < len; ++j) {
      bytes += static_cast<char>(rng.Uniform(256));
    }
    auto req = HttpRequest::Parse(bytes);
    auto resp = HttpResponse::Parse(bytes);
    (void)req;
    (void)resp;  // OK or error; never UB.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cacheportal::http
