#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/page_cache.h"
#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/page_cache_sink.h"
#include "core/reliable_delivery.h"
#include "core/remote_cache.h"
#include "db/database.h"
#include "invalidator/fault_sink.h"
#include "invalidator/invalidator.h"
#include "server/handler.h"
#include "sniffer/qiurl_map.h"
#include "sql/parser.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

/// The library's central correctness property, checked under random
/// workloads: after an invalidation cycle, every page whose underlying
/// query result changed has been invalidated (NO STALENESS). The converse
/// (pages whose results did not change are kept) is checked as a
/// precision metric — over-invalidation is allowed but should be rare in
/// these workloads.
class InvalidationPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  struct TrackedPage {
    std::string page_key;
    std::string sql;
    std::string result_snapshot;  // Result when the page was "cached".
    bool invalidated = false;
  };

  std::string Snapshot(db::Database* db, const std::string& sql) {
    auto result = db->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? result->ToString() : "";
  }
};

class RecordingSink : public InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    invalidated.insert(cache_key);
    return Status::OK();
  }
  std::set<std::string> invalidated;
};

TEST_P(InvalidationPropertyTest, NoStalePagesSurviveACycle) {
  Random rng(GetParam());
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db.CreateTable(db::TableSchema(
                         "Mileage", {{"model", db::ColumnType::kString},
                                     {"EPA", db::ColumnType::kInt}}))
          .ok());

  const char* models[] = {"Avalon", "Civic", "Eclipse", "Corolla", "Focus"};
  const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};

  // Seed data.
  for (int i = 0; i < 20; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                         makers[rng.Uniform(4)], "', '",
                         models[rng.Uniform(5)], "', ",
                         rng.Uniform(30000), ")"))
        .value();
  }
  for (const char* model : models) {
    if (rng.OneIn(0.7)) {
      db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('", model, "', ",
                           10 + rng.Uniform(40), ")"))
          .value();
    }
  }

  sniffer::QiUrlMap map;
  RecordingSink sink;
  Invalidator invalidator(&db, &map, &clock, {});
  invalidator.AddSink(&sink);
  // Drain the seeding inserts before caching pages.
  invalidator.RunCycle().value();

  // "Cache" a set of pages: each is a query instance whose result is
  // snapshotted now.
  std::vector<TrackedPage> pages;
  std::vector<std::string> query_pool;
  for (int i = 0; i < 12; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        query_pool.push_back(StrCat("SELECT * FROM Car WHERE price < ",
                                    5000 + rng.Uniform(25000)));
        break;
      case 1:
        query_pool.push_back(StrCat("SELECT * FROM Car WHERE maker = '",
                                    makers[rng.Uniform(4)], "'"));
        break;
      case 2:
        query_pool.push_back(StrCat(
            "SELECT Car.model, Mileage.EPA FROM Car, Mileage WHERE "
            "Car.model = Mileage.model AND Car.price < ",
            5000 + rng.Uniform(25000)));
        break;
      default:
        query_pool.push_back(StrCat(
            "SELECT * FROM Mileage WHERE EPA > ", rng.Uniform(50)));
        break;
    }
  }
  for (size_t i = 0; i < query_pool.size(); ++i) {
    TrackedPage page;
    page.page_key = StrCat("shop/p", i, "?##");
    page.sql = query_pool[i];
    page.result_snapshot = Snapshot(&db, page.sql);
    map.Add(page.sql, page.page_key, "/r", clock.NowMicros());
    pages.push_back(std::move(page));
  }

  // Random update burst.
  int updates = 3 + static_cast<int>(rng.Uniform(10));
  for (int i = 0; i < updates; ++i) {
    switch (rng.Uniform(3)) {
      case 0:
        db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                             makers[rng.Uniform(4)], "', '",
                             models[rng.Uniform(5)], "', ",
                             rng.Uniform(30000), ")"))
            .value();
        break;
      case 1:
        db.ExecuteSql(
              StrCat("DELETE FROM Car WHERE price > ",
                     20000 + rng.Uniform(10000)))
            .value();
        break;
      default:
        db.ExecuteSql(StrCat("UPDATE Car SET price = ", rng.Uniform(30000),
                             " WHERE model = '", models[rng.Uniform(5)],
                             "'"))
            .value();
        break;
    }
  }

  clock.Advance(kMicrosPerSecond);
  auto report = invalidator.RunCycle();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // THE INVARIANT: any page whose query result changed must have been
  // invalidated. (The reverse direction — precision — is not required
  // for correctness; the invalidator may over-invalidate.)
  size_t changed = 0, kept_unchanged = 0;
  for (const TrackedPage& page : pages) {
    bool was_invalidated = sink.invalidated.contains(page.page_key);
    std::string now = Snapshot(&db, page.sql);
    if (now != page.result_snapshot) {
      ++changed;
      EXPECT_TRUE(was_invalidated)
          << "STALE PAGE: " << page.sql << "\nbefore:\n"
          << page.result_snapshot << "\nafter:\n"
          << now;
    } else if (!was_invalidated) {
      ++kept_unchanged;
    }
  }
  // Sanity: the workload should actually exercise both directions
  // across the seed corpus (not asserted per-seed).
  RecordProperty("changed", static_cast<int>(changed));
  RecordProperty("kept_unchanged", static_cast<int>(kept_unchanged));
}

TEST_P(InvalidationPropertyTest, CyclesAreIdempotentWithoutNewUpdates) {
  Random rng(GetParam() * 17 + 1);
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)").value();

  sniffer::QiUrlMap map;
  RecordingSink sink;
  Invalidator invalidator(&db, &map, &clock, {});
  invalidator.AddSink(&sink);
  invalidator.RunCycle().value();

  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/p?##", "/r", 0);
  db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('A', 'B', ",
                       rng.Uniform(40000), ")"))
      .value();
  invalidator.RunCycle().value();
  size_t after_first = sink.invalidated.size();
  // Re-running with no new updates must not invalidate anything else.
  invalidator.RunCycle().value();
  invalidator.RunCycle().value();
  EXPECT_EQ(sink.invalidated.size(), after_first);
}

/// Origin serving cacheable content for the edge caches below.
class CacheableOrigin : public server::RequestHandler {
 public:
  http::HttpResponse Handle(const http::HttpRequest&) override {
    http::HttpResponse resp = http::HttpResponse::Ok("content");
    http::CacheControl cc;
    cc.is_private = true;
    cc.owner = http::kCachePortalOwner;
    resp.SetCacheControl(cc);
    return resp;
  }
};

/// The headline robustness property: with a seeded FaultInjector dropping
/// a large fraction of eject messages (plus transient errors and lost
/// acks), the ReliableDeliveryQueue's retries still leave NO stale page
/// in ANY remote cache once the backlog drains — eventual freshness
/// under an unreliable invalidation channel.
TEST_P(InvalidationPropertyTest, EventualFreshnessUnderInjectedFaults) {
  Random rng(GetParam() * 131 + 5);
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  const char* models[] = {"Avalon", "Civic", "Eclipse", "Corolla", "Focus"};
  const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};
  for (int i = 0; i < 20; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                         makers[rng.Uniform(4)], "', '",
                         models[rng.Uniform(5)], "', ",
                         rng.Uniform(30000), ")"))
        .value();
  }

  // Two edge caches fed through the full wire path, each behind its own
  // independently-seeded fault injector dropping >= 30% of ejects.
  CacheableOrigin origin;
  cache::PageCache edge_a(64, &clock), edge_b(64, &clock);
  core::RemoteCacheEndpoint endpoint_a(&edge_a, &origin);
  core::RemoteCacheEndpoint endpoint_b(&edge_b, &origin);
  core::WireCacheSink wire_a(&endpoint_a), wire_b(&endpoint_b);
  FaultConfig chaos;
  chaos.drop_probability = 0.40;
  chaos.transient_error_probability = 0.10;
  chaos.delay_probability = 0.05;  // Delivered-but-ack-lost.
  FaultInjector faults_a(GetParam() * 3 + 1, chaos);
  FaultInjector faults_b(GetParam() * 7 + 2, chaos);
  FaultInjectingSink flaky_a(&wire_a, &faults_a);
  FaultInjectingSink flaky_b(&wire_b, &faults_b);

  core::DeliveryOptions dopts;
  dopts.initial_backoff = 10 * kMicrosPerMilli;
  dopts.max_attempts = 50;
  dopts.delivery_deadline = 0;  // Attempt-bounded.
  dopts.jitter_seed = GetParam();
  core::ReliableDeliveryQueue queue(&clock, dopts);
  queue.AddSink(&flaky_a, "edge-a", [&edge_a] { edge_a.Clear(); });
  queue.AddSink(&flaky_b, "edge-b", [&edge_b] { edge_b.Clear(); });

  sniffer::QiUrlMap map;
  Invalidator invalidator(&db, &map, &clock, {});
  invalidator.AddSink(&queue);
  invalidator.RunCycle().value();  // Drain the seeding inserts.

  // Cache pages at both edges and register their query instances.
  struct Page {
    http::PageId id;
    std::string sql;
    std::string snapshot;
  };
  std::vector<Page> pages;
  for (int i = 0; i < 10; ++i) {
    Page page;
    page.sql = i % 2 == 0
                   ? StrCat("SELECT * FROM Car WHERE price < ",
                            5000 + rng.Uniform(25000))
                   : StrCat("SELECT * FROM Car WHERE maker = '",
                            makers[rng.Uniform(4)], "'");
    std::string url = StrCat("http://shop/p", i, "?q=", i);
    endpoint_a.HandleWire(http::HttpRequest::Get(url)->Serialize());
    endpoint_b.HandleWire(http::HttpRequest::Get(url)->Serialize());
    page.id = http::HttpRequest::Get(url)->ToPageId();
    page.snapshot = Snapshot(&db, page.sql);
    map.Add(page.sql, page.id.CacheKey(), "/p", 0);
    pages.push_back(std::move(page));
  }
  ASSERT_EQ(edge_a.size(), pages.size());
  invalidator.RunCycle().value();  // Register the instances.

  // Random update burst, then one invalidation cycle feeding the queue.
  for (int i = 0; i < 3 + static_cast<int>(rng.Uniform(8)); ++i) {
    if (rng.OneIn(0.5)) {
      db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                           makers[rng.Uniform(4)], "', '",
                           models[rng.Uniform(5)], "', ",
                           rng.Uniform(30000), ")"))
          .value();
    } else {
      db.ExecuteSql(StrCat("DELETE FROM Car WHERE price > ",
                           15000 + rng.Uniform(15000)))
          .value();
    }
  }
  clock.Advance(kMicrosPerSecond);
  invalidator.RunCycle().value();

  // Let the retry machinery grind the backlog down to zero.
  queue.DrainWith(&clock);
  ASSERT_EQ(queue.pending(), 0u);

  // THE INVARIANT: no changed page survives in either edge cache.
  for (const Page& page : pages) {
    if (Snapshot(&db, page.sql) == page.snapshot) continue;
    EXPECT_FALSE(edge_a.Contains(page.id))
        << "stale page at edge-a: " << page.sql;
    EXPECT_FALSE(edge_b.Contains(page.id))
        << "stale page at edge-b: " << page.sql;
  }
  RecordProperty("faults_injected", static_cast<int>(faults_a.faults_injected() +
                                                     faults_b.faults_injected()));
  RecordProperty("retries", static_cast<int>(queue.stats().retries));
  RecordProperty("escalations", static_cast<int>(queue.stats().escalations));
}

/// Permanent sink failure: retries exhaust and the dead-letter policy
/// fires. Under kFlush the unreachable cache is cleared wholesale — stale
/// content cannot be served even though no eject ever got through.
TEST(DeadLetterTest, PermanentFailureFlushesInsteadOfServingStale) {
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  CacheableOrigin origin;
  cache::PageCache edge(16, &clock);
  core::RemoteCacheEndpoint endpoint(&edge, &origin);
  core::WireCacheSink wire(&endpoint);
  FaultConfig dead;
  dead.drop_probability = 1.0;  // The cache is unreachable, forever.
  FaultInjector faults(1, dead);
  FaultInjectingSink unreachable(&wire, &faults);

  core::DeliveryOptions dopts;
  dopts.max_attempts = 4;
  core::ReliableDeliveryQueue queue(&clock, dopts);
  queue.AddSink(&unreachable, "edge", [&edge] { edge.Clear(); });

  sniffer::QiUrlMap map;
  Invalidator invalidator(&db, &map, &clock, {});
  invalidator.AddSink(&queue);

  endpoint.HandleWire(
      http::HttpRequest::Get("http://shop/p?q=1")->Serialize());
  ASSERT_EQ(edge.size(), 1u);
  std::string key =
      http::HttpRequest::Get("http://shop/p?q=1")->ToPageId().CacheKey();
  map.Add("SELECT * FROM Car WHERE price < 20000", key, "/p", 0);
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 15000)").value();
  invalidator.RunCycle().value();

  queue.DrainWith(&clock);
  EXPECT_EQ(queue.stats().escalations, 1u);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(edge.size(), 0u);  // Flushed: freshness preserved wholesale.
  EXPECT_FALSE(queue.IsQuarantined("edge"));
}

/// Same scenario under kQuarantine: the cache keeps its (stale) content
/// but the queue marks it unservable until an operator reinstates it.
TEST(DeadLetterTest, QuarantinePolicyMarksTheSinkUnservable) {
  ManualClock clock;
  cache::PageCache edge(16, &clock);
  core::PageCacheSink real_sink(&edge);
  FaultConfig dead;
  dead.drop_probability = 1.0;
  FaultInjector faults(1, dead);
  FaultInjectingSink unreachable(&real_sink, &faults);

  core::DeliveryOptions dopts;
  dopts.max_attempts = 3;
  dopts.escalation = core::DeliveryOptions::Escalation::kQuarantine;
  core::ReliableDeliveryQueue queue(&clock, dopts);
  queue.AddSink(&unreachable, "edge");

  http::HttpRequest eject = *http::HttpRequest::Get("http://shop/p?q=1");
  eject.headers.Set("Cache-Control", "eject");
  queue.SendInvalidation(eject, "shop/p?q=1##");
  queue.DrainWith(&clock);
  EXPECT_TRUE(queue.IsQuarantined("edge"));
  EXPECT_EQ(queue.stats().escalations, 1u);

  // Once the network heals, an operator reinstates the sink and the
  // normal delivery path resumes.
  faults.Heal();
  queue.Reinstate("edge");
  EXPECT_TRUE(queue.SendInvalidation(eject, "shop/p?q=1##").ok());
  EXPECT_EQ(queue.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvalidationPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cacheportal::invalidator
