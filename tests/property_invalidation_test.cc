#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"
#include "sql/parser.h"

namespace cacheportal::invalidator {
namespace {

using sql::Value;

/// The library's central correctness property, checked under random
/// workloads: after an invalidation cycle, every page whose underlying
/// query result changed has been invalidated (NO STALENESS). The converse
/// (pages whose results did not change are kept) is checked as a
/// precision metric — over-invalidation is allowed but should be rare in
/// these workloads.
class InvalidationPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  struct TrackedPage {
    std::string page_key;
    std::string sql;
    std::string result_snapshot;  // Result when the page was "cached".
    bool invalidated = false;
  };

  std::string Snapshot(db::Database* db, const std::string& sql) {
    auto result = db->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? result->ToString() : "";
  }
};

class RecordingSink : public InvalidationSink {
 public:
  void SendInvalidation(const http::HttpRequest&,
                        const std::string& cache_key) override {
    invalidated.insert(cache_key);
  }
  std::set<std::string> invalidated;
};

TEST_P(InvalidationPropertyTest, NoStalePagesSurviveACycle) {
  Random rng(GetParam());
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      db.CreateTable(db::TableSchema(
                         "Mileage", {{"model", db::ColumnType::kString},
                                     {"EPA", db::ColumnType::kInt}}))
          .ok());

  const char* models[] = {"Avalon", "Civic", "Eclipse", "Corolla", "Focus"};
  const char* makers[] = {"Toyota", "Honda", "Mitsubishi", "Ford"};

  // Seed data.
  for (int i = 0; i < 20; ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                         makers[rng.Uniform(4)], "', '",
                         models[rng.Uniform(5)], "', ",
                         rng.Uniform(30000), ")"))
        .value();
  }
  for (const char* model : models) {
    if (rng.OneIn(0.7)) {
      db.ExecuteSql(StrCat("INSERT INTO Mileage VALUES ('", model, "', ",
                           10 + rng.Uniform(40), ")"))
          .value();
    }
  }

  sniffer::QiUrlMap map;
  RecordingSink sink;
  Invalidator invalidator(&db, &map, &clock, {});
  invalidator.AddSink(&sink);
  // Drain the seeding inserts before caching pages.
  invalidator.RunCycle().value();

  // "Cache" a set of pages: each is a query instance whose result is
  // snapshotted now.
  std::vector<TrackedPage> pages;
  std::vector<std::string> query_pool;
  for (int i = 0; i < 12; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        query_pool.push_back(StrCat("SELECT * FROM Car WHERE price < ",
                                    5000 + rng.Uniform(25000)));
        break;
      case 1:
        query_pool.push_back(StrCat("SELECT * FROM Car WHERE maker = '",
                                    makers[rng.Uniform(4)], "'"));
        break;
      case 2:
        query_pool.push_back(StrCat(
            "SELECT Car.model, Mileage.EPA FROM Car, Mileage WHERE "
            "Car.model = Mileage.model AND Car.price < ",
            5000 + rng.Uniform(25000)));
        break;
      default:
        query_pool.push_back(StrCat(
            "SELECT * FROM Mileage WHERE EPA > ", rng.Uniform(50)));
        break;
    }
  }
  for (size_t i = 0; i < query_pool.size(); ++i) {
    TrackedPage page;
    page.page_key = StrCat("shop/p", i, "?##");
    page.sql = query_pool[i];
    page.result_snapshot = Snapshot(&db, page.sql);
    map.Add(page.sql, page.page_key, "/r", clock.NowMicros());
    pages.push_back(std::move(page));
  }

  // Random update burst.
  int updates = 3 + static_cast<int>(rng.Uniform(10));
  for (int i = 0; i < updates; ++i) {
    switch (rng.Uniform(3)) {
      case 0:
        db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('",
                             makers[rng.Uniform(4)], "', '",
                             models[rng.Uniform(5)], "', ",
                             rng.Uniform(30000), ")"))
            .value();
        break;
      case 1:
        db.ExecuteSql(
              StrCat("DELETE FROM Car WHERE price > ",
                     20000 + rng.Uniform(10000)))
            .value();
        break;
      default:
        db.ExecuteSql(StrCat("UPDATE Car SET price = ", rng.Uniform(30000),
                             " WHERE model = '", models[rng.Uniform(5)],
                             "'"))
            .value();
        break;
    }
  }

  clock.Advance(kMicrosPerSecond);
  auto report = invalidator.RunCycle();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // THE INVARIANT: any page whose query result changed must have been
  // invalidated. (The reverse direction — precision — is not required
  // for correctness; the invalidator may over-invalidate.)
  size_t changed = 0, kept_unchanged = 0;
  for (const TrackedPage& page : pages) {
    bool was_invalidated = sink.invalidated.contains(page.page_key);
    std::string now = Snapshot(&db, page.sql);
    if (now != page.result_snapshot) {
      ++changed;
      EXPECT_TRUE(was_invalidated)
          << "STALE PAGE: " << page.sql << "\nbefore:\n"
          << page.result_snapshot << "\nafter:\n"
          << now;
    } else if (!was_invalidated) {
      ++kept_unchanged;
    }
  }
  // Sanity: the workload should actually exercise both directions
  // across the seed corpus (not asserted per-seed).
  RecordProperty("changed", static_cast<int>(changed));
  RecordProperty("kept_unchanged", static_cast<int>(kept_unchanged));
}

TEST_P(InvalidationPropertyTest, CyclesAreIdempotentWithoutNewUpdates) {
  Random rng(GetParam() * 17 + 1);
  ManualClock clock;
  db::Database db(&clock);
  ASSERT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)").value();

  sniffer::QiUrlMap map;
  RecordingSink sink;
  Invalidator invalidator(&db, &map, &clock, {});
  invalidator.AddSink(&sink);
  invalidator.RunCycle().value();

  map.Add("SELECT * FROM Car WHERE price < 20000", "shop/p?##", "/r", 0);
  db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('A', 'B', ",
                       rng.Uniform(40000), ")"))
      .value();
  invalidator.RunCycle().value();
  size_t after_first = sink.invalidated.size();
  // Re-running with no new updates must not invalidate anything else.
  invalidator.RunCycle().value();
  invalidator.RunCycle().value();
  EXPECT_EQ(sink.invalidated.size(), after_first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvalidationPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cacheportal::invalidator
