// Bounded staleness under backlog: a seeded update storm with scheduled
// sink outages drives the full pipeline — overload-controlled
// invalidator, reliable delivery queue with per-sink circuit breakers,
// and a modeled edge cache — and the test checks the robustness
// contract end to end:
//
//   1. No page stays stale longer than the staleness budget (outage
//      length + breaker recovery), because the breaker's recovery flush
//      converts the ejects dropped while the sink was dark into one
//      bounded over-invalidation.
//   2. The degradation ladder escalates under backlog, records
//      staleness breaches, and returns to kNormal once the storm ends —
//      without flapping.
//   3. After the storm heals, the system reaches eventual freshness:
//      nothing pending, nothing stale, nothing quarantined.
//   4. The whole run is a deterministic function of the seed.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/reliable_delivery.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "invalidator/overload.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal {
namespace {

using core::ReliableDeliveryQueue;
using invalidator::DegradationMode;
using invalidator::InvalidationSink;
using invalidator::Invalidator;
using invalidator::InvalidatorOptions;

constexpr Micros kRound = 250 * kMicrosPerMilli;   // Driver granularity.
constexpr Micros kBurstLength = 2 * kMicrosPerSecond;
constexpr Micros kCooldown = kMicrosPerSecond;
// A page may stay stale for at most: the outage itself, plus one full
// breaker cooldown after a probe that failed at the very end of the
// outage, plus the gaps until the next eject arrives to probe with and
// the driver round that observes it. Anything beyond this bound means
// an eject was lost without a compensating flush.
constexpr Micros kStalenessBudget =
    kBurstLength + 2 * kCooldown + 3 * kMicrosPerSecond;

/// The modeled edge cache: which pages it holds, and since when each
/// held page has been stale (a decided eject not yet applied).
struct EdgeCacheModel {
  std::set<std::string> cached;
  std::map<std::string, Micros> stale_since;

  void Flush() {
    cached.clear();
    stale_since.clear();
  }
};

/// Ground-truth tee: the invalidator's decisions, applied instantly.
/// A page with a decided eject is stale at the edge until the flaky
/// transport (or a flush) catches up.
class OracleSink : public InvalidationSink {
 public:
  OracleSink(EdgeCacheModel* edge, const Clock* clock)
      : edge_(edge), clock_(clock) {}

  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    ++decisions;
    if (edge_->cached.contains(cache_key) &&
        !edge_->stale_since.contains(cache_key)) {
      edge_->stale_since[cache_key] = clock_->NowMicros();
    }
    return Status::OK();
  }

  uint64_t decisions = 0;

 private:
  EdgeCacheModel* edge_;
  const Clock* clock_;
};

/// The unreliable transport to the edge: drops sends per the injector's
/// schedule; a successful send applies the eject to the edge model.
class FlakyEdgeSink : public InvalidationSink {
 public:
  FlakyEdgeSink(EdgeCacheModel* edge, FaultInjector* faults)
      : edge_(edge), faults_(faults) {}

  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    if (faults_->ShouldDrop()) {
      return Status::Internal("edge unreachable");
    }
    edge_->cached.erase(cache_key);
    edge_->stale_since.erase(cache_key);
    return Status::OK();
  }

 private:
  EdgeCacheModel* edge_;
  FaultInjector* faults_;
};

struct StormResult {
  std::string summary;
  Micros max_stale_age = 0;
};

/// One full storm simulation. Everything (update mix, outage windows,
/// backoff jitter) derives from `seed` on a manual clock.
StormResult RunStorm(uint64_t seed) {
  ManualClock clock;
  db::Database db(&clock);
  sniffer::QiUrlMap map;
  EdgeCacheModel edge;
  FaultInjector faults(seed);
  Random updates_rng(seed ^ 0xabcdef);

  EXPECT_TRUE(db.CreateTable(db::TableSchema(
                                 "Car", {{"maker", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
                  .ok());
  EXPECT_TRUE(db.CreateTable(db::TableSchema(
                                 "Mileage",
                                 {{"model", db::ColumnType::kString},
                                  {"EPA", db::ColumnType::kInt}}))
                  .ok());
  db.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 28)").value();

  const std::vector<std::pair<std::string, std::string>> kPages = {
      {"SELECT * FROM Car WHERE price < 10000", "edge/p10##"},
      {"SELECT * FROM Car WHERE price < 20000", "edge/p20##"},
      {"SELECT * FROM Car WHERE price < 30000", "edge/p30##"},
      {"SELECT * FROM Car WHERE price < 40000", "edge/p40##"},
      {"SELECT * FROM Mileage WHERE EPA > 25", "edge/epa##"},
  };
  // A miss refills the edge: any page not cached gets re-fetched (and
  // re-registered with the sniffer) at the next driver round. A stale
  // page is NOT refilled — the edge believes it is fresh; that is
  // exactly the hazard this test bounds.
  auto refill_misses = [&] {
    for (const auto& [sql, page] : kPages) {
      if (edge.cached.contains(page)) continue;
      map.Add(sql, page, "/r", clock.NowMicros());
      edge.cached.insert(page);
    }
  };
  refill_misses();

  InvalidatorOptions options;
  options.overload.enabled = true;
  options.overload.economy_backlog = 4;
  options.overload.conservative_backlog = 8;
  options.overload.emergency_backlog = 64;
  options.overload.staleness_bound = 2 * kMicrosPerSecond;
  options.overload.min_dwell = 1500 * kMicrosPerMilli;
  Invalidator inv(&db, &map, &clock, options);

  OracleSink oracle(&edge, &clock);
  inv.AddSink(&oracle);

  core::DeliveryOptions delivery;
  delivery.max_attempts = 100;
  delivery.initial_backoff = 100 * kMicrosPerMilli;
  delivery.max_backoff = kMicrosPerSecond;
  delivery.jitter_fraction = 0.0;
  delivery.jitter_seed = seed;
  delivery.delivery_deadline = 0;  // The breaker owns giving up.
  delivery.breaker_failure_threshold = 3;
  delivery.breaker_cooldown = kCooldown;
  ReliableDeliveryQueue queue(&clock, delivery);
  FlakyEdgeSink flaky(&edge, &faults);
  queue.AddSink(&flaky, "edge", [&edge] { edge.Flush(); });
  inv.AddSink(&queue);
  inv.RunCycle().value();  // Register the instances on a clean log.

  // Three total-outage bursts stratified across the first 20 seconds.
  faults.SetSchedule(&clock,
                     FaultInjector::MakeBurstSchedule(
                         seed, /*bursts=*/3,
                         /*horizon=*/20 * kMicrosPerSecond, kBurstLength));

  StormResult result;
  uint64_t escalations_after_storm = 0;
  // Rounds 0..95 (24s): the storm. Updates flow every round; a cycle
  // runs every 4th round, except during a simulated invalidator stall
  // (rounds 40..55) that lets the backlog age past the staleness bound.
  // Rounds 96..135 (10s): quiet recovery — no updates, cycles continue.
  for (int round = 0; round < 136; ++round) {
    clock.Advance(kRound);
    refill_misses();
    // Keepalive heartbeat through the delivery channel, as a real
    // deployment would run: it keeps failure detection (and breaker
    // probing after a cooldown) working even when no eject happens to
    // be in flight — without it, an outage that swallowed the last
    // pending eject could leave the breaker open forever.
    queue.SendInvalidation(*http::HttpRequest::Get("http://edge/heartbeat"),
                           "edge/heartbeat");

    const bool storm = round < 96;
    if (storm) {
      uint64_t n = updates_rng.Uniform(4);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t price = 5000 + updates_rng.Uniform(40000);
        db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('M', ", price, ")"))
            .value();
      }
    }

    const bool stalled = round >= 40 && round < 56;
    if (round % 4 == 0 && !stalled) {
      inv.RunCycle().value();
      // Full drain at every cycle: freshness lag lives in delivery, not
      // in the invalidator's cursor.
      EXPECT_EQ(inv.consumed_update_seq(), db.update_log().LastSeq());
    }
    queue.Pump();

    if (round == 95) {
      escalations_after_storm = inv.overload_controller()->stats().escalations;
    }
    for (const auto& [page, since] : edge.stale_since) {
      Micros age = clock.NowMicros() - since;
      result.max_stale_age = std::max(result.max_stale_age, age);
      EXPECT_LE(age, kStalenessBudget)
          << page << " stale for " << age << "us at round " << round;
    }
  }

  // --- Eventual freshness. ---
  queue.DrainWith(&clock);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_TRUE(edge.stale_since.empty());
  EXPECT_FALSE(queue.IsQuarantined("edge"));

  // --- The ladder rode the storm and came back down. ---
  const invalidator::OverloadStats& ladder =
      inv.overload_controller()->stats();
  EXPECT_EQ(inv.overload_controller()->mode(), DegradationMode::kNormal);
  EXPECT_GT(ladder.escalations, 0u);
  EXPECT_GT(ladder.deescalations, 0u);
  EXPECT_GT(ladder.staleness_breaches, 0u);  // The stall aged the log.
  EXPECT_GT(inv.stats().emergency_flushes, 0u);
  // The quiet phase added no escalations: no flapping at rest.
  EXPECT_EQ(ladder.escalations, escalations_after_storm);

  // --- The breaker, not the retry treadmill, absorbed the outages. ---
  const core::DeliveryStats& ds = queue.stats();
  EXPECT_GT(ds.breaker_opens, 0u);
  EXPECT_GT(ds.breaker_recoveries, 0u);

  result.summary = StrCat(
      "decisions=", oracle.decisions, " delivered=", ds.delivered,
      " dead-lettered=", ds.dead_lettered, " breaker-opens=",
      ds.breaker_opens, " breaker-recoveries=", ds.breaker_recoveries,
      " escalations=", ladder.escalations, " deescalations=",
      ladder.deescalations, " breaches=", ladder.staleness_breaches,
      " emergency-flushes=", inv.stats().emergency_flushes,
      " max-stale-age=", result.max_stale_age);
  return result;
}

TEST(PropertyOverloadTest, StalenessIsBoundedThroughStormAndOutages) {
  StormResult result = RunStorm(0xcafe);
  // The budget is the contract; the typical age should sit well inside
  // it (a trivially-passing bound would test nothing).
  EXPECT_GT(result.max_stale_age, 0u) << result.summary;
  EXPECT_LE(result.max_stale_age, kStalenessBudget) << result.summary;
}

TEST(PropertyOverloadTest, StormIsDeterministicInTheSeed) {
  StormResult first = RunStorm(0xbeef);
  StormResult second = RunStorm(0xbeef);
  EXPECT_EQ(first.summary, second.summary);
}

TEST(PropertyOverloadTest, DifferentSeedsStillSatisfyTheBound) {
  for (uint64_t seed : {1ull, 7ull, 1234567ull}) {
    StormResult result = RunStorm(seed);
    EXPECT_LE(result.max_stale_age, kStalenessBudget)
        << "seed=" << seed << " " << result.summary;
  }
}

}  // namespace
}  // namespace cacheportal
