#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::sql {
namespace {

/// Robustness sweeps: the lexer and parser must never crash or hang on
/// arbitrary input — the sniffer feeds them whatever the application sent
/// to the database — and every failure must surface as a ParseError-ish
/// Status, never UB.
class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, RandomBytesNeverCrash) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.Uniform(80);
    std::string input;
    for (size_t j = 0; j < len; ++j) {
      input += static_cast<char>(32 + rng.Uniform(95));  // Printable.
    }
    Result<StatementPtr> result = Parser::Parse(input);
    if (result.ok()) {
      // Whatever parsed must print and re-parse.
      std::string text = StatementToSql(**result);
      EXPECT_TRUE(Parser::Parse(text).ok()) << input << " -> " << text;
    }
  }
}

TEST_P(ParserRobustnessTest, MutatedValidQueriesNeverCrash) {
  Random rng(GetParam() * 31 + 3);
  const std::string base =
      "SELECT Car.maker, COUNT(*) FROM Car, Mileage WHERE Car.model = "
      "Mileage.model AND Car.price BETWEEN 100 AND 20000 OR maker IN "
      "('a', 'b') GROUP BY Car.maker ORDER BY Car.maker DESC LIMIT 5";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = base;
    // Random single-character surgeries.
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(32 + rng.Uniform(95)));
          break;
      }
    }
    Result<StatementPtr> result = Parser::Parse(mutated);
    if (result.ok()) {
      std::string text = StatementToSql(**result);
      auto second = Parser::Parse(text);
      EXPECT_TRUE(second.ok()) << mutated << " -> " << text;
    }
  }
}

TEST_P(ParserRobustnessTest, TokenSoupNeverCrashes) {
  Random rng(GetParam() * 977 + 11);
  const char* tokens[] = {"SELECT", "FROM",  "WHERE", "AND", "OR",  "(",
                          ")",      ",",     "*",     "=",   "<",   ">",
                          "NOT",    "IN",    "LIKE",  "BETWEEN",    "NULL",
                          "'x'",    "42",    "3.5",   "$1",  "a",   "a.b",
                          "INSERT", "INTO",  "VALUES", "DELETE", "UPDATE",
                          "SET",    "GROUP", "BY",    "ORDER", "LIMIT",
                          "COUNT",  "IS",    ";"};
  for (int i = 0; i < 300; ++i) {
    std::string input;
    size_t n = 1 + rng.Uniform(25);
    for (size_t j = 0; j < n; ++j) {
      input += tokens[rng.Uniform(std::size(tokens))];
      input += ' ';
    }
    Result<StatementPtr> result = Parser::Parse(input);
    if (result.ok()) {
      EXPECT_TRUE(Parser::Parse(StatementToSql(**result)).ok()) << input;
    } else {
      EXPECT_FALSE(result.status().message().empty()) << input;
    }
  }
}

TEST(LexerRobustnessTest, AllSingleBytesHandled) {
  for (int c = 1; c < 256; ++c) {
    std::string input(1, static_cast<char>(c));
    auto result = Lexer::Tokenize(input);  // OK or error; never crashes.
    (void)result;
  }
}

TEST(ParserRobustnessTest2, DeeplyNestedParenthesesBounded) {
  // Moderate nesting parses fine...
  std::string input = "SELECT * FROM t WHERE ";
  for (int i = 0; i < 100; ++i) input += "(";
  input += "1 = 1";
  for (int i = 0; i < 100; ++i) input += ")";
  EXPECT_TRUE(Parser::Parse(input).ok());

  // ...but adversarial nesting is rejected with a clean ParseError
  // instead of exhausting the stack (the sniffer feeds the parser
  // whatever the application sent).
  std::string bomb = "SELECT * FROM t WHERE ";
  for (int i = 0; i < 5000; ++i) bomb += "(";
  bomb += "1 = 1";
  for (int i = 0; i < 5000; ++i) bomb += ")";
  auto result = Parser::Parse(bomb);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cacheportal::sql
