#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/analyzer.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/template.h"

namespace cacheportal::sql {
namespace {

/// Generates random (but valid) SELECT statements over a fixed schema and
/// checks library-wide invariants: print->parse round trips, template
/// extraction is idempotent and type-stable, folding never changes
/// satisfiability under full substitution.
class SqlGenerator {
 public:
  explicit SqlGenerator(uint64_t seed) : rng_(seed) {}

  std::string Query() {
    int tables = 1 + static_cast<int>(rng_.Uniform(2));
    std::string sql = "SELECT ";
    sql += rng_.OneIn(0.3) ? "*" : Column(tables);
    sql += " FROM Car";
    if (tables == 2) sql += ", Mileage";
    sql += " WHERE ";
    sql += Condition(tables, 2);
    if (rng_.OneIn(0.2)) sql += " LIMIT " + std::to_string(rng_.Uniform(10));
    return sql;
  }

  std::string Condition(int tables, int depth) {
    if (depth == 0 || rng_.OneIn(0.4)) return Predicate(tables);
    std::string op = rng_.OneIn(0.5) ? " AND " : " OR ";
    std::string left = Condition(tables, depth - 1);
    std::string right = Condition(tables, depth - 1);
    if (rng_.OneIn(0.3)) return "NOT (" + left + ")";
    return "(" + left + op + right + ")";
  }

  std::string Predicate(int tables) {
    switch (rng_.Uniform(5)) {
      case 0:
        return NumColumn(tables) + " " + CmpOp() + " " +
               std::to_string(rng_.Uniform(30000));
      case 1:
        return StrColumn(tables) + " = '" + ModelName() + "'";
      case 2:
        return NumColumn(tables) + " BETWEEN " +
               std::to_string(rng_.Uniform(100)) + " AND " +
               std::to_string(100 + rng_.Uniform(30000));
      case 3:
        return StrColumn(tables) + " IN ('" + ModelName() + "', '" +
               ModelName() + "')";
      default:
        if (tables == 2) return "Car.model = Mileage.model";
        return NumColumn(tables) + " " + CmpOp() + " " +
               std::to_string(rng_.Uniform(30000));
    }
  }

  std::string CmpOp() {
    const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    return ops[rng_.Uniform(6)];
  }
  std::string Column(int tables) {
    return rng_.OneIn(0.5) ? NumColumn(tables) : StrColumn(tables);
  }
  std::string NumColumn(int tables) {
    if (tables == 2 && rng_.OneIn(0.3)) return "Mileage.EPA";
    return "Car.price";
  }
  std::string StrColumn(int tables) {
    if (tables == 2 && rng_.OneIn(0.3)) return "Mileage.model";
    return rng_.OneIn(0.5) ? "Car.model" : "Car.maker";
  }
  std::string ModelName() {
    const char* names[] = {"Avalon", "Civic", "Eclipse", "Corolla", "LS"};
    return names[rng_.Uniform(5)];
  }

 private:
  Random rng_;
};

class SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlPropertyTest, PrintParseRoundTripIsFixedPoint) {
  SqlGenerator gen(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::string sql = gen.Query();
    auto first = Parser::ParseSelect(sql);
    ASSERT_TRUE(first.ok()) << sql << ": " << first.status().ToString();
    std::string canonical = StatementToSql(**first);
    auto second = Parser::ParseSelect(canonical);
    ASSERT_TRUE(second.ok()) << canonical;
    EXPECT_EQ(StatementToSql(**second), canonical) << sql;
  }
}

TEST_P(SqlPropertyTest, TemplateExtractionIsTypeStable) {
  SqlGenerator gen(GetParam() * 31 + 7);
  for (int i = 0; i < 50; ++i) {
    std::string sql = gen.Query();
    auto t1 = ExtractTemplateFromSql(sql);
    ASSERT_TRUE(t1.ok()) << sql;
    // Re-instantiating with the original bindings and re-extracting must
    // give the same type.
    auto inst = InstantiateTemplate(*t1, t1->bindings);
    ASSERT_TRUE(inst.ok()) << sql;
    auto t2 = ExtractTemplate(**inst);
    ASSERT_TRUE(t2.ok());
    EXPECT_EQ(t1->type_id, t2->type_id) << sql;
    EXPECT_EQ(t1->canonical_text, t2->canonical_text);
  }
}

TEST_P(SqlPropertyTest, TemplateParameterCountMatchesBindings) {
  SqlGenerator gen(GetParam() * 131 + 17);
  for (int i = 0; i < 50; ++i) {
    std::string sql = gen.Query();
    auto t = ExtractTemplateFromSql(sql);
    ASSERT_TRUE(t.ok()) << sql;
    if (t->statement->where == nullptr) continue;
    // Count parameters in the template.
    size_t params = 0;
    std::function<void(const Expression&)> count = [&](const Expression& e) {
      if (e.kind() == ExprKind::kParameter) ++params;
      switch (e.kind()) {
        case ExprKind::kUnary:
          count(static_cast<const UnaryExpr&>(e).operand());
          break;
        case ExprKind::kBinary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          count(b.left());
          count(b.right());
          break;
        }
        case ExprKind::kInList: {
          const auto& in = static_cast<const InListExpr&>(e);
          count(in.operand());
          for (const auto& item : in.items()) count(*item);
          break;
        }
        case ExprKind::kBetween: {
          const auto& bt = static_cast<const BetweenExpr&>(e);
          count(bt.operand());
          count(bt.low());
          count(bt.high());
          break;
        }
        case ExprKind::kIsNull:
          count(static_cast<const IsNullExpr&>(e).operand());
          break;
        default:
          break;
      }
    };
    count(*t->statement->where);
    EXPECT_EQ(params, t->bindings.size()) << sql;
  }
}

TEST_P(SqlPropertyTest, FoldingAgreesWithEvaluation) {
  // For WHERE clauses whose columns are fully substituted with concrete
  // values, FoldConstants must agree with direct evaluation.
  SqlGenerator gen(GetParam() * 733 + 3);
  Random value_rng(GetParam() + 5);
  for (int i = 0; i < 50; ++i) {
    std::string sql = gen.Query();
    auto select = Parser::ParseSelect(sql);
    ASSERT_TRUE(select.ok());
    if ((*select)->where == nullptr) continue;

    // Substitute every column with a random concrete value.
    Value price = Value::Int(static_cast<int64_t>(value_rng.Uniform(30000)));
    Value epa = Value::Int(static_cast<int64_t>(value_rng.Uniform(50)));
    const char* names[] = {"Avalon", "Civic", "Eclipse"};
    Value model = Value::String(names[value_rng.Uniform(3)]);
    Value maker = Value::String("Toyota");
    auto sub = [&](const std::string&,
                   const std::string& column) -> std::optional<Value> {
      if (column == "price") return price;
      if (column == "EPA") return epa;
      if (column == "model") return model;
      if (column == "maker") return maker;
      return std::nullopt;
    };
    ExpressionPtr substituted = SubstituteColumns(*(*select)->where, sub);
    FoldResult folded = FoldConstants(*substituted);
    ASSERT_NE(folded.outcome, FoldOutcome::kResidual) << sql;

    EmptyResolver no_columns;
    auto direct = EvalPredicate(*substituted, no_columns);
    ASSERT_TRUE(direct.ok()) << sql;
    if (folded.outcome == FoldOutcome::kTrue) {
      EXPECT_EQ(*direct, std::optional<bool>(true)) << sql;
    } else if (folded.outcome == FoldOutcome::kFalse) {
      EXPECT_EQ(*direct, std::optional<bool>(false)) << sql;
    } else {
      EXPECT_EQ(*direct, std::nullopt) << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cacheportal::sql
