#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "core/reliable_delivery.h"
#include "http/message.h"

namespace cacheportal::core {
namespace {

/// Sink whose failures are scripted by the test.
class ScriptedSink : public invalidator::InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest& message,
                          const std::string& cache_key) override {
    ++attempts;
    if (always_fail || fail_next > 0) {
      if (fail_next > 0) --fail_next;
      return Status::Internal("scripted failure");
    }
    delivered.push_back(cache_key);
    last_message = message;
    return Status::OK();
  }

  int fail_next = 0;
  bool always_fail = false;
  int attempts = 0;
  std::vector<std::string> delivered;
  http::HttpRequest last_message;
};

http::HttpRequest Eject(const std::string& path) {
  http::HttpRequest message = *http::HttpRequest::Get("http://cache" + path);
  message.headers.Set("Cache-Control", "eject");
  return message;
}

DeliveryOptions NoJitterOptions() {
  DeliveryOptions options;
  options.initial_backoff = 100 * kMicrosPerMilli;
  options.backoff_multiplier = 2.0;
  options.max_backoff = 10 * kMicrosPerSecond;
  options.jitter_fraction = 0.0;  // Exact schedules for assertions.
  options.delivery_deadline = 0;  // Attempt-bounded unless a test opts in.
  return options;
}

TEST(ReliableDeliveryTest, DeliversImmediatelyWhenHealthy) {
  ManualClock clock;
  ScriptedSink sink;
  ReliableDeliveryQueue queue(&clock, NoJitterOptions());
  queue.AddSink(&sink, "edge");

  EXPECT_TRUE(queue.SendInvalidation(Eject("/p1"), "k1").ok());
  EXPECT_EQ(sink.delivered, std::vector<std::string>{"k1"});
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().delivered_first_try, 1u);
  EXPECT_EQ(queue.stats().retries, 0u);
  EXPECT_FALSE(queue.NextRetryAt().has_value());
}

TEST(ReliableDeliveryTest, RetriesWithExponentialBackoff) {
  ManualClock clock;
  ScriptedSink sink;
  sink.fail_next = 3;
  ReliableDeliveryQueue queue(&clock, NoJitterOptions());
  queue.AddSink(&sink, "edge");

  queue.SendInvalidation(Eject("/p1"), "k1");  // Attempt 1 fails at t=0.
  EXPECT_EQ(sink.attempts, 1);
  EXPECT_EQ(queue.pending(), 1u);
  ASSERT_TRUE(queue.NextRetryAt().has_value());
  EXPECT_EQ(*queue.NextRetryAt(), 100 * kMicrosPerMilli);

  // Before the backoff elapses, pumping must not retry.
  clock.Advance(50 * kMicrosPerMilli);
  EXPECT_EQ(queue.Pump(), 0u);
  EXPECT_EQ(sink.attempts, 1);

  clock.SetTime(100 * kMicrosPerMilli);  // Attempt 2 fails.
  EXPECT_EQ(queue.Pump(), 0u);
  EXPECT_EQ(sink.attempts, 2);
  EXPECT_EQ(*queue.NextRetryAt(), 300 * kMicrosPerMilli);  // +200ms.

  clock.SetTime(300 * kMicrosPerMilli);  // Attempt 3 fails.
  EXPECT_EQ(queue.Pump(), 0u);
  EXPECT_EQ(*queue.NextRetryAt(), 700 * kMicrosPerMilli);  // +400ms.

  clock.SetTime(700 * kMicrosPerMilli);  // Attempt 4 succeeds.
  EXPECT_EQ(queue.Pump(), 1u);
  EXPECT_EQ(sink.delivered, std::vector<std::string>{"k1"});
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().retries, 3u);
  EXPECT_EQ(queue.stats().delivered, 1u);
  EXPECT_EQ(queue.stats().delivered_first_try, 0u);
}

TEST(ReliableDeliveryTest, BackoffIsCappedAtMaxBackoff) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  DeliveryOptions options = NoJitterOptions();
  options.max_backoff = 300 * kMicrosPerMilli;
  options.max_attempts = 100;
  ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&sink, "edge");

  queue.SendInvalidation(Eject("/p1"), "k1");
  // Walk a few retries; after the cap the gap stays at max_backoff.
  Micros prev = 0;
  for (int i = 0; i < 6; ++i) {
    Micros next = *queue.NextRetryAt();
    EXPECT_LE(next - prev, 300 * kMicrosPerMilli + 1);
    prev = clock.NowMicros();
    clock.SetTime(next);
    queue.Pump();
    prev = next;
  }
  EXPECT_EQ(*queue.NextRetryAt() - prev, 300 * kMicrosPerMilli);
}

TEST(ReliableDeliveryTest, JitterIsDeterministicPerSeed) {
  DeliveryOptions options = NoJitterOptions();
  options.jitter_fraction = 0.3;
  options.jitter_seed = 1234;

  auto schedule = [&options]() {
    ManualClock clock;
    ScriptedSink sink;
    sink.always_fail = true;
    ReliableDeliveryQueue queue(&clock, options);
    queue.AddSink(&sink, "edge");
    queue.SendInvalidation(Eject("/p1"), "k1");
    std::vector<Micros> retries;
    for (int i = 0; i < 5; ++i) {
      retries.push_back(*queue.NextRetryAt());
      clock.SetTime(retries.back());
      queue.Pump();
    }
    return retries;
  };

  std::vector<Micros> first = schedule();
  std::vector<Micros> second = schedule();
  EXPECT_EQ(first, second);  // Same seed: identical schedule.
  // And the jitter actually perturbs the deterministic base schedule.
  EXPECT_NE(first[0], 100 * kMicrosPerMilli);
}

TEST(ReliableDeliveryTest, PerSinkFifoOrderSurvivesRetries) {
  ManualClock clock;
  ScriptedSink sink;
  sink.fail_next = 5;
  ReliableDeliveryQueue queue(&clock, NoJitterOptions());
  queue.AddSink(&sink, "edge");

  queue.SendInvalidation(Eject("/p1"), "k1");
  queue.SendInvalidation(Eject("/p2"), "k2");
  queue.SendInvalidation(Eject("/p3"), "k3");
  EXPECT_EQ(queue.pending(), 3u);

  EXPECT_EQ(queue.DrainWith(&clock), 3u);
  EXPECT_EQ(sink.delivered, (std::vector<std::string>{"k1", "k2", "k3"}));
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(ReliableDeliveryTest, IndependentSinksDoNotShareFate) {
  ManualClock clock;
  ScriptedSink healthy, flaky;
  flaky.fail_next = 2;
  ReliableDeliveryQueue queue(&clock, NoJitterOptions());
  queue.AddSink(&healthy, "healthy");
  queue.AddSink(&flaky, "flaky");

  queue.SendInvalidation(Eject("/p1"), "k1");
  // The healthy sink is done immediately; only the flaky one queues.
  EXPECT_EQ(healthy.delivered, std::vector<std::string>{"k1"});
  EXPECT_EQ(queue.pending_for("healthy"), 0u);
  EXPECT_EQ(queue.pending_for("flaky"), 1u);

  queue.DrainWith(&clock);
  EXPECT_EQ(flaky.delivered, std::vector<std::string>{"k1"});
  EXPECT_EQ(healthy.attempts, 1);  // Never retried against the healthy sink.
}

TEST(ReliableDeliveryTest, ExhaustedAttemptsFlushTheSink) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  DeliveryOptions options = NoJitterOptions();
  options.max_attempts = 3;
  ReliableDeliveryQueue queue(&clock, options);
  int flushes = 0;
  queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });

  queue.SendInvalidation(Eject("/p1"), "k1");
  queue.SendInvalidation(Eject("/p2"), "k2");
  EXPECT_EQ(queue.DrainWith(&clock), 0u);

  // The head message burned its 3 attempts; escalation flushed the cache
  // wholesale and dead-lettered the rest of the backlog.
  EXPECT_EQ(flushes, 1);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().escalations, 1u);
  EXPECT_EQ(queue.stats().dead_lettered, 2u);
  EXPECT_FALSE(queue.IsQuarantined("edge"));

  // A flushed sink keeps receiving future messages once it heals.
  sink.always_fail = false;
  queue.SendInvalidation(Eject("/p3"), "k3");
  EXPECT_EQ(sink.delivered, std::vector<std::string>{"k3"});
}

TEST(ReliableDeliveryTest, EscalationQuarantinesWithoutFlushFn) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  DeliveryOptions options = NoJitterOptions();
  options.max_attempts = 2;
  ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&sink, "edge");  // kFlush but no flush callback.

  queue.SendInvalidation(Eject("/p1"), "k1");
  queue.DrainWith(&clock);
  EXPECT_TRUE(queue.IsQuarantined("edge"));

  // Messages to a quarantined sink are dead-lettered, not attempted.
  int attempts_before = sink.attempts;
  queue.SendInvalidation(Eject("/p2"), "k2");
  EXPECT_EQ(sink.attempts, attempts_before);
  EXPECT_EQ(queue.pending(), 0u);

  // Reinstating resumes delivery.
  sink.always_fail = false;
  queue.Reinstate("edge");
  queue.SendInvalidation(Eject("/p3"), "k3");
  EXPECT_EQ(sink.delivered, std::vector<std::string>{"k3"});
}

TEST(ReliableDeliveryTest, QuarantinePolicyNeverCallsFlush) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  DeliveryOptions options = NoJitterOptions();
  options.max_attempts = 2;
  options.escalation = DeliveryOptions::Escalation::kQuarantine;
  ReliableDeliveryQueue queue(&clock, options);
  int flushes = 0;
  queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });

  queue.SendInvalidation(Eject("/p1"), "k1");
  queue.DrainWith(&clock);
  EXPECT_EQ(flushes, 0);
  EXPECT_TRUE(queue.IsQuarantined("edge"));
}

TEST(ReliableDeliveryTest, DeadlineDeadLettersWithAttemptsRemaining) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  DeliveryOptions options = NoJitterOptions();
  options.max_attempts = 100;
  options.initial_backoff = 400 * kMicrosPerMilli;
  options.delivery_deadline = kMicrosPerSecond;
  ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&sink, "edge");

  queue.SendInvalidation(Eject("/p1"), "k1");
  queue.DrainWith(&clock);
  // Attempts at t=0, 400ms, 1200ms; the third fails past the 1s deadline
  // and escalates long before the 100-attempt budget.
  EXPECT_EQ(sink.attempts, 3);
  EXPECT_EQ(queue.stats().escalations, 1u);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(ReliableDeliveryTest, CheckpointRestoresPendingMessages) {
  ManualClock clock_a;
  ScriptedSink sink_a;
  sink_a.always_fail = true;
  DeliveryOptions options = NoJitterOptions();
  options.max_attempts = 10;
  ReliableDeliveryQueue queue_a(&clock_a, options);
  queue_a.AddSink(&sink_a, "edge");

  http::HttpRequest eject = Eject("/p1?id=7");
  queue_a.SendInvalidation(eject, "k1");
  queue_a.SendInvalidation(Eject("/p2"), "k2");
  ASSERT_EQ(queue_a.pending(), 2u);
  std::string state = queue_a.CheckpointState();

  // "Restart": a fresh queue over a fresh clock and a healthy sink
  // registered under the same name.
  ManualClock clock_b;
  clock_b.SetTime(5 * kMicrosPerSecond);
  ScriptedSink sink_b;
  ReliableDeliveryQueue queue_b(&clock_b, options);
  queue_b.AddSink(&sink_b, "edge");
  ASSERT_TRUE(queue_b.RestoreState(state).ok());
  EXPECT_EQ(queue_b.pending_for("edge"), 2u);

  EXPECT_EQ(queue_b.Pump(), 2u);
  EXPECT_EQ(sink_b.delivered, (std::vector<std::string>{"k1", "k2"}));
  // The restored message is the original eject, not a husk: headers and
  // parameters survived the round trip.
  EXPECT_EQ(sink_b.last_message.headers.Get("Cache-Control"), "eject");
}

TEST(ReliableDeliveryTest, CheckpointPreservesQuarantine) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  DeliveryOptions options = NoJitterOptions();
  options.max_attempts = 1;
  options.escalation = DeliveryOptions::Escalation::kQuarantine;
  ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&sink, "edge");
  queue.SendInvalidation(Eject("/p1"), "k1");
  ASSERT_TRUE(queue.IsQuarantined("edge"));

  ReliableDeliveryQueue restored(&clock, options);
  ScriptedSink sink2;
  restored.AddSink(&sink2, "edge");
  ASSERT_TRUE(restored.RestoreState(queue.CheckpointState()).ok());
  EXPECT_TRUE(restored.IsQuarantined("edge"));
}

TEST(ReliableDeliveryTest, RestoreRejectsUnknownSinkAndGarbage) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  ReliableDeliveryQueue queue(&clock, NoJitterOptions());
  queue.AddSink(&sink, "edge");
  queue.SendInvalidation(Eject("/p1"), "k1");
  std::string state = queue.CheckpointState();

  ReliableDeliveryQueue other(&clock, NoJitterOptions());
  other.AddSink(&sink, "differently-named");
  EXPECT_FALSE(other.RestoreState(state).ok());
  EXPECT_FALSE(other.RestoreState("garbage").ok());
  EXPECT_FALSE(other.RestoreState("").ok());
  // Truncation is detected, not mis-parsed.
  EXPECT_FALSE(other.RestoreState(state.substr(0, state.size() / 2)).ok());
}

DeliveryOptions BreakerOptions() {
  DeliveryOptions options = NoJitterOptions();
  options.max_attempts = 100;  // Breaker trips long before escalation.
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown = kMicrosPerSecond;
  return options;
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndDeadLettersBacklog) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  ReliableDeliveryQueue queue(&clock, BreakerOptions());
  int flushes = 0;
  queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });

  queue.SendInvalidation(Eject("/p1"), "k1");  // Failure 1.
  queue.SendInvalidation(Eject("/p2"), "k2");  // Queued behind the head.
  EXPECT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kClosed);

  // Failures 2 and 3 via retries trip the breaker; the backlog is
  // dead-lettered, but the flush waits for recovery (the sink is down).
  clock.Advance(kMicrosPerSecond);
  queue.Pump();  // Failure 2 (k1 retry).
  clock.Advance(kMicrosPerSecond);
  queue.Pump();  // Failure 3: trip.
  EXPECT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kOpen);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().breaker_opens, 1u);
  EXPECT_EQ(queue.stats().dead_lettered, 2u);  // k1 and the queued k2.
  EXPECT_EQ(flushes, 0);

  // While open: refused without an attempt.
  int attempts_before = sink.attempts;
  queue.SendInvalidation(Eject("/p3"), "k3");
  EXPECT_EQ(sink.attempts, attempts_before);
  EXPECT_EQ(queue.stats().breaker_rejections, 1u);
  EXPECT_FALSE(queue.NextRetryAt().has_value());
}

TEST(CircuitBreakerTest, HalfOpenProbeRecoversWithFlush) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  ReliableDeliveryQueue queue(&clock, BreakerOptions());
  int flushes = 0;
  queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });

  // One message, drained: 3 consecutive failed attempts trip the
  // breaker long before the 100-attempt escalation budget.
  queue.SendInvalidation(Eject("/p"), "k");
  queue.DrainWith(&clock);
  ASSERT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kOpen);

  // Cooldown elapses: observers see half-open before any message.
  clock.Advance(kMicrosPerSecond);
  EXPECT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kHalfOpen);

  // Successful probe closes the breaker AND flushes: ejects k (and the
  // rejected arrivals) were dropped while open, so the cache starts
  // clean rather than risking a stale page.
  sink.always_fail = false;
  queue.SendInvalidation(Eject("/p9"), "k9");
  EXPECT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kClosed);
  EXPECT_EQ(queue.stats().breaker_probes, 1u);
  EXPECT_EQ(queue.stats().breaker_recoveries, 1u);
  EXPECT_EQ(flushes, 1);
  EXPECT_EQ(sink.delivered, std::vector<std::string>{"k9"});

  // Healthy again: no second flush on the next message.
  queue.SendInvalidation(Eject("/p10"), "k10");
  EXPECT_EQ(flushes, 1);
}

TEST(CircuitBreakerTest, FailedProbeReopensForAnotherCooldown) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  ReliableDeliveryQueue queue(&clock, BreakerOptions());
  int flushes = 0;
  queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });

  // One message, drained: 3 consecutive failed attempts trip the
  // breaker long before the 100-attempt escalation budget.
  queue.SendInvalidation(Eject("/p"), "k");
  queue.DrainWith(&clock);
  clock.Advance(kMicrosPerSecond);
  uint64_t dead_before = queue.stats().dead_lettered;
  queue.SendInvalidation(Eject("/probe"), "kp");  // Probe fails.
  EXPECT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kOpen);
  EXPECT_EQ(queue.stats().breaker_probes, 1u);
  EXPECT_EQ(queue.stats().breaker_recoveries, 0u);
  EXPECT_EQ(queue.stats().dead_lettered, dead_before + 1);  // The probe.
  EXPECT_EQ(flushes, 0);

  // Half a cooldown is not enough; a full one re-arms the probe.
  clock.Advance(kMicrosPerSecond / 2);
  EXPECT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kOpen);
  clock.Advance(kMicrosPerSecond / 2);
  sink.always_fail = false;
  queue.SendInvalidation(Eject("/p2"), "k2");
  EXPECT_EQ(queue.stats().breaker_recoveries, 1u);
  EXPECT_EQ(flushes, 1);
}

TEST(CircuitBreakerTest, NoFlushChannelQuarantinesOnTrip) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  ReliableDeliveryQueue queue(&clock, BreakerOptions());
  queue.AddSink(&sink, "edge");  // No flush callback.

  // One message, drained: 3 consecutive failed attempts trip the
  // breaker long before the 100-attempt escalation budget.
  queue.SendInvalidation(Eject("/p"), "k");
  queue.DrainWith(&clock);
  // Dropped ejects can never be compensated: quarantined immediately.
  EXPECT_TRUE(queue.IsQuarantined("edge"));
  EXPECT_EQ(queue.stats().escalations, 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  ManualClock clock;
  ScriptedSink sink;
  ReliableDeliveryQueue queue(&clock, BreakerOptions());
  queue.AddSink(&sink, "edge", [] {});

  // 2 failures, success, 2 failures: never 3 consecutive, never trips.
  for (int round = 0; round < 2; ++round) {
    sink.fail_next = 2;
    queue.SendInvalidation(Eject("/p"), "k");
    queue.DrainWith(&clock);
  }
  EXPECT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kClosed);
  EXPECT_EQ(queue.stats().breaker_opens, 0u);
  EXPECT_EQ(queue.stats().delivered, 2u);
}

TEST(CircuitBreakerTest, BreakerStateSurvivesCheckpointRestore) {
  ManualClock clock;
  ScriptedSink sink;
  sink.always_fail = true;
  ReliableDeliveryQueue queue(&clock, BreakerOptions());
  int flushes = 0;
  queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });
  // One message, drained: 3 consecutive failed attempts trip the
  // breaker long before the 100-attempt escalation budget.
  queue.SendInvalidation(Eject("/p"), "k");
  queue.DrainWith(&clock);
  ASSERT_EQ(queue.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kOpen);
  std::string state = queue.CheckpointState();

  // Restart long after the trip: the restored breaker is still open and
  // restarts a FULL cooldown on the new clock (the outage's age did not
  // survive the crash, so assume the worst).
  ManualClock clock_b;
  clock_b.SetTime(60 * kMicrosPerSecond);
  ScriptedSink sink_b;
  ReliableDeliveryQueue restored(&clock_b, BreakerOptions());
  int flushes_b = 0;
  restored.AddSink(&sink_b, "edge", [&flushes_b] { ++flushes_b; });
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kOpen);

  // The pending recovery flush is durable: after cooldown, a successful
  // probe still flushes, covering ejects dropped before the crash.
  clock_b.Advance(kMicrosPerSecond);
  restored.SendInvalidation(Eject("/p9"), "k9");
  EXPECT_EQ(restored.breaker_state("edge"),
            ReliableDeliveryQueue::BreakerState::kClosed);
  EXPECT_EQ(flushes_b, 1);
  EXPECT_EQ(sink_b.delivered, std::vector<std::string>{"k9"});
}

/// Sink that fails with a fixed status until `fail_next` runs out.
class StatusSink : public invalidator::InvalidationSink {
 public:
  explicit StatusSink(Status failure) : failure_(std::move(failure)) {}

  Status SendInvalidation(const http::HttpRequest&,
                          const std::string& cache_key) override {
    ++attempts;
    if (fail_next > 0) {
      --fail_next;
      return failure_;
    }
    delivered.push_back(cache_key);
    return Status::OK();
  }

  int fail_next = 0;
  int attempts = 0;
  std::vector<std::string> delivered;

 private:
  Status failure_;
};

TEST(DeliveryTaxonomyTest, FatalStatusDeadLettersWithoutRetries) {
  // A protocol version mismatch fails identically forever: the queue
  // must not burn its attempt budget, and MUST escalate — an
  // undeliverable eject means the cache may be serving the stale page.
  for (Status fatal :
       {Status::NotSupported("wire protocol: version mismatch"),
        Status::ParseError("corrupt frame from server"),
        Status::InvalidArgument("malformed eject")}) {
    ManualClock clock;
    StatusSink sink(fatal);
    sink.fail_next = 1000;
    int flushes = 0;
    ReliableDeliveryQueue queue(&clock, NoJitterOptions());
    queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });

    queue.SendInvalidation(Eject("/p1"), "k1");
    EXPECT_EQ(sink.attempts, 1) << fatal.ToString();  // No retries.
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.stats().dead_lettered, 1u);
    EXPECT_EQ(queue.stats().fatal_dead_letters, 1u);
    EXPECT_EQ(queue.stats().escalations, 1u);
    EXPECT_EQ(flushes, 1);
    EXPECT_FALSE(queue.NextRetryAt().has_value());
  }
}

TEST(DeliveryTaxonomyTest, RetryableStatusesEarnTheFullBudget) {
  // kUnavailable (the wire's transient code) and kInternal (legacy
  // sinks') both retry to eventual success.
  for (Status transient : {Status::Unavailable("connection reset"),
                           Status::Internal("scripted failure")}) {
    ManualClock clock;
    StatusSink sink(transient);
    sink.fail_next = 3;
    ReliableDeliveryQueue queue(&clock, NoJitterOptions());
    queue.AddSink(&sink, "edge");

    queue.SendInvalidation(Eject("/p1"), "k1");
    queue.DrainWith(&clock);
    EXPECT_EQ(sink.delivered, std::vector<std::string>{"k1"})
        << transient.ToString();
    EXPECT_EQ(sink.attempts, 4);
    EXPECT_EQ(queue.stats().dead_lettered, 0u);
    EXPECT_EQ(queue.stats().fatal_dead_letters, 0u);
  }
}

TEST(DeliveryTaxonomyTest, EveryFatalMessageDiesOnArrival) {
  // While the sink keeps returning a fatal status, every message is
  // dead-lettered on its first (and only) attempt, each with its own
  // escalation — no backlog ever forms behind a broken protocol.
  ManualClock clock;
  StatusSink sink(Status::NotSupported("version mismatch"));
  sink.fail_next = 1000;
  int flushes = 0;
  ReliableDeliveryQueue queue(&clock, NoJitterOptions());
  queue.AddSink(&sink, "edge", [&flushes] { ++flushes; });

  queue.SendInvalidation(Eject("/p1"), "k1");
  queue.SendInvalidation(Eject("/p2"), "k2");
  EXPECT_EQ(sink.attempts, 2);
  EXPECT_EQ(queue.stats().dead_lettered, 2u);
  EXPECT_EQ(queue.stats().fatal_dead_letters, 2u);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(flushes, 2);
}

TEST(DeliveryTaxonomyTest, HealthReportCountsFatalDeadLetters) {
  ManualClock clock;
  StatusSink sink(Status::ParseError("corrupt frame"));
  sink.fail_next = 1000;
  ReliableDeliveryQueue queue(&clock, NoJitterOptions());
  queue.AddSink(&sink, "edge", [] {});
  queue.SendInvalidation(Eject("/p1"), "k1");
  std::string report = queue.HealthReport();
  EXPECT_NE(report.find("fatal-dead-letters=1"), std::string::npos)
      << report;
}

TEST(CircuitBreakerTest, HealthReportNamesSinkStates) {
  ManualClock clock;
  ScriptedSink healthy, down;
  down.always_fail = true;
  ReliableDeliveryQueue queue(&clock, BreakerOptions());
  queue.AddSink(&healthy, "front", [] {});
  queue.AddSink(&down, "edge", [] {});
  // One message, drained: 3 consecutive failed attempts trip the
  // breaker long before the 100-attempt escalation budget.
  queue.SendInvalidation(Eject("/p"), "k");
  queue.DrainWith(&clock);
  std::string report = queue.HealthReport();
  EXPECT_NE(report.find("front=closed"), std::string::npos) << report;
  EXPECT_NE(report.find("edge=open"), std::string::npos) << report;
  EXPECT_NE(report.find("breaker-opens=1"), std::string::npos) << report;
}

}  // namespace
}  // namespace cacheportal::core
