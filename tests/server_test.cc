#include <gtest/gtest.h>

#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"
#include "server/load_balancer.h"
#include "server/web_server.h"

namespace cacheportal::server {
namespace {

using sql::Value;

db::Database* MakeShopDb() {
  auto* db = new db::Database();
  db->CreateTable(db::TableSchema("Item", {{"name", db::ColumnType::kString},
                                           {"price", db::ColumnType::kInt}}));
  db->ExecuteSql("INSERT INTO Item VALUES ('pen', 2)").value();
  db->ExecuteSql("INSERT INTO Item VALUES ('book', 12)").value();
  return db;
}

// ---------------------------------------------------------------------
// JDBC layer
// ---------------------------------------------------------------------

TEST(JdbcTest, DriverManagerRoutesByUrl) {
  db::Database* db = MakeShopDb();
  auto driver = std::make_unique<MemoryDbDriver>();
  driver->BindDatabase("shop", db);
  DriverManager manager;
  manager.RegisterDriver(std::move(driver));

  auto conn = manager.GetConnection("jdbc:cacheportal:shop");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto result = (*conn)->ExecuteQuery("SELECT * FROM Item");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);

  EXPECT_TRUE(
      manager.GetConnection("jdbc:other:shop").status().IsNotFound());
  EXPECT_TRUE(
      manager.GetConnection("jdbc:cacheportal:unbound").status().IsNotFound());
  delete db;
}

TEST(JdbcTest, ExecuteUpdateReturnsAffected) {
  db::Database* db = MakeShopDb();
  MemoryDbDriver driver;
  driver.BindDatabase("shop", db);
  auto conn = driver.Connect("jdbc:cacheportal:shop");
  ASSERT_TRUE(conn.ok());
  auto n = (*conn)->ExecuteUpdate("UPDATE Item SET price = 3 WHERE name = 'pen'");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_FALSE((*conn)->ExecuteUpdate("SELECT * FROM Item").ok());
  delete db;
}

TEST(JdbcTest, ConnectionPoolRoundRobinsAndCounts) {
  db::Database* db = MakeShopDb();
  auto driver = std::make_unique<MemoryDbDriver>();
  driver->BindDatabase("shop", db);
  DriverManager manager;
  manager.RegisterDriver(std::move(driver));

  auto pool = ConnectionPool::Create("p", "jdbc:cacheportal:shop", 3,
                                     &manager);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_EQ((*pool)->size(), 3u);
  Connection* first = (*pool)->Acquire();
  (*pool)->Acquire();
  (*pool)->Acquire();
  EXPECT_EQ((*pool)->Acquire(), first);  // Wrapped around.
  EXPECT_EQ((*pool)->acquisitions(), 4u);
  delete db;
}

TEST(JdbcTest, ConnectionPoolSizeZeroRejected) {
  DriverManager manager;
  EXPECT_FALSE(ConnectionPool::Create("p", "x", 0, &manager).ok());
}

TEST(JdbcTest, DataSourceRegistry) {
  db::Database* db = MakeShopDb();
  auto driver = std::make_unique<MemoryDbDriver>();
  driver->BindDatabase("shop", db);
  DriverManager manager;
  manager.RegisterDriver(std::move(driver));
  auto pool =
      ConnectionPool::Create("p", "jdbc:cacheportal:shop", 1, &manager);
  ASSERT_TRUE(pool.ok());

  DataSourceRegistry registry;
  ASSERT_TRUE(registry.Bind("jdbc/shop", pool->get()).ok());
  EXPECT_TRUE(registry.Bind("jdbc/shop", pool->get()).IsAlreadyExists());
  auto found = registry.Lookup("jdbc/shop");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, pool->get());
  EXPECT_TRUE(registry.Lookup("jdbc/missing").status().IsNotFound());
  delete db;
}

// ---------------------------------------------------------------------
// Application server + servlets
// ---------------------------------------------------------------------

class AppServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(MakeShopDb());
    auto driver = std::make_unique<MemoryDbDriver>();
    driver->BindDatabase("shop", db_.get());
    manager_.RegisterDriver(std::move(driver));
    pool_ = std::move(
        ConnectionPool::Create("p", "jdbc:cacheportal:shop", 2, &manager_)
            .value());
    app_ = std::make_unique<ApplicationServer>(pool_.get());
  }

  std::unique_ptr<db::Database> db_;
  DriverManager manager_;
  std::unique_ptr<ConnectionPool> pool_;
  std::unique_ptr<ApplicationServer> app_;
};

TEST_F(AppServerTest, RoutesToServletWithConnection) {
  ASSERT_TRUE(
      app_->RegisterServlet(
              "/items",
              std::make_unique<FunctionServlet>(
                  [](const http::HttpRequest&, ServletContext* ctx) {
                    auto result =
                        ctx->connection->ExecuteQuery("SELECT * FROM Item");
                    return http::HttpResponse::Ok(
                        result.ok() ? result->ToString() : "error");
                  }),
              ServletConfig{})
          .ok());

  auto req = http::HttpRequest::Get("http://shop/items");
  http::HttpResponse resp = app_->Handle(*req);
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_NE(resp.body.find("pen"), std::string::npos);
  EXPECT_EQ(app_->requests_served(), 1u);
}

TEST_F(AppServerTest, UnknownPathIs404) {
  auto req = http::HttpRequest::Get("http://shop/missing");
  EXPECT_EQ(app_->Handle(*req).status_code, 404);
}

TEST_F(AppServerTest, DuplicateRegistrationRejected) {
  auto make = [] {
    return std::make_unique<FunctionServlet>(
        [](const http::HttpRequest&, ServletContext*) {
          return http::HttpResponse::Ok("x");
        });
  };
  ASSERT_TRUE(app_->RegisterServlet("/a", make(), ServletConfig{}).ok());
  EXPECT_TRUE(
      app_->RegisterServlet("/a", make(), ServletConfig{}).IsAlreadyExists());
}

TEST_F(AppServerTest, InterceptorSeesRequestAndMutatesResponse) {
  class Recorder : public ServletInterceptor {
   public:
    uint64_t BeforeService(const std::string& name,
                           const http::HttpRequest&) override {
      names.push_back(name);
      return 7;
    }
    void AfterService(uint64_t token, const std::string&,
                      const http::HttpRequest&,
                      http::HttpResponse* response) override {
      tokens.push_back(token);
      response->headers.Set("X-Wrapped", "yes");
    }
    std::vector<std::string> names;
    std::vector<uint64_t> tokens;
  };

  Recorder recorder;
  app_->SetInterceptor(&recorder);
  ServletConfig config;
  config.name = "items-servlet";
  ASSERT_TRUE(app_->RegisterServlet(
                      "/items",
                      std::make_unique<FunctionServlet>(
                          [](const http::HttpRequest&, ServletContext*) {
                            return http::HttpResponse::Ok("x");
                          }),
                      config)
                  .ok());
  auto req = http::HttpRequest::Get("http://shop/items");
  http::HttpResponse resp = app_->Handle(*req);
  EXPECT_EQ(resp.headers.Get("X-Wrapped"), "yes");
  ASSERT_EQ(recorder.names.size(), 1u);
  EXPECT_EQ(recorder.names[0], "items-servlet");
  EXPECT_EQ(recorder.tokens[0], 7u);
}

TEST_F(AppServerTest, FindConfigAndPaths) {
  ServletConfig config;
  config.key_get_params = {"model"};
  ASSERT_TRUE(app_->RegisterServlet(
                      "/cars",
                      std::make_unique<FunctionServlet>(
                          [](const http::HttpRequest&, ServletContext*) {
                            return http::HttpResponse::Ok("x");
                          }),
                      config)
                  .ok());
  const ServletConfig* found = app_->FindConfig("/cars");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, "/cars");  // Defaults to path.
  EXPECT_EQ(found->key_get_params, std::vector<std::string>{"model"});
  EXPECT_EQ(app_->FindConfig("/other"), nullptr);
  EXPECT_EQ(app_->Paths(), std::vector<std::string>{"/cars"});
}

// ---------------------------------------------------------------------
// Web server
// ---------------------------------------------------------------------

TEST(WebServerTest, ServesStaticAndForwardsDynamic) {
  class Echo : public RequestHandler {
   public:
    http::HttpResponse Handle(const http::HttpRequest& req) override {
      return http::HttpResponse::Ok("dynamic:" + req.path);
    }
  };
  Echo app;
  WebServer web(&app);
  web.AddStaticPage("/index.html", "<html>home</html>");

  auto static_req = http::HttpRequest::Get("http://shop/index.html");
  http::HttpResponse r1 = web.Handle(*static_req);
  EXPECT_EQ(r1.body, "<html>home</html>");
  EXPECT_TRUE(r1.GetCacheControl().is_public);

  auto dyn_req = http::HttpRequest::Get("http://shop/app");
  EXPECT_EQ(web.Handle(*dyn_req).body, "dynamic:/app");
  EXPECT_EQ(web.requests_served(), 2u);
  EXPECT_EQ(web.static_served(), 1u);
  EXPECT_EQ(web.dynamic_forwarded(), 1u);
}

TEST(WebServerTest, NoAppServerMeans404) {
  WebServer web(nullptr);
  auto req = http::HttpRequest::Get("http://shop/x");
  EXPECT_EQ(web.Handle(*req).status_code, 404);
}

// ---------------------------------------------------------------------
// Load balancer
// ---------------------------------------------------------------------

class CountingHandler : public RequestHandler {
 public:
  http::HttpResponse Handle(const http::HttpRequest&) override {
    ++count;
    return http::HttpResponse::Ok("ok");
  }
  int count = 0;
};

TEST(LoadBalancerTest, RoundRobinSpreadsEvenly) {
  CountingHandler a, b;
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  lb.AddBackend(&a);
  lb.AddBackend(&b);
  auto req = http::HttpRequest::Get("http://shop/x");
  for (int i = 0; i < 10; ++i) lb.Handle(*req);
  EXPECT_EQ(a.count, 5);
  EXPECT_EQ(b.count, 5);
  EXPECT_EQ(lb.RequestsTo(0), 5u);
}

TEST(LoadBalancerTest, LeastRequestsPolicy) {
  CountingHandler a, b;
  LoadBalancer lb(BalancePolicy::kLeastRequests);
  lb.AddBackend(&a);
  lb.AddBackend(&b);
  auto req = http::HttpRequest::Get("http://shop/x");
  for (int i = 0; i < 9; ++i) lb.Handle(*req);
  EXPECT_LE(std::abs(a.count - b.count), 1);
}

TEST(LoadBalancerTest, NoBackendsIs503) {
  LoadBalancer lb;
  auto req = http::HttpRequest::Get("http://shop/x");
  EXPECT_EQ(lb.Handle(*req).status_code, 503);
}

}  // namespace
}  // namespace cacheportal::server
