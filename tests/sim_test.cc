#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/site.h"
#include "sim/station.h"

namespace cacheportal::sim {
namespace {

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.NowMicros(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.At(10, [&] { order.push_back(1); });
  sim.At(10, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.NowMicros(), 50);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&]() {
    if (++count < 5) sim.After(10, tick);
  };
  sim.After(10, tick);
  sim.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.NowMicros(), 50);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.At(100, [] {});
  sim.RunAll();
  bool fired = false;
  sim.At(10, [&] { fired = true; });  // In the "past".
  sim.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.NowMicros(), 100);
}

// ---------------------------------------------------------------------
// Station
// ---------------------------------------------------------------------

TEST(StationTest, SequentialServiceOnSingleServer) {
  Simulator sim;
  Station station(&sim, "s", 1);
  std::vector<Micros> completions;
  station.Submit(10, [&] { completions.push_back(sim.NowMicros()); });
  station.Submit(10, [&] { completions.push_back(sim.NowMicros()); });
  sim.RunAll();
  EXPECT_EQ(completions, (std::vector<Micros>{10, 20}));
  EXPECT_EQ(station.jobs_completed(), 2u);
  EXPECT_EQ(station.total_busy(), 20);
  EXPECT_EQ(station.total_wait(), 10);  // Second job waited 10.
}

TEST(StationTest, MultiServerParallelism) {
  Simulator sim;
  Station station(&sim, "s", 2);
  std::vector<Micros> completions;
  for (int i = 0; i < 2; ++i) {
    station.Submit(10, [&] { completions.push_back(sim.NowMicros()); });
  }
  sim.RunAll();
  EXPECT_EQ(completions, (std::vector<Micros>{10, 10}));
  EXPECT_EQ(station.total_wait(), 0);
}

TEST(StationTest, UtilizationMeasured) {
  Simulator sim;
  Station station(&sim, "s", 1);
  station.Submit(50, nullptr);
  sim.RunAll();
  EXPECT_DOUBLE_EQ(station.Utilization(100), 0.5);
  EXPECT_DOUBLE_EQ(station.Utilization(0), 0.0);
}

TEST(ProcessPoolTest, BlocksAtCapacity) {
  Simulator sim;
  ProcessPool pool(&sim, "p", 1);
  std::vector<int> order;
  pool.Acquire([&] {
    order.push_back(1);
    // Hold the unit until t=100.
    sim.At(100, [&] { pool.Release(); });
  });
  pool.Acquire([&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.NowMicros(), 100);
}

TEST(ProcessPoolTest, TracksWaiters) {
  Simulator sim;
  ProcessPool pool(&sim, "p", 1);
  pool.Acquire([] {});
  sim.RunAll();
  pool.Acquire([] {});
  pool.Acquire([] {});
  EXPECT_EQ(pool.waiting(), 2u);
  EXPECT_EQ(pool.in_use(), 1);
  pool.Release();
  sim.RunAll();
  EXPECT_EQ(pool.waiting(), 1u);
}

// ---------------------------------------------------------------------
// Site simulation — qualitative checks of the paper's claims
// ---------------------------------------------------------------------

SimParams FastParams() {
  SimParams params;
  params.duration = 60 * kMicrosPerSecond;
  params.warmup = 10 * kMicrosPerSecond;
  return params;
}

TEST(SiteSimTest, AllConfigsCompleteRequests) {
  for (SiteConfig config : {SiteConfig::kReplicated,
                            SiteConfig::kMiddleTierCache,
                            SiteConfig::kWebCache}) {
    RunReport report = RunSiteSimulation(config, FastParams());
    EXPECT_GT(report.metrics.completed, 100u) << SiteConfigName(config);
    EXPECT_GT(report.metrics.response.Mean(), 0.0);
  }
}

TEST(SiteSimTest, ConfigurationIIsWorstByFar) {
  // Table 2's headline: Conf I is an order of magnitude slower even with
  // no updates (resource starvation at the replicas).
  SimParams params = FastParams();
  RunReport conf1 = RunSiteSimulation(SiteConfig::kReplicated, params);
  RunReport conf3 = RunSiteSimulation(SiteConfig::kWebCache, params);
  EXPECT_GT(conf1.metrics.response.Mean(),
            5.0 * conf3.metrics.response.Mean());
}

TEST(SiteSimTest, ConfIHasNoCacheHits) {
  RunReport report =
      RunSiteSimulation(SiteConfig::kReplicated, FastParams());
  EXPECT_EQ(report.metrics.hit_response.count, 0u);
  EXPECT_EQ(report.metrics.miss_response.count, report.metrics.completed);
}

TEST(SiteSimTest, CachedConfigsHitAtConfiguredRatio) {
  RunReport report = RunSiteSimulation(SiteConfig::kWebCache, FastParams());
  double ratio = static_cast<double>(report.metrics.hit_response.count) /
                 report.metrics.completed;
  EXPECT_NEAR(ratio, 0.7, 0.05);
}

TEST(SiteSimTest, UpdatesHurtConfIIMoreThanConfIII) {
  // The paper: the II-III gap widens as updates increase, because II's
  // hits share the network with update traffic and sync queries.
  SimParams quiet = FastParams();
  SimParams busy = FastParams();
  busy.updates = UpdateLoad{12, 12, 12, 12};

  RunReport ii_quiet =
      RunSiteSimulation(SiteConfig::kMiddleTierCache, quiet);
  RunReport ii_busy = RunSiteSimulation(SiteConfig::kMiddleTierCache, busy);
  RunReport iii_quiet = RunSiteSimulation(SiteConfig::kWebCache, quiet);
  RunReport iii_busy = RunSiteSimulation(SiteConfig::kWebCache, busy);

  double ii_growth =
      ii_busy.metrics.response.Mean() - ii_quiet.metrics.response.Mean();
  double iii_growth =
      iii_busy.metrics.response.Mean() - iii_quiet.metrics.response.Mean();
  EXPECT_GT(ii_growth, iii_growth);

  // Conf III hit responses stay flat (the cache is outside the network).
  EXPECT_NEAR(iii_busy.metrics.hit_response.Mean(),
              iii_quiet.metrics.hit_response.Mean(), 5.0);
}

TEST(SiteSimTest, Table3ConnectionCostCollapsesConfII) {
  SimParams cheap = FastParams();
  SimParams costly = FastParams();
  costly.data_cache_connection_cost = true;

  RunReport fast = RunSiteSimulation(SiteConfig::kMiddleTierCache, cheap);
  RunReport slow = RunSiteSimulation(SiteConfig::kMiddleTierCache, costly);
  // With per-access connection establishment on the shared app-server
  // CPU, Conf II degrades dramatically (Table 3's 52s vs 471ms story).
  EXPECT_GT(slow.metrics.response.Mean(),
            10.0 * fast.metrics.response.Mean());
}

TEST(SiteSimTest, DeterministicForFixedSeed) {
  RunReport a = RunSiteSimulation(SiteConfig::kWebCache, FastParams());
  RunReport b = RunSiteSimulation(SiteConfig::kWebCache, FastParams());
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_DOUBLE_EQ(a.metrics.response.Mean(), b.metrics.response.Mean());
}

TEST(SiteSimTest, SeedChangesOutcomeSlightly) {
  SimParams params = FastParams();
  RunReport a = RunSiteSimulation(SiteConfig::kWebCache, params);
  params.seed = 99;
  RunReport b = RunSiteSimulation(SiteConfig::kWebCache, params);
  EXPECT_NE(a.metrics.completed, b.metrics.completed);
}

TEST(SiteSimTest, UtilizationsReported) {
  RunReport report = RunSiteSimulation(SiteConfig::kWebCache, FastParams());
  EXPECT_GT(report.db_utilization, 0.1);
  EXPECT_LT(report.network_utilization, 1.0);
  EXPECT_GT(report.cache_utilization, 0.0);
}

}  // namespace
}  // namespace cacheportal::sim
