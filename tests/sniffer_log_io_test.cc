#include <gtest/gtest.h>

#include "sniffer/log_io.h"

#include "sniffer/mapper.h"

namespace cacheportal::sniffer {
namespace {

TEST(LogFieldEscapeTest, RoundTripsControlCharacters) {
  for (const std::string original :
       {std::string("plain"), std::string("with\ttab"),
        std::string("with\nnewline"), std::string("100%"),
        std::string("%09 literal"), std::string("\t\n\r%"),
        std::string("")}) {
    EXPECT_EQ(UnescapeLogField(EscapeLogField(original)), original);
  }
}

TEST(LogFieldEscapeTest, EscapedFormHasNoSeparators) {
  std::string escaped = EscapeLogField("a\tb\nc");
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
}

TEST(RequestLogIoTest, RoundTrip) {
  RequestLog log;
  uint64_t a = log.Open("cars", "/cars?model=A", "session=s1", "qty=2",
                        "shop/cars?model=A##", 100);
  log.Close(a, 250);
  log.Open("weird\tname", "/p?x=a b", "", "", "key\nwith newline", 300);

  std::string text = SerializeRequestLog(log.entries());
  auto parsed = ParseRequestLog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].id, 1u);
  EXPECT_EQ((*parsed)[0].servlet_name, "cars");
  EXPECT_EQ((*parsed)[0].page_key, "shop/cars?model=A##");
  EXPECT_EQ((*parsed)[0].receive_time, 100);
  EXPECT_EQ((*parsed)[0].delivery_time, 250);
  EXPECT_TRUE((*parsed)[0].completed());
  EXPECT_EQ((*parsed)[1].servlet_name, "weird\tname");
  EXPECT_EQ((*parsed)[1].page_key, "key\nwith newline");
  EXPECT_FALSE((*parsed)[1].completed());
}

TEST(QueryLogIoTest, RoundTrip) {
  QueryLog log;
  log.Append("SELECT * FROM Car WHERE maker = 'O''Brien'", true, 10, 20);
  log.Append("DELETE FROM Car\nWHERE price > 100", false, 30, 35);

  std::string text = SerializeQueryLog(log.entries());
  auto parsed = ParseQueryLog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].sql, "SELECT * FROM Car WHERE maker = 'O''Brien'");
  EXPECT_TRUE((*parsed)[0].is_select);
  EXPECT_EQ((*parsed)[1].sql, "DELETE FROM Car\nWHERE price > 100");
  EXPECT_FALSE((*parsed)[1].is_select);
  EXPECT_EQ((*parsed)[1].receive_time, 30);
}

TEST(LogIoTest, EmptyLogsSerializeToEmpty) {
  EXPECT_EQ(SerializeRequestLog({}), "");
  EXPECT_EQ(SerializeQueryLog({}), "");
  EXPECT_TRUE(ParseRequestLog("")->empty());
  EXPECT_TRUE(ParseQueryLog("")->empty());
}

TEST(LogIoTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseRequestLog("garbage line").ok());
  EXPECT_FALSE(ParseRequestLog("Q\t1\tS\t1\t2\tsql").ok());  // Wrong tag.
  EXPECT_FALSE(ParseQueryLog("Q\t1\tX\t1\t2\tsql").ok());    // Bad kind.
  EXPECT_FALSE(ParseQueryLog("Q\t1\tS\t1").ok());            // Short.
}

TEST(LogIoTest, ShippedLogsDriveTheMapper) {
  // The deployment flow of Figure 7: logs produced on the server side,
  // shipped as text, re-materialized on the invalidator machine, joined.
  RequestLog server_requests;
  QueryLog server_queries;
  uint64_t id = server_requests.Open("s", "/p", "", "", "page-key", 100);
  server_queries.Append("SELECT * FROM T", true, 120, 150);
  server_requests.Close(id, 200);

  std::string shipped_requests =
      SerializeRequestLog(server_requests.entries());
  std::string shipped_queries = SerializeQueryLog(server_queries.entries());

  // Invalidator side.
  auto remote_requests = ParseRequestLog(shipped_requests);
  auto remote_queries = ParseQueryLog(shipped_queries);
  ASSERT_TRUE(remote_requests.ok());
  ASSERT_TRUE(remote_queries.ok());

  RequestLog rebuilt_requests;
  for (const RequestLogEntry& e : *remote_requests) {
    uint64_t nid = rebuilt_requests.Open(e.servlet_name, e.request_string,
                                         e.cookie_string, e.post_string,
                                         e.page_key, e.receive_time);
    if (e.completed()) rebuilt_requests.Close(nid, e.delivery_time);
  }
  QueryLog rebuilt_queries;
  for (const QueryLogEntry& e : *remote_queries) {
    rebuilt_queries.Append(e.sql, e.is_select, e.receive_time,
                           e.delivery_time);
  }

  QiUrlMap map;
  RequestToQueryMapper mapper(&rebuilt_requests, &rebuilt_queries, &map);
  EXPECT_EQ(mapper.Run(), 1u);
  EXPECT_EQ(map.PagesForQuery("SELECT * FROM T"),
            std::vector<std::string>{"page-key"});
}

TEST(QiUrlMapIoTest, SerializeDeserializeRoundTrip) {
  QiUrlMap map;
  map.Add("SELECT * FROM Car WHERE maker = 'O''Brien'",
          "shop/cars?maker=O%27Brien##", "/cars", 100);
  map.Add("SELECT 1", "shop/one?##", "/one", 200);
  map.Add("SELECT 1", "shop/two?##", "/two", 300);

  auto restored = QiUrlMap::Deserialize(map.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), 3u);
  EXPECT_EQ(restored->NumQueries(), 2u);
  EXPECT_EQ(restored->NumPages(), 3u);
  EXPECT_EQ(restored->PagesForQuery("SELECT 1").size(), 2u);
  EXPECT_EQ(
      restored->QueriesForPage("shop/cars?maker=O%27Brien##").size(), 1u);
}

TEST(QiUrlMapIoTest, EmptyAndMalformed) {
  QiUrlMap empty;
  EXPECT_EQ(empty.Serialize(), "");
  EXPECT_TRUE(QiUrlMap::Deserialize("")->size() == 0);
  EXPECT_FALSE(QiUrlMap::Deserialize("garbage").ok());
  EXPECT_FALSE(QiUrlMap::Deserialize("M\t1\tq").ok());
}

/// Regression: Deserialize used to re-assign row IDs densely from 1,
/// silently shifting every row under a consumer's ReadSince cursor — the
/// cursor could then replay rows it had already consumed or, worse, skip
/// rows it had never seen. IDs (and the ID counter) must restore
/// verbatim.
TEST(QiUrlMapIoTest, DeserializePreservesRowIdsAndCursors) {
  QiUrlMap map;
  map.Add("SELECT 1", "page-1", "/r", 100);  // id 1.
  map.Add("SELECT 2", "page-2", "/r", 200);  // id 2.
  map.Add("SELECT 3", "page-3", "/r", 300);  // id 3.
  // Remove the middle row: the surviving IDs {1, 3} are now sparse, the
  // exact shape dense re-numbering destroyed.
  ASSERT_EQ(map.RemovePage("page-2"), 1u);

  // A consumer consumed everything up to id 1; its cursor is 1.
  const uint64_t cursor = 1;
  ASSERT_EQ(map.ReadSince(cursor).size(), 1u);

  auto restored = QiUrlMap::Deserialize(map.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // The old cursor is still exact against the restored map: the consumed
  // row stays below it (no replay), the unconsumed row above it (no
  // skip).
  std::vector<QiUrlEntry> pending = restored->ReadSince(cursor);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, 3u);
  EXPECT_EQ(pending[0].query_sql, "SELECT 3");
  EXPECT_EQ(restored->LastId(), map.LastId());

  // The ID counter restored too: a new row extends the sequence instead
  // of colliding with (or shadowing) a consumed ID.
  uint64_t next = restored->Add("SELECT 4", "page-4", "/r", 400);
  EXPECT_EQ(next, 4u);
  EXPECT_EQ(restored->ReadSince(3).size(), 1u);
}

TEST(QiUrlMapIoTest, DeserializeRejectsBadAndDuplicateIds) {
  // A zero ID would hide under every cursor; duplicate IDs (or duplicate
  // (query, page) pairs under different IDs) corrupt the scan order.
  EXPECT_FALSE(QiUrlMap::Deserialize("M\t0\tq\tp\tr\t10\n").ok());
  EXPECT_FALSE(QiUrlMap::Deserialize("M\tabc\tq\tp\tr\t10\n").ok());
  EXPECT_FALSE(
      QiUrlMap::Deserialize(
          "M\t1\tq\tp\tr\t10\nM\t1\tq2\tp2\tr\t20\n")
          .ok());
  EXPECT_FALSE(
      QiUrlMap::Deserialize(
          "M\t1\tq\tp\tr\t10\nM\t2\tq\tp\tr\t20\n")
          .ok());
}

TEST(QiUrlMapTest, EpochCountsRowSetMutationsOnly) {
  QiUrlMap map;
  uint64_t e0 = map.epoch();
  map.Add("SELECT 1", "p1", "/r", 100);
  EXPECT_GT(map.epoch(), e0);  // New row.
  uint64_t e1 = map.epoch();
  map.Add("SELECT 1", "p1", "/r", 999);  // Dedup: timestamp refresh only.
  EXPECT_EQ(map.epoch(), e1);
  EXPECT_EQ(map.RemovePage("absent"), 0u);  // No row removed.
  EXPECT_EQ(map.epoch(), e1);
  EXPECT_EQ(map.RemovePage("p1"), 1u);
  EXPECT_GT(map.epoch(), e1);
}

}  // namespace
}  // namespace cacheportal::sniffer
