#include <gtest/gtest.h>

#include "common/clock.h"
#include "db/database.h"
#include "server/jdbc.h"
#include "sniffer/mapper.h"
#include "sniffer/qiurl_map.h"
#include "sniffer/query_log.h"
#include "sniffer/query_logger.h"
#include "sniffer/request_log.h"
#include "sniffer/request_logger.h"

namespace cacheportal::sniffer {
namespace {

// ---------------------------------------------------------------------
// Logs
// ---------------------------------------------------------------------

TEST(RequestLogTest, OpenCloseLifecycle) {
  RequestLog log;
  uint64_t id = log.Open("servlet", "/cars?m=1", "c=1", "p=1", "key", 100);
  EXPECT_EQ(id, 1u);
  EXPECT_FALSE(log.entries()[0].completed());
  log.Close(id, 250);
  EXPECT_TRUE(log.entries()[0].completed());
  EXPECT_EQ(log.entries()[0].receive_time, 100);
  EXPECT_EQ(log.entries()[0].delivery_time, 250);
}

TEST(RequestLogTest, CloseUnknownIdIgnored) {
  RequestLog log;
  log.Close(42, 100);  // No crash, no effect.
  EXPECT_EQ(log.size(), 0u);
}

TEST(RequestLogTest, ReadSince) {
  RequestLog log;
  for (int i = 0; i < 4; ++i) log.Open("s", "r", "", "", "k", i);
  EXPECT_EQ(log.ReadSince(0).size(), 4u);
  EXPECT_EQ(log.ReadSince(2).size(), 2u);
  EXPECT_EQ(log.ReadSince(9).size(), 0u);
}

TEST(QueryLogTest, AppendAndRead) {
  QueryLog log;
  log.Append("SELECT 1", true, 10, 20);
  log.Append("DELETE FROM t", false, 30, 35);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.entries()[0].is_select);
  EXPECT_FALSE(log.entries()[1].is_select);
  EXPECT_EQ(log.ReadSince(1).size(), 1u);
}

// ---------------------------------------------------------------------
// Query logger (JDBC wrapper)
// ---------------------------------------------------------------------

TEST(QueryLoggerTest, WrapsDriverAndRecordsTimestamps) {
  db::Database db;
  db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}));

  auto inner = std::make_unique<server::MemoryDbDriver>();
  inner->BindDatabase("d", &db);

  ManualClock clock(1000);
  QueryLog log;
  QueryLoggingDriver wrapper(inner.get(), &log, &clock);

  EXPECT_TRUE(wrapper.AcceptsUrl("jdbc:cacheportal-log:jdbc:cacheportal:d"));
  EXPECT_FALSE(wrapper.AcceptsUrl("jdbc:cacheportal:d"));
  EXPECT_FALSE(wrapper.AcceptsUrl("jdbc:cacheportal-log:jdbc:unknown:d"));

  auto conn = wrapper.Connect("jdbc:cacheportal-log:jdbc:cacheportal:d");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  ASSERT_TRUE((*conn)->ExecuteUpdate("INSERT INTO T VALUES (7)").ok());
  clock.Advance(5);
  auto rows = (*conn)->ExecuteQuery("SELECT * FROM T");
  ASSERT_TRUE(rows.ok());

  ASSERT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.entries()[0].is_select);
  EXPECT_TRUE(log.entries()[1].is_select);
  EXPECT_EQ(log.entries()[1].sql, "SELECT * FROM T");
  EXPECT_EQ(log.entries()[1].receive_time, 1005);
}

TEST(QueryLoggerTest, WrapConnectionDirectly) {
  db::Database db;
  db.CreateTable(db::TableSchema("T", {{"x", db::ColumnType::kInt}}));
  server::MemoryDbDriver inner;
  inner.BindDatabase("d", &db);
  auto raw = inner.Connect("jdbc:cacheportal:d");
  ASSERT_TRUE(raw.ok());

  ManualClock clock;
  QueryLog log;
  QueryLoggingDriver wrapper(&inner, &log, &clock);
  auto wrapped = wrapper.WrapConnection(raw->get());
  ASSERT_TRUE(wrapped->ExecuteQuery("SELECT * FROM T").ok());
  EXPECT_EQ(log.size(), 1u);
}

// ---------------------------------------------------------------------
// Request logger (servlet wrapper)
// ---------------------------------------------------------------------

TEST(RequestLoggerTest, NarrowToKeysUsesConfiguredParams) {
  server::ServletConfig config;
  config.name = "/cars";
  config.key_get_params = {"model"};
  config.key_cookie_params = {"lang"};

  auto req = http::HttpRequest::Get("http://shop/cars?model=Avalon&uid=7");
  req->cookies["lang"] = "en";
  req->cookies["session"] = "s";

  http::PageId id = RequestLogger::NarrowToKeys(*req, &config);
  EXPECT_EQ(id.get_params().size(), 1u);
  EXPECT_EQ(id.get_params().at("model"), "Avalon");
  EXPECT_EQ(id.cookie_params().size(), 1u);
  EXPECT_TRUE(id.post_params().empty());
}

TEST(RequestLoggerTest, WithoutConfigAllParamsAreKeys) {
  auto req = http::HttpRequest::Get("http://shop/cars?a=1&b=2");
  http::PageId id = RequestLogger::NarrowToKeys(*req, nullptr);
  EXPECT_EQ(id.get_params().size(), 2u);
}

TEST(RequestLoggerTest, LogsAndRewritesNoCacheDirective) {
  ManualClock clock(100);
  RequestLog log;
  RequestLogger logger(&log, &clock);
  server::ServletConfig config;
  config.name = "cars";
  config.key_get_params = {"model"};
  logger.RegisterServlet(config);

  auto req = http::HttpRequest::Get("http://shop/cars?model=Avalon&junk=1");
  uint64_t token = logger.BeforeService("cars", *req);
  clock.Advance(50);

  http::HttpResponse resp = http::HttpResponse::Ok("page");
  http::CacheControl no_cache;
  no_cache.no_cache = true;
  resp.SetCacheControl(no_cache);
  logger.AfterService(token, "cars", *req, &resp);

  // Log entry completed with the narrowed page key.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].receive_time, 100);
  EXPECT_EQ(log.entries()[0].delivery_time, 150);
  EXPECT_NE(log.entries()[0].page_key.find("model=Avalon"),
            std::string::npos);
  EXPECT_EQ(log.entries()[0].page_key.find("junk"), std::string::npos);

  // no-cache became private owner="cacheportal" (Section 3.1).
  http::CacheControl cc = resp.GetCacheControl();
  EXPECT_FALSE(cc.no_cache);
  EXPECT_TRUE(cc.is_private);
  EXPECT_EQ(cc.owner, http::kCachePortalOwner);
  EXPECT_TRUE(cc.CacheableByCachePortal());
}

TEST(RequestLoggerTest, MissingDirectiveTreatedAsDynamic) {
  ManualClock clock;
  RequestLog log;
  RequestLogger logger(&log, &clock);
  auto req = http::HttpRequest::Get("http://shop/x");
  uint64_t token = logger.BeforeService("x", *req);
  http::HttpResponse resp = http::HttpResponse::Ok("page");
  logger.AfterService(token, "x", *req, &resp);
  EXPECT_TRUE(resp.GetCacheControl().CacheableByCachePortal());
}

TEST(RequestLoggerTest, TemporallySensitiveServletStaysNonCacheable) {
  ManualClock clock;
  RequestLog log;
  RequestLogger logger(&log, &clock);
  logger.SetInvalidationCycle(kMicrosPerSecond);  // 1 s cycle.
  server::ServletConfig config;
  config.name = "ticker";
  config.temporal_sensitivity = 100 * kMicrosPerMilli;  // Needs 100 ms.
  logger.RegisterServlet(config);

  auto req = http::HttpRequest::Get("http://shop/ticker");
  uint64_t token = logger.BeforeService("ticker", *req);
  http::HttpResponse resp = http::HttpResponse::Ok("quote");
  logger.AfterService(token, "ticker", *req, &resp);
  EXPECT_FALSE(resp.GetCacheControl().CacheableByCachePortal());
  EXPECT_TRUE(resp.GetCacheControl().no_cache);
}

TEST(RequestLoggerTest, OracleVetoKeepsNonCacheable) {
  ManualClock clock;
  RequestLog log;
  RequestLogger logger(&log, &clock);
  logger.SetCacheabilityOracle(
      [](const std::string& name) { return name != "blocked"; });

  auto req = http::HttpRequest::Get("http://shop/b");
  uint64_t token = logger.BeforeService("blocked", *req);
  http::HttpResponse resp = http::HttpResponse::Ok("x");
  logger.AfterService(token, "blocked", *req, &resp);
  EXPECT_FALSE(resp.GetCacheControl().CacheableByCachePortal());
}

TEST(RequestLoggerTest, ExplicitNoStoreNeverOverridden) {
  ManualClock clock;
  RequestLog log;
  RequestLogger logger(&log, &clock);
  auto req = http::HttpRequest::Get("http://shop/x");
  uint64_t token = logger.BeforeService("x", *req);
  http::HttpResponse resp = http::HttpResponse::Ok("x");
  http::CacheControl cc;
  cc.no_store = true;
  resp.SetCacheControl(cc);
  logger.AfterService(token, "x", *req, &resp);
  EXPECT_TRUE(resp.GetCacheControl().no_store);
  EXPECT_FALSE(resp.GetCacheControl().CacheableByCachePortal());
}

TEST(RequestLoggerTest, ExplicitlyCacheableResponseUntouched) {
  ManualClock clock;
  RequestLog log;
  RequestLogger logger(&log, &clock);
  auto req = http::HttpRequest::Get("http://shop/x");
  uint64_t token = logger.BeforeService("x", *req);
  http::HttpResponse resp = http::HttpResponse::Ok("x");
  http::CacheControl cc;
  cc.is_public = true;
  cc.max_age_seconds = 300;
  resp.SetCacheControl(cc);
  logger.AfterService(token, "x", *req, &resp);
  EXPECT_EQ(resp.GetCacheControl(), cc);
}

// ---------------------------------------------------------------------
// QI/URL map
// ---------------------------------------------------------------------

TEST(QiUrlMapTest, AddAndLookups) {
  QiUrlMap map;
  map.Add("q1", "page1", "/cars?m=1", 100);
  map.Add("q1", "page2", "/cars?m=2", 100);
  map.Add("q2", "page1", "/cars?m=1", 100);

  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.NumQueries(), 2u);
  EXPECT_EQ(map.NumPages(), 2u);
  EXPECT_EQ(map.PagesForQuery("q1"),
            (std::vector<std::string>{"page1", "page2"}));
  EXPECT_EQ(map.QueriesForPage("page1"),
            (std::vector<std::string>{"q1", "q2"}));
  EXPECT_TRUE(map.PagesForQuery("q9").empty());
}

TEST(QiUrlMapTest, DeduplicatesPairs) {
  QiUrlMap map;
  uint64_t a = map.Add("q", "p", "/r", 1);
  uint64_t b = map.Add("q", "p", "/r", 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(map.size(), 1u);
}

TEST(QiUrlMapTest, ReadSinceIncremental) {
  QiUrlMap map;
  map.Add("q1", "p1", "/r", 1);
  map.Add("q2", "p2", "/r", 1);
  auto all = map.ReadSince(0);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(map.ReadSince(all[0].id).size(), 1u);
  EXPECT_EQ(map.ReadSince(map.LastId()).size(), 0u);
}

TEST(QiUrlMapTest, RemovePageCleansBothDirections) {
  QiUrlMap map;
  map.Add("q1", "p1", "/r", 1);
  map.Add("q1", "p2", "/r", 1);
  map.Add("q2", "p1", "/r", 1);
  EXPECT_EQ(map.RemovePage("p1"), 2u);
  EXPECT_TRUE(map.QueriesForPage("p1").empty());
  EXPECT_EQ(map.PagesForQuery("q1"), std::vector<std::string>{"p2"});
  EXPECT_TRUE(map.PagesForQuery("q2").empty());
  EXPECT_EQ(map.RemovePage("p1"), 0u);
}

// ---------------------------------------------------------------------
// Request-to-query mapper
// ---------------------------------------------------------------------

TEST(MapperTest, JoinsOnTimeIntervals) {
  RequestLog requests;
  QueryLog queries;
  QiUrlMap map;
  RequestToQueryMapper mapper(&requests, &queries, &map);

  // Request A [100, 200] issues q1 [120, 140].
  uint64_t a = requests.Open("s", "/a", "", "", "pageA", 100);
  queries.Append("q1", true, 120, 140);
  requests.Close(a, 200);

  // Request B [300, 400] issues q2 [310, 390].
  uint64_t b = requests.Open("s", "/b", "", "", "pageB", 300);
  queries.Append("q2", true, 310, 390);
  requests.Close(b, 400);

  EXPECT_EQ(mapper.Run(), 2u);
  EXPECT_EQ(map.PagesForQuery("q1"), std::vector<std::string>{"pageA"});
  EXPECT_EQ(map.PagesForQuery("q2"), std::vector<std::string>{"pageB"});
}

TEST(MapperTest, OverlappingRequestsShareQueries) {
  RequestLog requests;
  QueryLog queries;
  QiUrlMap map;
  RequestToQueryMapper mapper(&requests, &queries, &map);

  uint64_t a = requests.Open("s", "/a", "", "", "pageA", 100);
  uint64_t b = requests.Open("s", "/b", "", "", "pageB", 110);
  queries.Append("q", true, 120, 130);
  requests.Close(a, 200);
  requests.Close(b, 210);

  // The time-interval join attributes q to both (conservative).
  EXPECT_EQ(mapper.Run(), 2u);
  EXPECT_EQ(map.PagesForQuery("q").size(), 2u);
}

TEST(MapperTest, QueriesOutsideIntervalExcluded) {
  RequestLog requests;
  QueryLog queries;
  QiUrlMap map;
  RequestToQueryMapper mapper(&requests, &queries, &map);

  uint64_t a = requests.Open("s", "/a", "", "", "pageA", 100);
  queries.Append("before", true, 50, 90);
  queries.Append("late_delivery", true, 150, 250);  // Ends after request.
  requests.Close(a, 200);

  EXPECT_EQ(mapper.Run(), 0u);
}

TEST(MapperTest, NonSelectsIgnored) {
  RequestLog requests;
  QueryLog queries;
  QiUrlMap map;
  RequestToQueryMapper mapper(&requests, &queries, &map);
  uint64_t a = requests.Open("s", "/a", "", "", "pageA", 100);
  queries.Append("INSERT ...", false, 120, 130);
  requests.Close(a, 200);
  EXPECT_EQ(mapper.Run(), 0u);
}

TEST(MapperTest, IncompleteRequestsDeferred) {
  RequestLog requests;
  QueryLog queries;
  QiUrlMap map;
  RequestToQueryMapper mapper(&requests, &queries, &map);

  uint64_t a = requests.Open("s", "/a", "", "", "pageA", 100);
  queries.Append("q", true, 120, 130);
  EXPECT_EQ(mapper.Run(), 0u);  // Still in flight.
  requests.Close(a, 200);
  EXPECT_EQ(mapper.Run(), 1u);  // Picked up on the next run.
  EXPECT_EQ(mapper.Run(), 0u);  // Idempotent.
  EXPECT_EQ(mapper.requests_processed(), 1u);
}

}  // namespace
}  // namespace cacheportal::sniffer
