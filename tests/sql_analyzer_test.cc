#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::sql {
namespace {

ExpressionPtr ParseExpr(const std::string& expr) {
  auto result = Parser::ParseSelect("SELECT * FROM t WHERE " + expr);
  EXPECT_TRUE(result.ok()) << expr << ": " << result.status().ToString();
  return std::move((*result)->where);
}

// ---------------------------------------------------------------------
// SubstituteColumns
// ---------------------------------------------------------------------

TEST(SubstituteTest, ReplacesMatchingColumns) {
  ExpressionPtr e = ParseExpr("Car.price < 20000 AND Car.model = m.model");
  ExpressionPtr out = SubstituteColumns(
      *e, [](const std::string& table,
             const std::string& column) -> std::optional<Value> {
        if (table == "Car" && column == "price") return Value::Int(25000);
        if (table == "Car" && column == "model") {
          return Value::String("Avalon");
        }
        return std::nullopt;
      });
  EXPECT_EQ(ExprToSql(*out), "25000 < 20000 AND 'Avalon' = m.model");
}

TEST(SubstituteTest, LeavesUnmatchedIntact) {
  ExpressionPtr e = ParseExpr("a = 1");
  ExpressionPtr out = SubstituteColumns(
      *e, [](const std::string&, const std::string&) { return std::nullopt; });
  EXPECT_TRUE(out->Equals(*e));
}

// ---------------------------------------------------------------------
// BindParameters
// ---------------------------------------------------------------------

TEST(BindTest, ReplacesOrdinals) {
  ExpressionPtr e = ParseExpr("a > $1 AND b < $2");
  auto bound = BindParameters(*e, {Value::Int(10), Value::Int(20)});
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(ExprToSql(**bound), "a > 10 AND b < 20");
}

TEST(BindTest, OutOfRangeOrdinalFails) {
  ExpressionPtr e = ParseExpr("a > $3");
  EXPECT_FALSE(BindParameters(*e, {Value::Int(1)}).ok());
}

// ---------------------------------------------------------------------
// FoldConstants
// ---------------------------------------------------------------------

FoldOutcome Fold(const std::string& expr, std::string* residual = nullptr) {
  ExpressionPtr e = ParseExpr(expr);
  FoldResult result = FoldConstants(*e);
  if (residual != nullptr && result.residual != nullptr) {
    *residual = ExprToSql(*result.residual);
  }
  return result.outcome;
}

TEST(FoldTest, ConstantTrueFalse) {
  EXPECT_EQ(Fold("1 < 2"), FoldOutcome::kTrue);
  EXPECT_EQ(Fold("2 < 1"), FoldOutcome::kFalse);
  EXPECT_EQ(Fold("NULL = 1"), FoldOutcome::kNull);
}

TEST(FoldTest, AndOrIdentities) {
  std::string residual;
  // TRUE AND x -> x.
  EXPECT_EQ(Fold("1 = 1 AND a > 5", &residual), FoldOutcome::kResidual);
  EXPECT_EQ(residual, "a > 5");
  // FALSE AND x -> FALSE without evaluating x.
  EXPECT_EQ(Fold("1 = 2 AND a > 5"), FoldOutcome::kFalse);
  // TRUE OR x -> TRUE.
  EXPECT_EQ(Fold("1 = 1 OR a > 5"), FoldOutcome::kTrue);
  // FALSE OR x -> x.
  residual.clear();
  EXPECT_EQ(Fold("1 = 2 OR a > 5", &residual), FoldOutcome::kResidual);
  EXPECT_EQ(residual, "a > 5");
}

TEST(FoldTest, MixedTypeComparisonFoldsToNull) {
  // The paper's Example 4.1: inserting (Mitsubishi, Eclipse, 20000) into
  // Car with condition price < 20000 -> 20000 < 20000 is FALSE; no
  // invalidation check needed.
  EXPECT_EQ(Fold("20000 < 20000"), FoldOutcome::kFalse);
}

TEST(FoldTest, ResidualKeepsJoinCondition) {
  std::string residual;
  EXPECT_EQ(Fold("'Avalon' = Mileage.model AND 25000 < 30000", &residual),
            FoldOutcome::kResidual);
  EXPECT_EQ(residual, "'Avalon' = Mileage.model");
}

TEST(FoldTest, NotPushedThroughConstants) {
  EXPECT_EQ(Fold("NOT (1 = 1)"), FoldOutcome::kFalse);
  EXPECT_EQ(Fold("NOT (1 = 2)"), FoldOutcome::kTrue);
  EXPECT_EQ(Fold("NOT (NULL = 1)"), FoldOutcome::kNull);
}

TEST(FoldTest, ArithmeticFolded) {
  std::string residual;
  EXPECT_EQ(Fold("a > 2 * 3 + 1", &residual), FoldOutcome::kResidual);
  EXPECT_EQ(residual, "a > 7");
}

TEST(FoldTest, InListAndBetweenFold) {
  EXPECT_EQ(Fold("2 IN (1, 2)"), FoldOutcome::kTrue);
  EXPECT_EQ(Fold("5 IN (1, 2)"), FoldOutcome::kFalse);
  EXPECT_EQ(Fold("2 BETWEEN 1 AND 3"), FoldOutcome::kTrue);
  EXPECT_EQ(Fold("0 BETWEEN 1 AND 3"), FoldOutcome::kFalse);
}

TEST(FoldTest, NullAndNullIsNull) {
  EXPECT_EQ(Fold("NULL = 1 AND NULL = 2"), FoldOutcome::kNull);
  EXPECT_EQ(Fold("NULL = 1 OR NULL = 2"), FoldOutcome::kNull);
}

// ---------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------

TEST(CollectTest, TablesInFirstAppearanceOrder) {
  ExpressionPtr e =
      ParseExpr("Car.model = Mileage.model AND Car.price < 100 AND x = 1");
  std::vector<std::string> tables = CollectTables(*e);
  ASSERT_EQ(tables.size(), 3u);
  EXPECT_EQ(tables[0], "Car");
  EXPECT_EQ(tables[1], "Mileage");
  EXPECT_EQ(tables[2], "");  // Unqualified.
}

TEST(CollectTest, ColumnRefsPreOrder) {
  ExpressionPtr e = ParseExpr("a = 1 AND b IN (c, 2) AND d BETWEEN e AND 9");
  auto refs = CollectColumnRefs(*e);
  ASSERT_EQ(refs.size(), 5u);
  EXPECT_EQ(refs[0]->column(), "a");
  EXPECT_EQ(refs[4]->column(), "e");
}

TEST(CollectTest, ContainsParameters) {
  EXPECT_TRUE(ContainsParameters(*ParseExpr("a > $1")));
  EXPECT_FALSE(ContainsParameters(*ParseExpr("a > 1")));
  EXPECT_TRUE(ContainsParameters(*ParseExpr("a IN (1, $2)")));
}

TEST(CollectTest, SplitConjuncts) {
  ExpressionPtr e = ParseExpr("a = 1 AND (b = 2 OR c = 3) AND d = 4");
  auto conjuncts = SplitConjuncts(*e);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(ExprToSql(*conjuncts[1]), "b = 2 OR c = 3");
}

TEST(CollectTest, SplitConjunctsSingle) {
  ExpressionPtr e = ParseExpr("a = 1 OR b = 2");
  EXPECT_EQ(SplitConjuncts(*e).size(), 1u);
}

// ---------------------------------------------------------------------
// QualifyColumns
// ---------------------------------------------------------------------

TEST(QualifyTest, AddsOwnersToUnqualifiedRefs) {
  ExpressionPtr e = ParseExpr("price < 100 AND Car.model = model2");
  ExpressionPtr out = QualifyColumns(
      *e, [](const std::string& column) -> std::optional<std::string> {
        if (column == "price") return "Car";
        return std::nullopt;  // model2 unknown -> untouched.
      });
  EXPECT_EQ(ExprToSql(*out), "Car.price < 100 AND Car.model = model2");
}

// ---------------------------------------------------------------------
// ClassifyTemplateShape: the exact-tier eligibility contract
// ---------------------------------------------------------------------

TemplateShape Classify(const std::string& sql) {
  auto result = Parser::ParseSelect(sql);
  EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  return ClassifyTemplateShape(**result);
}

TEST(TemplateShapeTest, SingleTableParameterizedShapesAreEligible) {
  const std::string eligible[] = {
      "SELECT * FROM Car WHERE price = $1",
      "SELECT maker FROM Car WHERE model IN ($1, 'Focus', $2)",
      "SELECT * FROM Car WHERE price BETWEEN $1 AND $2",
      "SELECT maker, model FROM Car WHERE price < 20000 AND stock > 0 "
      "ORDER BY price",
      "SELECT * FROM Car",
      "SELECT model FROM Car WHERE maker IS NOT NULL",
      "SELECT model FROM Car WHERE NOT (price > $1 OR stock = 0)",
  };
  for (const std::string& sql : eligible) {
    TemplateShape shape = Classify(sql);
    EXPECT_TRUE(shape.exact_eligible()) << sql << ": " << shape.blocker;
    EXPECT_TRUE(shape.single_table) << sql;
    EXPECT_TRUE(shape.where_row_decidable) << sql;
  }
}

TEST(TemplateShapeTest, IneligibleShapesNameTheirBlocker) {
  struct Case {
    std::string sql;
    std::string blocker;
  };
  const Case cases[] = {
      // Comparing against NULL yields UNKNOWN for every row; IS NULL is
      // the sanctioned spelling.
      {"SELECT * FROM Car WHERE maker = NULL", "NULL comparand"},
      // One relation's delta reaches the statement through two scans.
      {"SELECT a.model FROM Car a, Car b WHERE a.price < b.price",
       "self-join"},
      // OR across tables: a single row image cannot decide membership.
      {"SELECT Car.model FROM Car, Mileage "
       "WHERE Car.model = Mileage.model OR Car.price < $1",
       "multi-table FROM"},
      {"SELECT COUNT(*) FROM Car", "aggregation"},
      {"SELECT maker FROM Car GROUP BY maker", "aggregation"},
      {"SELECT * FROM Car WHERE maker LIKE 'F%'", "LIKE pattern"},
      // The parser only admits aggregate calls, so an aggregate inside
      // WHERE is how a function call reaches classification at all.
      {"SELECT * FROM Car WHERE MAX(price) = 4", "aggregation"},
  };
  for (const Case& c : cases) {
    TemplateShape shape = Classify(c.sql);
    EXPECT_FALSE(shape.exact_eligible()) << c.sql;
    EXPECT_EQ(shape.blocker, c.blocker) << c.sql;
  }
}

TEST(TemplateShapeTest, FirstDisqualifierWinsInSeverityOrder) {
  // A self-joining aggregate with a LIKE: the census must count it once,
  // under the most structural blocker.
  TemplateShape shape = Classify(
      "SELECT COUNT(*) FROM Car a, Car b "
      "WHERE a.model = b.model AND a.maker LIKE 'F%'");
  EXPECT_EQ(shape.blocker, "self-join");
  // Same statement without the self-join: FROM shape still outranks
  // aggregation and the WHERE blockers.
  shape = Classify(
      "SELECT COUNT(*) FROM Car, Mileage "
      "WHERE Car.model = Mileage.model AND Car.maker LIKE 'F%'");
  EXPECT_EQ(shape.blocker, "multi-table FROM");
}

TEST(TemplateShapeTest, SelfJoinDetectionIgnoresAliasAndCase) {
  TemplateShape shape =
      Classify("SELECT x.model FROM Car x, CAR y WHERE x.price < y.price");
  EXPECT_TRUE(shape.self_join);
  EXPECT_EQ(shape.blocker, "self-join");
}

TEST(TemplateShapeTest, SubqueriesAreUnparseableTodayByContract) {
  // The grammar cannot express subqueries; TemplateShape::has_subquery
  // documents the eligibility contract for when it learns to. Until
  // then a subquery never reaches classification at all.
  auto result = Parser::ParseSelect(
      "SELECT * FROM Car WHERE id IN (SELECT id FROM Mileage)");
  EXPECT_FALSE(result.ok());
  TemplateShape shape;
  EXPECT_FALSE(shape.has_subquery);
}

}  // namespace
}  // namespace cacheportal::sql
