#include <gtest/gtest.h>

#include "db/database.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::db {
namespace {

using sql::Value;

TEST(DdlParseTest, CreateTableParsed) {
  auto result = sql::Parser::Parse(
      "CREATE TABLE Car (maker TEXT, model TEXT, price INT, rating DOUBLE)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->kind(), sql::StatementKind::kCreateTable);
  const auto& create =
      static_cast<const sql::CreateTableStatement&>(**result);
  EXPECT_EQ(create.table, "Car");
  ASSERT_EQ(create.columns.size(), 4u);
  EXPECT_EQ(create.columns[0].name, "maker");
  EXPECT_EQ(create.columns[0].type, "TEXT");
  EXPECT_EQ(create.columns[2].type, "INT");
  EXPECT_EQ(create.columns[3].type, "DOUBLE");
}

TEST(DdlParseTest, CreateIndexParsed) {
  auto result = sql::Parser::Parse("CREATE INDEX ON Car (model)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->kind(), sql::StatementKind::kCreateIndex);
  const auto& create =
      static_cast<const sql::CreateIndexStatement&>(**result);
  EXPECT_EQ(create.table, "Car");
  EXPECT_EQ(create.column, "model");
}

TEST(DdlParseTest, TypeNamesCaseInsensitiveAndValidated) {
  EXPECT_TRUE(sql::Parser::Parse("CREATE TABLE t (a int, b text)").ok());
  EXPECT_FALSE(sql::Parser::Parse("CREATE TABLE t (a VARCHAR)").ok());
  EXPECT_FALSE(sql::Parser::Parse("CREATE TABLE t ()").ok());
  EXPECT_FALSE(sql::Parser::Parse("CREATE VIEW v (a INT)").ok());
  EXPECT_FALSE(sql::Parser::Parse("CREATE INDEX Car (model)").ok());
}

TEST(DdlParseTest, PrintAndCloneRoundTrip) {
  const char* sqls[] = {"CREATE TABLE Car (maker TEXT, price INT)",
                        "CREATE INDEX ON Car (model)"};
  for (const char* text : sqls) {
    auto first = sql::Parser::Parse(text);
    ASSERT_TRUE(first.ok());
    std::string canonical = sql::StatementToSql(**first);
    EXPECT_EQ(canonical, text);
    auto clone = (*first)->CloneStatement();
    EXPECT_EQ(sql::StatementToSql(*clone), canonical);
  }
}

TEST(DdlExecuteTest, CreateTableThenUse) {
  Database db;
  auto created =
      db.ExecuteSql("CREATE TABLE Pet (name TEXT, age INT, w DOUBLE)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->rows[0][0], Value::String("Pet"));

  db.ExecuteSql("INSERT INTO Pet VALUES ('rex', 4, 12.5)").value();
  auto rows = db.ExecuteSql("SELECT name FROM Pet WHERE age > 2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value::String("rex"));

  // Duplicate creation fails.
  EXPECT_TRUE(db.ExecuteSql("CREATE TABLE Pet (x INT)")
                  .status()
                  .IsAlreadyExists());
}

TEST(DdlExecuteTest, CreateIndexThenLookup) {
  Database db;
  db.ExecuteSql("CREATE TABLE Pet (name TEXT, age INT)").value();
  db.ExecuteSql("INSERT INTO Pet VALUES ('rex', 4)").value();
  auto indexed = db.ExecuteSql("CREATE INDEX ON Pet (name)");
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  EXPECT_TRUE(db.FindTable("Pet")->HasIndex("name"));
  EXPECT_TRUE(db.ExecuteSql("CREATE INDEX ON Pet (nope)").status()
                  .IsNotFound());
  EXPECT_TRUE(db.ExecuteSql("CREATE INDEX ON Nope (x)").status()
                  .IsNotFound());
}

TEST(DdlExecuteTest, WholeSchemaAsScript) {
  Database db;
  auto script = sql::Parser::ParseScript(
      "CREATE TABLE Car (maker TEXT, model TEXT, price INT);"
      "CREATE TABLE Mileage (model TEXT, EPA INT);"
      "CREATE INDEX ON Mileage (model);"
      "INSERT INTO Car VALUES ('Honda', 'Civic', 18000);"
      "INSERT INTO Mileage VALUES ('Civic', 36);");
  ASSERT_TRUE(script.ok());
  for (const auto& stmt : *script) {
    auto result = db.ExecuteSql(sql::StatementToSql(*stmt));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  auto join = db.ExecuteSql(
      "SELECT Car.model, Mileage.EPA FROM Car, Mileage WHERE Car.model = "
      "Mileage.model");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->rows.size(), 1u);
}

TEST(DdlExecuteTest, DdlDoesNotTouchUpdateLog) {
  Database db;
  db.ExecuteSql("CREATE TABLE T (x INT)").value();
  db.ExecuteSql("CREATE INDEX ON T (x)").value();
  EXPECT_EQ(db.update_log().size(), 0u);
}

}  // namespace
}  // namespace cacheportal::db
