#include <gtest/gtest.h>

#include <map>

#include "sql/eval.h"
#include "sql/parser.h"

namespace cacheportal::sql {
namespace {

/// Resolver backed by a simple map from "table.column" / "column".
class MapResolver : public ColumnResolver {
 public:
  explicit MapResolver(std::map<std::string, Value> values)
      : values_(std::move(values)) {}

  std::optional<Value> Resolve(const std::string& table,
                               const std::string& column) const override {
    std::string key = table.empty() ? column : table + "." + column;
    auto it = values_.find(key);
    if (it == values_.end()) {
      // Fall back to the bare column name.
      it = values_.find(column);
      if (it == values_.end()) return std::nullopt;
    }
    return it->second;
  }

 private:
  std::map<std::string, Value> values_;
};

/// Parses the expression by wrapping it in a WHERE clause.
ExpressionPtr ParseExpr(const std::string& expr) {
  auto result = Parser::ParseSelect("SELECT * FROM t WHERE " + expr);
  EXPECT_TRUE(result.ok()) << expr << ": " << result.status().ToString();
  return std::move((*result)->where);
}

std::optional<bool> EvalBool(const std::string& expr,
                             std::map<std::string, Value> vars = {}) {
  ExpressionPtr e = ParseExpr(expr);
  MapResolver resolver(std::move(vars));
  auto result = EvalPredicate(*e, resolver);
  EXPECT_TRUE(result.ok()) << expr << ": " << result.status().ToString();
  return result.ok() ? *result : std::nullopt;
}

Value Eval(const std::string& expr, std::map<std::string, Value> vars = {}) {
  ExpressionPtr e = ParseExpr(expr);
  MapResolver resolver(std::move(vars));
  auto result = EvalExpr(*e, resolver);
  EXPECT_TRUE(result.ok()) << expr << ": " << result.status().ToString();
  return result.ok() ? std::move(result).value() : Value::Null();
}

// ---------------------------------------------------------------------
// Value semantics
// ---------------------------------------------------------------------

TEST(ValueTest, CompareNumericWidening) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.5)), -1);
  EXPECT_EQ(Value::Double(3.0).Compare(Value::Int(2)), 1);
}

TEST(ValueTest, CompareNullIsUnknown) {
  EXPECT_FALSE(Value::Null().Compare(Value::Int(1)).has_value());
  EXPECT_FALSE(Value::Int(1).Compare(Value::Null()).has_value());
}

TEST(ValueTest, CompareMixedTypesIsUnknown) {
  EXPECT_FALSE(Value::String("1").Compare(Value::Int(1)).has_value());
}

TEST(ValueTest, SqlLiteralForms) {
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToSqlLiteral(), "-3");
  EXPECT_EQ(Value::String("a'b").ToSqlLiteral(), "'a''b'");
  EXPECT_EQ(Value::Bool(true).ToSqlLiteral(), "TRUE");
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  // Different types with "equal" content should not collide by design.
  EXPECT_NE(Value::Int(0).Hash(), Value::Null().Hash());
}

// ---------------------------------------------------------------------
// LIKE
// ---------------------------------------------------------------------

TEST(LikeTest, Basics) {
  EXPECT_TRUE(SqlLikeMatch("hello", "hello"));
  EXPECT_TRUE(SqlLikeMatch("hello", "h%"));
  EXPECT_TRUE(SqlLikeMatch("hello", "%o"));
  EXPECT_TRUE(SqlLikeMatch("hello", "%ell%"));
  EXPECT_TRUE(SqlLikeMatch("hello", "h_llo"));
  EXPECT_FALSE(SqlLikeMatch("hello", "h_loo"));
  EXPECT_FALSE(SqlLikeMatch("hello", "hello!"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("", "_"));
  EXPECT_TRUE(SqlLikeMatch("abc", "%%%"));
  EXPECT_TRUE(SqlLikeMatch("aXbXc", "a%b%c"));
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

TEST(EvalTest, Comparisons) {
  EXPECT_EQ(EvalBool("1 < 2"), true);
  EXPECT_EQ(EvalBool("2 <= 2"), true);
  EXPECT_EQ(EvalBool("3 > 4"), false);
  EXPECT_EQ(EvalBool("'a' = 'a'"), true);
  EXPECT_EQ(EvalBool("'a' <> 'b'"), true);
}

TEST(EvalTest, NullComparisonsAreUnknown) {
  EXPECT_EQ(EvalBool("NULL = 1"), std::nullopt);
  EXPECT_EQ(EvalBool("NULL <> NULL"), std::nullopt);
}

TEST(EvalTest, KleeneLogic) {
  EXPECT_EQ(EvalBool("NULL = 1 AND 1 = 2"), false);   // unknown AND false.
  EXPECT_EQ(EvalBool("NULL = 1 AND 1 = 1"), std::nullopt);
  EXPECT_EQ(EvalBool("NULL = 1 OR 1 = 1"), true);     // unknown OR true.
  EXPECT_EQ(EvalBool("NULL = 1 OR 1 = 2"), std::nullopt);
  EXPECT_EQ(EvalBool("NOT (NULL = 1)"), std::nullopt);
}

TEST(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3"), Value::Int(7));
  EXPECT_EQ(Eval("10 - 4 - 3"), Value::Int(3));  // Left-assoc.
  EXPECT_EQ(Eval("7 / 2"), Value::Double(3.5));
  EXPECT_EQ(Eval("2.5 + 1"), Value::Double(3.5));
  EXPECT_EQ(Eval("-3 + 1"), Value::Int(-2));
}

TEST(EvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("1 / 0").is_null());
}

TEST(EvalTest, ColumnsFromResolver) {
  EXPECT_EQ(EvalBool("price < 20000", {{"price", Value::Int(15000)}}), true);
  EXPECT_EQ(EvalBool("t.price < 20000", {{"t.price", Value::Int(25000)}}),
            false);
}

TEST(EvalTest, UnresolvedColumnIsError) {
  ExpressionPtr e = ParseExpr("missing = 1");
  MapResolver resolver({});
  EXPECT_FALSE(EvalPredicate(*e, resolver).ok());
}

TEST(EvalTest, UnboundParameterIsError) {
  ExpressionPtr e = ParseExpr("a = $1");
  MapResolver resolver({{"a", Value::Int(1)}});
  EXPECT_FALSE(EvalPredicate(*e, resolver).ok());
}

TEST(EvalTest, InList) {
  EXPECT_EQ(EvalBool("2 IN (1, 2, 3)"), true);
  EXPECT_EQ(EvalBool("5 IN (1, 2, 3)"), false);
  EXPECT_EQ(EvalBool("5 NOT IN (1, 2, 3)"), true);
  // NULL poisoning: 5 IN (1, NULL) is unknown, NOT IN likewise.
  EXPECT_EQ(EvalBool("5 IN (1, NULL)"), std::nullopt);
  EXPECT_EQ(EvalBool("5 NOT IN (1, NULL)"), std::nullopt);
  EXPECT_EQ(EvalBool("1 IN (1, NULL)"), true);  // Found despite NULL.
}

TEST(EvalTest, Between) {
  EXPECT_EQ(EvalBool("2 BETWEEN 1 AND 3"), true);
  EXPECT_EQ(EvalBool("1 BETWEEN 1 AND 3"), true);  // Inclusive.
  EXPECT_EQ(EvalBool("4 BETWEEN 1 AND 3"), false);
  EXPECT_EQ(EvalBool("4 NOT BETWEEN 1 AND 3"), true);
  EXPECT_EQ(EvalBool("NULL BETWEEN 1 AND 3"), std::nullopt);
}

TEST(EvalTest, IsNull) {
  EXPECT_EQ(EvalBool("NULL IS NULL"), true);
  EXPECT_EQ(EvalBool("1 IS NULL"), false);
  EXPECT_EQ(EvalBool("1 IS NOT NULL"), true);
}

TEST(EvalTest, LikeOperator) {
  EXPECT_EQ(EvalBool("'Toyota' LIKE 'Toy%'"), true);
  EXPECT_EQ(EvalBool("'Toyota' NOT LIKE '%x%'"), true);
  EXPECT_EQ(EvalBool("NULL LIKE 'a%'"), std::nullopt);
}

TEST(EvalTest, LikeOnNonStringIsError) {
  ExpressionPtr e = ParseExpr("1 LIKE 'a'");
  MapResolver resolver({});
  EXPECT_FALSE(EvalPredicate(*e, resolver).ok());
}

TEST(EvalTest, StringInBooleanContextIsError) {
  ExpressionPtr e = ParseExpr("'x' AND 1 = 1");
  MapResolver resolver({});
  EXPECT_FALSE(EvalPredicate(*e, resolver).ok());
}

}  // namespace
}  // namespace cacheportal::sql
