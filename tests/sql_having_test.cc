#include <gtest/gtest.h>

#include "common/strings.h"
#include "db/database.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::db {
namespace {

using sql::Value;

class HavingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("Sales",
                                            {{"region", ColumnType::kString},
                                             {"amount", ColumnType::kInt}}))
                    .ok());
    // west: 3 sales totaling 60; east: 2 totaling 110; north: 1 of 5.
    Exec("INSERT INTO Sales VALUES ('west', 10)");
    Exec("INSERT INTO Sales VALUES ('west', 20)");
    Exec("INSERT INTO Sales VALUES ('west', 30)");
    Exec("INSERT INTO Sales VALUES ('east', 50)");
    Exec("INSERT INTO Sales VALUES ('east', 60)");
    Exec("INSERT INTO Sales VALUES ('north', 5)");
  }

  QueryResult Exec(const std::string& sql) {
    auto result = db_.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(HavingTest, ParsesAndPrints) {
  auto select = sql::Parser::ParseSelect(
      "select region from Sales group by region having count(*) > 1");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  ASSERT_NE((*select)->having, nullptr);
  EXPECT_EQ(sql::StatementToSql(**select),
            "SELECT region FROM Sales GROUP BY region HAVING COUNT(*) > 1");
}

TEST_F(HavingTest, HavingWithoutGroupByRejected) {
  EXPECT_FALSE(
      sql::Parser::Parse("SELECT region FROM Sales HAVING COUNT(*) > 1")
          .ok());
}

TEST_F(HavingTest, FiltersGroupsByCount) {
  QueryResult r = Exec(
      "SELECT region, COUNT(*) AS n FROM Sales GROUP BY region "
      "HAVING COUNT(*) > 1 ORDER BY n DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value::String("west"));
  EXPECT_EQ(r.rows[1][0], Value::String("east"));
}

TEST_F(HavingTest, HavingAggregateNotInSelectList) {
  QueryResult r = Exec(
      "SELECT region FROM Sales GROUP BY region HAVING SUM(amount) >= 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::String("east"));
}

TEST_F(HavingTest, HavingCombinesAggregatesAndGroupKeys) {
  QueryResult r = Exec(
      "SELECT region, SUM(amount) AS total FROM Sales GROUP BY region "
      "HAVING SUM(amount) > 10 AND region <> 'east'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::String("west"));
  EXPECT_EQ(r.rows[0][1], Value::Int(60));
}

TEST_F(HavingTest, HavingArithmeticOnAggregates) {
  QueryResult r = Exec(
      "SELECT region FROM Sales GROUP BY region "
      "HAVING SUM(amount) / COUNT(*) >= 20");
  // west avg 20, east avg 55, north avg 5.
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(HavingTest, HavingThatRejectsEverything) {
  QueryResult r = Exec(
      "SELECT region FROM Sales GROUP BY region HAVING COUNT(*) > 99");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(HavingTest, RoundTripThroughCanonicalForm) {
  const char* sql =
      "SELECT region, COUNT(*) AS n FROM Sales GROUP BY region HAVING "
      "SUM(amount) > 10 ORDER BY n DESC LIMIT 2";
  auto first = sql::Parser::ParseSelect(sql);
  ASSERT_TRUE(first.ok());
  std::string canonical = sql::StatementToSql(**first);
  auto second = sql::Parser::ParseSelect(canonical);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(sql::StatementToSql(**second), canonical);
  // And it still executes identically.
  QueryResult r = Exec(canonical);
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(HavingTest, CloneCopiesHaving) {
  auto select = sql::Parser::ParseSelect(
      "SELECT region FROM Sales GROUP BY region HAVING COUNT(*) > 1");
  ASSERT_TRUE(select.ok());
  auto clone = (*select)->Clone();
  ASSERT_NE(clone->having, nullptr);
  EXPECT_TRUE(clone->having->Equals(*(*select)->having));
}

}  // namespace
}  // namespace cacheportal::db
