#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace cacheportal::sql {
namespace {

std::vector<Token> Lex(const std::string& input) {
  auto result = Lexer::Tokenize(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsAreUppercased) {
  auto tokens = Lex("select From WHERE");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "FROM");
  EXPECT_EQ(tokens[2].text, "WHERE");
}

TEST(LexerTest, IdentifiersPreserveCase) {
  auto tokens = Lex("Car maker_id _x1");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Car");
  EXPECT_EQ(tokens[1].text, "maker_id");
  EXPECT_EQ(tokens[2].text, "_x1");
}

TEST(LexerTest, NumberLiterals) {
  auto tokens = Lex("42 3.14 0");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].type, TokenType::kIntLiteral);
}

TEST(LexerTest, IntFollowedByDotWithoutDigitIsNotDouble) {
  // "1." would need a trailing digit to be a double.
  auto tokens = Lex("1 . 2");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].type, TokenType::kIntLiteral);
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  auto tokens = Lex("'Toyota' 'O''Brien'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "Toyota");
  EXPECT_EQ(tokens[1].text, "O'Brien");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto result = Lexer::Tokenize("'oops");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
}

TEST(LexerTest, NumberedParameters) {
  auto tokens = Lex("$1 $23");
  EXPECT_EQ(tokens[0].type, TokenType::kParameter);
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[1].text, "23");
}

TEST(LexerTest, NamedParameterLikePaperNotation) {
  // The paper writes $V1 for query parameters.
  auto tokens = Lex("$V1");
  EXPECT_EQ(tokens[0].type, TokenType::kParameter);
  EXPECT_EQ(tokens[0].text, "V1");
}

TEST(LexerTest, QuestionMarkParameter) {
  auto tokens = Lex("?");
  EXPECT_EQ(tokens[0].type, TokenType::kParameter);
  EXPECT_EQ(tokens[0].text, "");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= != <> < <= > >= + - * / ( ) , ; .");
  std::vector<TokenType> expected = {
      TokenType::kEq,     TokenType::kNotEq, TokenType::kNotEq,
      TokenType::kLt,     TokenType::kLtEq,  TokenType::kGt,
      TokenType::kGtEq,   TokenType::kPlus,  TokenType::kMinus,
      TokenType::kStar,   TokenType::kSlash, TokenType::kLParen,
      TokenType::kRParen, TokenType::kComma, TokenType::kSemicolon,
      TokenType::kDot,    TokenType::kEof};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = Lex("SELECT x");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 7u);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto result = Lexer::Tokenize("SELECT @");
  EXPECT_FALSE(result.ok());
}

TEST(LexerTest, BangWithoutEqualsFails) {
  EXPECT_FALSE(Lexer::Tokenize("a ! b").ok());
}

TEST(LexerTest, FullQueryFromPaper) {
  // Query1 from Example 4.1.
  auto tokens = Lex(
      "select * from Car, Mileage where Car.mileage = Mileage.mileage and "
      "Car.price < 20000");
  EXPECT_GT(tokens.size(), 15u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_TRUE(Lexer::Tokenize("select Mileage.model, Mileage.EPA from "
                              "Mileage where 'Avalon' = Mileage.model;")
                  .ok());
}

}  // namespace
}  // namespace cacheportal::sql
