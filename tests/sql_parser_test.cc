#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::sql {
namespace {

std::unique_ptr<SelectStatement> ParseSelectOrDie(const std::string& sql) {
  auto result = Parser::ParseSelect(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  return result.ok() ? std::move(result).value() : nullptr;
}

TEST(ParserTest, SimpleSelectStar) {
  auto s = ParseSelectOrDie("SELECT * FROM Car");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->items.size(), 1u);
  EXPECT_TRUE(s->items[0].star);
  ASSERT_EQ(s->from.size(), 1u);
  EXPECT_EQ(s->from[0].table, "Car");
  EXPECT_EQ(s->where, nullptr);
}

TEST(ParserTest, SelectColumnsWithAliases) {
  auto s = ParseSelectOrDie("SELECT maker AS m, price p, Car.model FROM Car");
  ASSERT_EQ(s->items.size(), 3u);
  EXPECT_EQ(s->items[0].alias, "m");
  EXPECT_EQ(s->items[1].alias, "p");
  ASSERT_EQ(s->items[2].expr->kind(), ExprKind::kColumnRef);
  const auto& ref = static_cast<const ColumnRefExpr&>(*s->items[2].expr);
  EXPECT_EQ(ref.table(), "Car");
  EXPECT_EQ(ref.column(), "model");
}

TEST(ParserTest, QualifiedStar) {
  auto s = ParseSelectOrDie("SELECT c.* FROM Car c");
  ASSERT_EQ(s->items.size(), 1u);
  EXPECT_TRUE(s->items[0].star);
  EXPECT_EQ(s->items[0].star_table, "c");
  EXPECT_EQ(s->from[0].alias, "c");
}

TEST(ParserTest, WhereComparisons) {
  auto s = ParseSelectOrDie("SELECT * FROM R WHERE R.A > 10 AND R.B < 200");
  ASSERT_NE(s->where, nullptr);
  EXPECT_EQ(s->where->kind(), ExprKind::kBinary);
  const auto& root = static_cast<const BinaryExpr&>(*s->where);
  EXPECT_EQ(root.op(), BinaryOp::kAnd);
}

TEST(ParserTest, OperatorPrecedenceOrOverAnd) {
  auto s = ParseSelectOrDie("SELECT * FROM R WHERE a = 1 OR b = 2 AND c = 3");
  const auto& root = static_cast<const BinaryExpr&>(*s->where);
  EXPECT_EQ(root.op(), BinaryOp::kOr);
  const auto& right = static_cast<const BinaryExpr&>(root.right());
  EXPECT_EQ(right.op(), BinaryOp::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto s =
      ParseSelectOrDie("SELECT * FROM R WHERE (a = 1 OR b = 2) AND c = 3");
  const auto& root = static_cast<const BinaryExpr&>(*s->where);
  EXPECT_EQ(root.op(), BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto s = ParseSelectOrDie("SELECT * FROM R WHERE a + 2 * 3 = 7");
  const auto& cmp = static_cast<const BinaryExpr&>(*s->where);
  EXPECT_EQ(cmp.op(), BinaryOp::kEq);
  const auto& add = static_cast<const BinaryExpr&>(cmp.left());
  EXPECT_EQ(add.op(), BinaryOp::kAdd);
  const auto& mul = static_cast<const BinaryExpr&>(add.right());
  EXPECT_EQ(mul.op(), BinaryOp::kMul);
}

TEST(ParserTest, NotInBetweenLike) {
  auto s = ParseSelectOrDie(
      "SELECT * FROM R WHERE a IN (1, 2, 3) AND b NOT IN (4) AND "
      "c BETWEEN 1 AND 5 AND d NOT BETWEEN 6 AND 7 AND e LIKE 'x%' AND "
      "f NOT LIKE '%y'");
  ASSERT_NE(s->where, nullptr);
  // Round-trips below check the structure; here ensure it parsed at all.
  EXPECT_EQ(s->where->kind(), ExprKind::kBinary);
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto s = ParseSelectOrDie(
      "SELECT * FROM R WHERE a IS NULL AND b IS NOT NULL");
  const auto& root = static_cast<const BinaryExpr&>(*s->where);
  EXPECT_EQ(root.left().kind(), ExprKind::kIsNull);
  EXPECT_FALSE(static_cast<const IsNullExpr&>(root.left()).negated());
  EXPECT_TRUE(static_cast<const IsNullExpr&>(root.right()).negated());
}

TEST(ParserTest, JoinSyntaxNormalizedIntoWhere) {
  auto s = ParseSelectOrDie(
      "SELECT * FROM Car JOIN Mileage ON Car.model = Mileage.model "
      "WHERE Car.price < 20000");
  ASSERT_EQ(s->from.size(), 2u);
  // WHERE should be (join cond) AND (price cond).
  const auto& root = static_cast<const BinaryExpr&>(*s->where);
  EXPECT_EQ(root.op(), BinaryOp::kAnd);
}

TEST(ParserTest, InnerJoinKeyword) {
  auto s = ParseSelectOrDie(
      "SELECT * FROM a INNER JOIN b ON a.x = b.x");
  EXPECT_EQ(s->from.size(), 2u);
  ASSERT_NE(s->where, nullptr);
}

TEST(ParserTest, GroupByOrderByLimit) {
  auto s = ParseSelectOrDie(
      "SELECT maker, COUNT(*) AS n FROM Car GROUP BY maker "
      "ORDER BY n DESC, maker LIMIT 5");
  EXPECT_EQ(s->group_by.size(), 1u);
  ASSERT_EQ(s->order_by.size(), 2u);
  EXPECT_FALSE(s->order_by[0].ascending);
  EXPECT_TRUE(s->order_by[1].ascending);
  EXPECT_EQ(s->limit, 5);
}

TEST(ParserTest, Distinct) {
  auto s = ParseSelectOrDie("SELECT DISTINCT maker FROM Car");
  EXPECT_TRUE(s->distinct);
}

TEST(ParserTest, AggregateFunctions) {
  auto s = ParseSelectOrDie(
      "SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(price) "
      "FROM Car");
  ASSERT_EQ(s->items.size(), 5u);
  for (const auto& item : s->items) {
    ASSERT_EQ(item.expr->kind(), ExprKind::kFunctionCall);
    EXPECT_TRUE(
        static_cast<const FunctionCallExpr&>(*item.expr).IsAggregate());
  }
  EXPECT_TRUE(
      static_cast<const FunctionCallExpr&>(*s->items[0].expr).star());
}

TEST(ParserTest, Parameters) {
  auto s = ParseSelectOrDie("SELECT * FROM R WHERE R.A > $1 AND R.B < $2");
  const auto& root = static_cast<const BinaryExpr&>(*s->where);
  const auto& left = static_cast<const BinaryExpr&>(root.left());
  ASSERT_EQ(left.right().kind(), ExprKind::kParameter);
  EXPECT_EQ(static_cast<const ParameterExpr&>(left.right()).ordinal(), 1);
}

TEST(ParserTest, PaperExampleQuery) {
  // The exact query of Example 4.1.
  auto s = ParseSelectOrDie(
      "select Car.maker, Car.model, Car.price, Mileage.EPA from Car, "
      "Mileage where Car.model = Mileage.model and Car.price < 20000");
  EXPECT_EQ(s->from.size(), 2u);
  EXPECT_EQ(s->items.size(), 4u);
}

TEST(ParserTest, PaperQueryTypeWithDollarVariable) {
  auto s = ParseSelectOrDie(
      "SELECT * FROM R WHERE R.A > $V1 and R.B < 200");
  ASSERT_NE(s->where, nullptr);
}

TEST(ParserTest, InsertWithColumns) {
  auto result = Parser::Parse(
      "INSERT INTO Car (maker, model, price) VALUES ('Toyota', 'Avalon', "
      "25000)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ((*result)->kind(), StatementKind::kInsert);
  const auto& ins = static_cast<const InsertStatement&>(**result);
  EXPECT_EQ(ins.table, "Car");
  EXPECT_EQ(ins.columns.size(), 3u);
  EXPECT_EQ(ins.values.size(), 3u);
}

TEST(ParserTest, InsertWithoutColumns) {
  auto result =
      Parser::Parse("INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 20000)");
  ASSERT_TRUE(result.ok());
  const auto& ins = static_cast<const InsertStatement&>(**result);
  EXPECT_TRUE(ins.columns.empty());
}

TEST(ParserTest, DeleteWithWhere) {
  auto result = Parser::Parse("DELETE FROM Car WHERE price > 50000");
  ASSERT_TRUE(result.ok());
  const auto& del = static_cast<const DeleteStatement&>(**result);
  EXPECT_EQ(del.table, "Car");
  ASSERT_NE(del.where, nullptr);
}

TEST(ParserTest, DeleteAll) {
  auto result = Parser::Parse("DELETE FROM Car");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<const DeleteStatement&>(**result).where, nullptr);
}

TEST(ParserTest, Update) {
  auto result = Parser::Parse(
      "UPDATE Car SET price = 19000, model = 'Eclipse' WHERE maker = "
      "'Mitsubishi'");
  ASSERT_TRUE(result.ok());
  const auto& upd = static_cast<const UpdateStatement&>(**result);
  EXPECT_EQ(upd.table, "Car");
  EXPECT_EQ(upd.assignments.size(), 2u);
  ASSERT_NE(upd.where, nullptr);
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(Parser::Parse("SELECT * FROM R;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parser::Parse("SELECT * FROM R extra garbage here").ok());
}

TEST(ParserTest, ParseScriptSplitsStatements) {
  auto result = Parser::ParseScript(
      "INSERT INTO R VALUES (1); SELECT * FROM R; DELETE FROM R;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

TEST(ParserTest, ParseSelectRejectsNonSelect) {
  EXPECT_FALSE(Parser::ParseSelect("DELETE FROM R").ok());
}

// Error cases.
TEST(ParserTest, ErrorsAreParseErrors) {
  for (const char* bad :
       {"SELECT", "SELECT FROM R", "SELECT * FROM", "SELECT * WHERE x = 1",
        "INSERT INTO", "INSERT INTO R (a VALUES (1)", "UPDATE R",
        "UPDATE R SET", "DELETE R", "SELECT * FROM R WHERE",
        "SELECT * FROM R WHERE a NOT 5", "SELECT * FROM R LIMIT x"}) {
    auto result = Parser::Parse(bad);
    EXPECT_FALSE(result.ok()) << "should fail: " << bad;
  }
}

}  // namespace
}  // namespace cacheportal::sql
