#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace cacheportal::sql {
namespace {

/// Parses, prints, and returns the canonical text.
std::string Canon(const std::string& sql) {
  auto result = Parser::Parse(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  if (!result.ok()) return "";
  return StatementToSql(**result);
}

TEST(PrinterTest, SimpleSelect) {
  EXPECT_EQ(Canon("select * from Car"), "SELECT * FROM Car");
}

TEST(PrinterTest, WhereConditionsCanonicalized) {
  EXPECT_EQ(Canon("select * from R where R.A > 10 and R.B != 5"),
            "SELECT * FROM R WHERE R.A > 10 AND R.B <> 5");
}

TEST(PrinterTest, StringLiteralQuoted) {
  EXPECT_EQ(Canon("select * from Car where maker = 'O''Brien'"),
            "SELECT * FROM Car WHERE maker = 'O''Brien'");
}

TEST(PrinterTest, OrParenthesizedUnderAnd) {
  EXPECT_EQ(Canon("select * from R where (a = 1 or b = 2) and c = 3"),
            "SELECT * FROM R WHERE (a = 1 OR b = 2) AND c = 3");
}

TEST(PrinterTest, SelectListAliasesAndTables) {
  EXPECT_EQ(Canon("select maker as m, c.* from Car c"),
            "SELECT maker AS m, c.* FROM Car c");
}

TEST(PrinterTest, GroupOrderLimit) {
  EXPECT_EQ(
      Canon("select maker, count(*) as n from Car group by maker order by n "
            "desc limit 3"),
      "SELECT maker, COUNT(*) AS n FROM Car GROUP BY maker ORDER BY n DESC "
      "LIMIT 3");
}

TEST(PrinterTest, InsertDeleteUpdate) {
  EXPECT_EQ(Canon("insert into Car (maker, price) values ('T', 1)"),
            "INSERT INTO Car (maker, price) VALUES ('T', 1)");
  EXPECT_EQ(Canon("delete from Car where price > 100"),
            "DELETE FROM Car WHERE price > 100");
  EXPECT_EQ(Canon("update Car set price = price + 1 where maker = 'T'"),
            "UPDATE Car SET price = price + 1 WHERE maker = 'T'");
}

TEST(PrinterTest, Parameters) {
  EXPECT_EQ(Canon("select * from R where R.A > $1"),
            "SELECT * FROM R WHERE R.A > $1");
}

TEST(PrinterTest, BetweenInIsNull) {
  EXPECT_EQ(
      Canon("select * from R where a between 1 and 2 and b in (1, 2) and c "
            "is not null"),
      "SELECT * FROM R WHERE a BETWEEN 1 AND 2 AND b IN (1, 2) AND c IS NOT "
      "NULL");
}

TEST(PrinterTest, NotWrapsBinaryOperand) {
  EXPECT_EQ(Canon("select * from R where not (a = 1)"),
            "SELECT * FROM R WHERE NOT (a = 1)");
}

TEST(PrinterTest, JoinNormalizesToCommaList) {
  EXPECT_EQ(Canon("select * from A join B on A.x = B.x where A.y = 1"),
            "SELECT * FROM A, B WHERE A.x = B.x AND A.y = 1");
}

/// The canonical form must be a fixed point: parse(print(parse(s)))
/// prints identically.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, CanonicalFormIsFixedPoint) {
  std::string once = Canon(GetParam());
  ASSERT_FALSE(once.empty());
  std::string twice = Canon(once);
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "select * from Car",
        "select Car.maker, Car.model, Car.price, Mileage.EPA from Car, "
        "Mileage where Car.model = Mileage.model and Car.price < 20000",
        "select Mileage.model, Mileage.EPA from Mileage where 'Avalon' = "
        "Mileage.model",
        "select distinct maker from Car where price between 1000 and 2000",
        "select count(*) from Car group by maker",
        "select * from R where a in (1, 2, 3) or not (b like 'x%')",
        "select * from R where -a < 5 and b * 2 + 1 >= 7",
        "select * from R where R.A > $1 and R.B < $2",
        "insert into Car values (1, 2.5, 'x')",
        "update Car set price = 1 where model is null",
        "delete from Car where maker = 'T' and price > 100",
        "select m.model from Car c, Mileage m where c.model = m.model "
        "order by m.model desc limit 10"));

}  // namespace
}  // namespace cacheportal::sql
