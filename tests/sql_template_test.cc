#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/template.h"

namespace cacheportal::sql {
namespace {

QueryTemplate Extract(const std::string& sql) {
  auto result = ExtractTemplateFromSql(sql);
  EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  return result.ok() ? std::move(result).value() : QueryTemplate{};
}

TEST(TemplateTest, LiteralsBecomeParameters) {
  QueryTemplate t =
      Extract("SELECT * FROM R WHERE R.A > 10 AND R.B < 200");
  EXPECT_EQ(t.canonical_text,
            "SELECT * FROM R WHERE R.A > $1 AND R.B < $2");
  ASSERT_EQ(t.bindings.size(), 2u);
  EXPECT_EQ(t.bindings[0], Value::Int(10));
  EXPECT_EQ(t.bindings[1], Value::Int(200));
}

TEST(TemplateTest, InstancesOfSameTypeCollide) {
  QueryTemplate a = Extract("SELECT * FROM Car WHERE price < 20000");
  QueryTemplate b = Extract("SELECT * FROM Car WHERE price < 99");
  EXPECT_EQ(a.type_id, b.type_id);
  EXPECT_EQ(a.canonical_text, b.canonical_text);
  EXPECT_NE(a.bindings, b.bindings);
}

TEST(TemplateTest, DifferentStructureDifferentType) {
  QueryTemplate a = Extract("SELECT * FROM Car WHERE price < 20000");
  QueryTemplate b = Extract("SELECT * FROM Car WHERE price > 20000");
  EXPECT_NE(a.type_id, b.type_id);
}

TEST(TemplateTest, SelectListConstantsNotParameterized) {
  // Only WHERE literals define instance identity.
  QueryTemplate t = Extract("SELECT 1, maker FROM Car WHERE price = 5");
  EXPECT_EQ(t.canonical_text, "SELECT 1, maker FROM Car WHERE price = $1");
}

TEST(TemplateTest, NullAndBoolLiteralsStayStructural) {
  QueryTemplate t =
      Extract("SELECT * FROM R WHERE a = 5 AND b IS NOT NULL");
  EXPECT_EQ(t.canonical_text,
            "SELECT * FROM R WHERE a = $1 AND b IS NOT NULL");
  EXPECT_EQ(t.bindings.size(), 1u);
}

TEST(TemplateTest, ExistingParametersRenumbered) {
  QueryTemplate t = Extract("SELECT * FROM R WHERE a > $5 AND b < 7");
  EXPECT_EQ(t.canonical_text, "SELECT * FROM R WHERE a > $1 AND b < $2");
}

TEST(TemplateTest, StringsAndDoublesExtracted) {
  QueryTemplate t = Extract(
      "SELECT * FROM Car WHERE maker = 'Toyota' AND price < 2.5");
  ASSERT_EQ(t.bindings.size(), 2u);
  EXPECT_EQ(t.bindings[0], Value::String("Toyota"));
  EXPECT_EQ(t.bindings[1], Value::Double(2.5));
}

TEST(TemplateTest, InListItemsParameterized) {
  QueryTemplate t = Extract("SELECT * FROM R WHERE a IN (1, 2, 3)");
  EXPECT_EQ(t.canonical_text,
            "SELECT * FROM R WHERE a IN ($1, $2, $3)");
}

TEST(TemplateTest, InstantiateRoundTrip) {
  QueryTemplate t = Extract("SELECT * FROM Car WHERE price < 20000");
  auto inst = InstantiateTemplate(t, {Value::Int(30000)});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(StatementToSql(**inst),
            "SELECT * FROM Car WHERE price < 30000");
}

TEST(TemplateTest, InstantiateWithOriginalBindingsReproducesInstance) {
  const std::string sql =
      "SELECT * FROM Car WHERE maker = 'Toyota' AND price < 20000";
  QueryTemplate t = Extract(sql);
  auto inst = InstantiateTemplate(t, t.bindings);
  ASSERT_TRUE(inst.ok());
  auto original = Parser::ParseSelect(sql);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(StatementToSql(**inst), StatementToSql(**original));
}

TEST(TemplateTest, HashIsStable) {
  EXPECT_EQ(HashQueryText("abc"), HashQueryText("abc"));
  EXPECT_NE(HashQueryText("abc"), HashQueryText("abd"));
  // FNV-1a of "" is the offset basis.
  EXPECT_EQ(HashQueryText(""), 1469598103934665603ULL);
}

TEST(TemplateTest, CloneIsDeep) {
  QueryTemplate t = Extract("SELECT * FROM R WHERE a = 1");
  QueryTemplate copy = t.Clone();
  EXPECT_EQ(copy.canonical_text, t.canonical_text);
  EXPECT_EQ(copy.type_id, t.type_id);
  EXPECT_NE(copy.statement.get(), t.statement.get());
}

TEST(TemplateTest, PaperQueryType) {
  // The paper's query type notation: SELECT * FROM R WHERE R.A > $V1 and
  // R.B < 200. Both the named parameter and the literal become ordinals.
  QueryTemplate t = Extract("SELECT * FROM R WHERE R.A > $V1 and R.B < 200");
  EXPECT_EQ(t.canonical_text, "SELECT * FROM R WHERE R.A > $1 AND R.B < $2");
}

}  // namespace
}  // namespace cacheportal::sql
