#include "storage/metadata_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "storage/manifest.h"

namespace cacheportal::storage {
namespace {

std::vector<std::string> Payloads(const RecoveredState& state) {
  std::vector<std::string> out;
  for (const WalRecord& record : state.records) out.push_back(record.payload);
  return out;
}

TEST(DurableMetadataStoreTest, GenesisOpensEmptyAndRecovers) {
  SimEnv env;
  {
    DurableMetadataStore store(&env, "meta");
    RecoveredState state;
    ASSERT_TRUE(store.Open(&state).ok());
    EXPECT_EQ(state.snapshot, "");
    EXPECT_TRUE(state.records.empty());
    ASSERT_TRUE(store.Append(RecordType::kRegistration, "SELECT 1").ok());
    ASSERT_TRUE(store.Append(RecordType::kCommit, "delta-1").ok());
    ASSERT_TRUE(store.Sync().ok());
  }
  env.Recover();  // Hard power cut; only synced state survives.
  DurableMetadataStore store(&env, "meta");
  RecoveredState state;
  ASSERT_TRUE(store.Open(&state).ok());
  EXPECT_EQ(state.snapshot, "");
  EXPECT_EQ(Payloads(state), (std::vector<std::string>{"SELECT 1", "delta-1"}));
  EXPECT_EQ(store.stats().records_recovered, 2u);
  // Appends continue the global sequence, not restart it.
  EXPECT_EQ(store.next_seq(), 3u);
}

TEST(DurableMetadataStoreTest, UnsyncedSuffixIsLostCommitsBeforeSurvive) {
  SimEnv env;
  DurableMetadataStore store1(&env, "meta");
  RecoveredState state;
  ASSERT_TRUE(store1.Open(&state).ok());
  ASSERT_TRUE(store1.Append(RecordType::kCommit, "durable").ok());
  ASSERT_TRUE(store1.Sync().ok());
  ASSERT_TRUE(store1.Append(RecordType::kCommit, "in flight").ok());
  env.Recover();

  DurableMetadataStore store2(&env, "meta");
  ASSERT_TRUE(store2.Open(&state).ok());
  EXPECT_EQ(Payloads(state), std::vector<std::string>{"durable"});
}

TEST(DurableMetadataStoreTest, SnapshotBoundsReplayAndCollectsGarbage) {
  SimEnv env;
  DurableMetadataStore store1(&env, "meta");
  RecoveredState state;
  ASSERT_TRUE(store1.Open(&state).ok());
  ASSERT_TRUE(store1.Append(RecordType::kRegistration, "covered-1").ok());
  ASSERT_TRUE(store1.Append(RecordType::kCommit, "covered-2").ok());
  ASSERT_TRUE(store1.RotateWal().ok());
  ASSERT_TRUE(store1.InstallSnapshot("THE SNAPSHOT").ok());
  ASSERT_TRUE(store1.Append(RecordType::kCommit, "suffix").ok());
  ASSERT_TRUE(store1.Sync().ok());
  // The covered segment is gone; the chain restarts at the snapshot.
  EXPECT_FALSE(env.FileExists("meta/wal-000001.log"));
  ASSERT_TRUE(env.FileExists("meta/wal-000002.log"));
  env.Recover();

  DurableMetadataStore store2(&env, "meta");
  ASSERT_TRUE(store2.Open(&state).ok());
  EXPECT_EQ(state.snapshot, "THE SNAPSHOT");
  // O(delta): replay is the post-snapshot suffix, not history.
  EXPECT_EQ(Payloads(state), std::vector<std::string>{"suffix"});
  EXPECT_EQ(store2.stats().records_recovered, 1u);
}

TEST(DurableMetadataStoreTest, SecondSnapshotReplacesTheFirst) {
  SimEnv env;
  DurableMetadataStore store(&env, "meta");
  RecoveredState state;
  ASSERT_TRUE(store.Open(&state).ok());
  ASSERT_TRUE(store.RotateWal().ok());
  ASSERT_TRUE(store.InstallSnapshot("old snapshot").ok());
  ASSERT_TRUE(store.RotateWal().ok());
  ASSERT_TRUE(store.InstallSnapshot("new snapshot").ok());

  std::vector<std::string> names = env.ListDir("meta").value();
  int snapshots = 0;
  for (const std::string& name : names) {
    if (name.rfind("snap-", 0) == 0) ++snapshots;
  }
  EXPECT_EQ(snapshots, 1);  // The superseded snapshot was collected.

  env.Recover();
  DurableMetadataStore reopened(&env, "meta");
  ASSERT_TRUE(reopened.Open(&state).ok());
  EXPECT_EQ(state.snapshot, "new snapshot");
}

TEST(DurableMetadataStoreTest, SegmentsRotateBySize) {
  SimEnv env;
  StoreOptions options;
  options.max_segment_bytes = 256;
  DurableMetadataStore store(&env, "meta", options);
  RecoveredState state;
  ASSERT_TRUE(store.Open(&state).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        store.Append(RecordType::kRegistration, std::string(64, 'x')).ok());
  }
  ASSERT_TRUE(store.Sync().ok());
  EXPECT_GT(store.current_segment(), 2u);
  env.Recover();

  DurableMetadataStore reopened(&env, "meta", options);
  ASSERT_TRUE(reopened.Open(&state).ok());
  EXPECT_EQ(state.records.size(), 20u);  // The whole multi-segment chain.
}

TEST(DurableMetadataStoreTest, CorruptManifestIsLoudNotSilentlyEmpty) {
  SimEnv env;
  {
    DurableMetadataStore store(&env, "meta");
    RecoveredState state;
    ASSERT_TRUE(store.Open(&state).ok());
    ASSERT_TRUE(store.RotateWal().ok());
    ASSERT_TRUE(store.InstallSnapshot("snapshot").ok());
  }
  ASSERT_TRUE(env.CorruptFile("meta/MANIFEST", 0, "X").ok());
  DurableMetadataStore store(&env, "meta");
  RecoveredState state;
  EXPECT_TRUE(store.Open(&state).IsParseError());
}

TEST(DurableMetadataStoreTest, CorruptSnapshotIsLoudNotSilentlyEmpty) {
  SimEnv env;
  std::string snapshot_name;
  {
    DurableMetadataStore store(&env, "meta");
    RecoveredState state;
    ASSERT_TRUE(store.Open(&state).ok());
    ASSERT_TRUE(store.RotateWal().ok());
    ASSERT_TRUE(store.InstallSnapshot("precious bytes").ok());
  }
  std::vector<std::string> names = env.ListDir("meta").value();
  for (const std::string& name : names) {
    if (name.rfind("snap-", 0) == 0) snapshot_name = name;
  }
  ASSERT_FALSE(snapshot_name.empty());
  ASSERT_TRUE(env.CorruptFile(StrCat("meta/", snapshot_name), 3, "!").ok());
  DurableMetadataStore store(&env, "meta");
  RecoveredState state;
  Status opened = store.Open(&state);
  EXPECT_TRUE(opened.IsParseError()) << opened.message();
}

TEST(DurableMetadataStoreTest, CorruptWalRecordQuarantinesReportsAndContinues) {
  SimEnv env;
  {
    DurableMetadataStore store(&env, "meta");
    RecoveredState state;
    ASSERT_TRUE(store.Open(&state).ok());
    ASSERT_TRUE(store.Append(RecordType::kRegistration, "good-1").ok());
    ASSERT_TRUE(store.Append(RecordType::kRegistration, "good-2").ok());
    ASSERT_TRUE(store.Append(RecordType::kCommit, "doomed").ok());
    ASSERT_TRUE(store.Sync().ok());
  }
  // Flip a payload bit inside the LAST record (its payload is the file
  // tail).
  uint64_t size = env.ReadFile("meta/wal-000001.log")->size();
  ASSERT_TRUE(env.CorruptFile("meta/wal-000001.log", size - 3, "X").ok());
  env.Recover();

  DurableMetadataStore store(&env, "meta");
  RecoveredState state;
  ASSERT_TRUE(store.Open(&state).ok());  // Never crashes on damage.
  EXPECT_EQ(Payloads(state), (std::vector<std::string>{"good-1", "good-2"}));
  StoreStats stats = store.stats();
  EXPECT_GT(stats.quarantined_bytes, 0u);
  EXPECT_EQ(stats.segments_quarantined, 1u);
  EXPECT_NE(stats.last_quarantine_reason.find("crc mismatch"),
            std::string::npos);
  EXPECT_NE(store.Report().find("quarantined-bytes="), std::string::npos);
  // The damaged file was moved aside, not destroyed (forensics), and a
  // fresh segment took its number so the chain stays contiguous.
  EXPECT_TRUE(env.FileExists("meta/quarantine-wal-000001.log"));
  ASSERT_TRUE(store.Append(RecordType::kRegistration, "after").ok());
  ASSERT_TRUE(store.Sync().ok());
  env.Recover();
  DurableMetadataStore again(&env, "meta");
  ASSERT_TRUE(again.Open(&state).ok());
  EXPECT_EQ(Payloads(state), std::vector<std::string>{"after"});
}

TEST(DurableMetadataStoreTest, TornTailIsTruncatedAndAppendContinues) {
  FaultInjector faults(1);
  SimEnv env(&faults);
  DurableMetadataStore store1(&env, "meta");
  RecoveredState state;
  ASSERT_TRUE(store1.Open(&state).ok());
  ASSERT_TRUE(store1.Append(RecordType::kRegistration, "whole").ok());
  ASSERT_TRUE(store1.Sync().ok());
  ASSERT_TRUE(
      store1.Append(RecordType::kRegistration, std::string(200, 't')).ok());
  faults.ArmCrash(1);  // env:sync:partial tears the in-flight record.
  ASSERT_FALSE(store1.Sync().ok());
  env.Recover();

  DurableMetadataStore store2(&env, "meta");
  ASSERT_TRUE(store2.Open(&state).ok());
  EXPECT_EQ(Payloads(state), std::vector<std::string>{"whole"});
  EXPECT_GT(store2.stats().torn_tail_bytes_truncated, 0u);
  EXPECT_EQ(store2.stats().quarantined_bytes, 0u);  // Benign, not corrupt.
  ASSERT_TRUE(store2.Append(RecordType::kCommit, "resumed").ok());
  ASSERT_TRUE(store2.Sync().ok());
  env.Recover();
  DurableMetadataStore store3(&env, "meta");
  ASSERT_TRUE(store3.Open(&state).ok());
  EXPECT_EQ(Payloads(state),
            (std::vector<std::string>{"whole", "resumed"}));
}

/// The tentpole sweep at the store level: crash at EVERY filesystem
/// crash point inside InstallSnapshot and assert the next Open() finds a
/// consistent root — the old snapshot or the new one, never garbage.
TEST(DurableMetadataStoreTest, CrashSweepDuringSnapshotInstall) {
  // Dry run: count the points one install consults.
  uint64_t total_points = 0;
  {
    FaultInjector faults(1);
    SimEnv env(&faults);
    DurableMetadataStore store(&env, "meta");
    RecoveredState state;
    ASSERT_TRUE(store.Open(&state).ok());
    ASSERT_TRUE(store.Append(RecordType::kCommit, "pre").ok());
    ASSERT_TRUE(store.Sync().ok());
    ASSERT_TRUE(store.RotateWal().ok());
    ASSERT_TRUE(store.InstallSnapshot("OLD").ok());
    faults.ArmCrash(1u << 30);
    ASSERT_TRUE(store.RotateWal().ok());
    ASSERT_TRUE(store.InstallSnapshot("NEW").ok());
    total_points = faults.crash_points_seen();
    faults.DisarmCrash();
  }
  ASSERT_GE(total_points, 8u);

  for (uint64_t k = 0; k < total_points; ++k) {
    SCOPED_TRACE(StrCat("crash point ", k, " of ", total_points));
    FaultInjector faults(1);
    SimEnv env(&faults);
    {
      DurableMetadataStore store(&env, "meta");
      RecoveredState state;
      ASSERT_TRUE(store.Open(&state).ok());
      ASSERT_TRUE(store.Append(RecordType::kCommit, "pre").ok());
      ASSERT_TRUE(store.Sync().ok());
      ASSERT_TRUE(store.RotateWal().ok());
      ASSERT_TRUE(store.InstallSnapshot("OLD").ok());
      faults.ArmCrash(k);
      Status rotated = store.RotateWal();
      if (rotated.ok()) (void)store.InstallSnapshot("NEW");
      EXPECT_EQ(faults.crashes_injected(), 1u);
    }
    env.Recover();
    DurableMetadataStore store(&env, "meta");
    RecoveredState state;
    ASSERT_TRUE(store.Open(&state).ok())
        << faults.last_crash_point() << ": " << store.Open(&state).message();
    EXPECT_TRUE(state.snapshot == "OLD" || state.snapshot == "NEW")
        << faults.last_crash_point() << " left snapshot '" << state.snapshot
        << "'";
    // And the store still works after whatever the crash left behind.
    ASSERT_TRUE(store.Append(RecordType::kCommit, "post-crash").ok());
    ASSERT_TRUE(store.Sync().ok());
  }
}

}  // namespace
}  // namespace cacheportal::storage
