#include "storage/wal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>

#include "common/env.h"
#include "common/fault_injector.h"
#include "common/file_util.h"
#include "common/strings.h"

namespace cacheportal::storage {
namespace {

// Raw-bytes builders for the corruption corpus: the tests must be able
// to write byte-exact (and byte-broken) segment files without going
// through the writer under test.
std::string SegmentHeader(uint64_t segment_number) {
  std::string header("CPWAL001", 8);
  PutFixed64(&header, segment_number);
  return header;
}

std::string RawRecord(uint64_t seq, uint8_t type, std::string_view payload) {
  std::string body;
  PutFixed64(&body, seq);
  body.push_back(static_cast<char>(type));
  body.append(payload);
  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, Crc32(body));
  record += body;
  return record;
}

void WriteRaw(Env* env, const std::string& path, std::string_view bytes) {
  auto file = env->NewWritableFile(path, /*truncate=*/true).value();
  ASSERT_TRUE(file->Append(bytes).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
}

TEST(WalSegmentNameTest, RoundTrips) {
  EXPECT_EQ(WalSegmentFileName(1), "wal-000001.log");
  EXPECT_EQ(WalSegmentFileName(1234567), "wal-1234567.log");
  EXPECT_EQ(ParseWalSegmentFileName("wal-000042.log").value(), 42u);
  EXPECT_TRUE(ParseWalSegmentFileName("MANIFEST").status().IsNotFound());
  EXPECT_TRUE(
      ParseWalSegmentFileName("quarantine-wal-000001.log").status()
          .IsNotFound());
}

TEST(WalWriterTest, RoundTripsRecords) {
  SimEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Create(&env, "d", 1, 1).value();
  ASSERT_TRUE(writer->Append(RecordType::kRegistration, "SELECT 1").ok());
  ASSERT_TRUE(writer->Append(RecordType::kRetirement, "").ok());
  ASSERT_TRUE(writer->Append(RecordType::kCommit, "delta\nbytes\n").ok());
  ASSERT_TRUE(writer->Sync().ok());
  EXPECT_EQ(writer->next_seq(), 4u);

  WalSegmentContents read =
      ReadWalSegment(&env, "d/wal-000001.log", 1).value();
  EXPECT_EQ(read.segment_number, 1u);
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0].seq, 1u);
  EXPECT_EQ(read.records[0].type, RecordType::kRegistration);
  EXPECT_EQ(read.records[0].payload, "SELECT 1");
  EXPECT_EQ(read.records[1].payload, "");
  EXPECT_EQ(read.records[2].type, RecordType::kCommit);
  EXPECT_EQ(read.records[2].payload, "delta\nbytes\n");
  EXPECT_EQ(read.quarantined_bytes, 0u);
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes, env.ReadFile("d/wal-000001.log")->size());
}

TEST(WalWriterTest, UnsyncedBatchVanishesCleanly) {
  SimEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Create(&env, "d", 1, 1).value();
  ASSERT_TRUE(writer->Append(RecordType::kRegistration, "durable").ok());
  ASSERT_TRUE(writer->Sync().ok());
  ASSERT_TRUE(writer->Append(RecordType::kRegistration, "volatile-1").ok());
  ASSERT_TRUE(writer->Append(RecordType::kCommit, "volatile-2").ok());
  env.Recover();  // Crash before the second sync.

  WalSegmentContents read =
      ReadWalSegment(&env, "d/wal-000001.log", 0).value();
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].payload, "durable");
  // Whole records vanished with the page cache — no tear, no residue.
  EXPECT_EQ(read.quarantined_bytes, 0u);
  EXPECT_FALSE(read.torn_tail);
}

TEST(WalWriterTest, PartialSyncLeavesTornTail) {
  FaultInjector faults(1);
  SimEnv env(&faults);
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Create(&env, "d", 1, 1).value();
  ASSERT_TRUE(
      writer->Append(RecordType::kRegistration, std::string(100, 'a')).ok());
  ASSERT_TRUE(writer->Sync().ok());
  ASSERT_TRUE(
      writer->Append(RecordType::kRegistration, std::string(100, 'b')).ok());
  faults.ArmCrash(1);  // env:sync:partial — half the new bytes land.
  ASSERT_FALSE(writer->Sync().ok());
  env.Recover();

  WalSegmentContents read =
      ReadWalSegment(&env, "d/wal-000001.log", 1).value();
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].payload, std::string(100, 'a'));
  EXPECT_TRUE(read.torn_tail) << read.quarantine_reason;
  EXPECT_GT(read.quarantined_bytes, 0u);
  EXPECT_EQ(read.quarantine_reason, "record payload cut short");
}

TEST(WalWriterTest, OpenForAppendContinuesTheChain) {
  SimEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  {
    auto writer = WalWriter::Create(&env, "d", 7, 10).value();
    ASSERT_TRUE(writer->Append(RecordType::kRegistration, "one").ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  WalSegmentContents first = ReadWalSegment(&env, "d/wal-000007.log", 0).value();
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_EQ(first.records[0].seq, 10u);

  auto writer = WalWriter::OpenForAppend(&env, "d", 7, first.valid_bytes, 11)
                    .value();
  ASSERT_TRUE(writer->Append(RecordType::kCommit, "two").ok());
  ASSERT_TRUE(writer->Sync().ok());
  WalSegmentContents both = ReadWalSegment(&env, "d/wal-000007.log", 10).value();
  ASSERT_EQ(both.records.size(), 2u);
  EXPECT_EQ(both.records[1].seq, 11u);
  EXPECT_EQ(both.records[1].payload, "two");
  EXPECT_EQ(both.quarantined_bytes, 0u);
}

// ---- The corruption corpus (satellite 2): every class of damage stops
// replay at the last valid record and reports, never crashes. ----

class WalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.CreateDir("d").ok());
    clean_ = SegmentHeader(1) + RawRecord(1, 1, "first") +
             RawRecord(2, 2, "second") + RawRecord(3, 3, "third");
  }

  WalSegmentContents Read() {
    return ReadWalSegment(&env_, "d/wal-000001.log", 1).value();
  }

  SimEnv env_;
  std::string clean_;
};

TEST_F(WalCorruptionTest, CleanFileParsesWhole) {
  WriteRaw(&env_, "d/wal-000001.log", clean_);
  WalSegmentContents read = Read();
  EXPECT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.quarantined_bytes, 0u);
}

TEST_F(WalCorruptionTest, BitFlippedPayloadStopsAtCrc) {
  std::string damaged = clean_;
  damaged[damaged.size() - 2] ^= 0x40;  // Inside record 3's payload.
  WriteRaw(&env_, "d/wal-000001.log", damaged);
  WalSegmentContents read = Read();
  EXPECT_EQ(read.records.size(), 2u);
  EXPECT_FALSE(read.torn_tail);  // Complete bytes that LIE are not a tear.
  EXPECT_GT(read.quarantined_bytes, 0u);
  EXPECT_NE(read.quarantine_reason.find("crc mismatch at seq 3"),
            std::string::npos)
      << read.quarantine_reason;
}

TEST_F(WalCorruptionTest, BitFlippedLengthIsCorruptionNotTornTail) {
  std::string damaged = clean_;
  // Record 1's length field starts right after the 16-byte header; set a
  // high bit so it reads as ~2^31 — far past kMaxRecordLen.
  damaged[16 + 3] = static_cast<char>(0x80);
  WriteRaw(&env_, "d/wal-000001.log", damaged);
  WalSegmentContents read = Read();
  EXPECT_EQ(read.records.size(), 0u);
  EXPECT_FALSE(read.torn_tail);
  EXPECT_NE(read.quarantine_reason.find("absurd record length"),
            std::string::npos);
}

TEST_F(WalCorruptionTest, TruncationMidRecordIsATornTail) {
  for (size_t cut = 1; cut < 20; ++cut) {
    WriteRaw(&env_, "d/wal-000001.log",
             std::string_view(clean_).substr(0, clean_.size() - cut));
    WalSegmentContents read = Read();
    EXPECT_EQ(read.records.size(), 2u) << "cut " << cut;
    EXPECT_TRUE(read.torn_tail) << "cut " << cut;
    EXPECT_EQ(read.quarantined_bytes + read.valid_bytes, clean_.size() - cut);
  }
}

TEST_F(WalCorruptionTest, DuplicateSequenceIsASequenceBreak) {
  WriteRaw(&env_, "d/wal-000001.log",
           SegmentHeader(1) + RawRecord(1, 1, "first") +
               RawRecord(1, 1, "again") + RawRecord(2, 1, "more"));
  WalSegmentContents read = Read();
  EXPECT_EQ(read.records.size(), 1u);
  EXPECT_FALSE(read.torn_tail);
  EXPECT_NE(read.quarantine_reason.find("sequence break: got 1, expected 2"),
            std::string::npos)
      << read.quarantine_reason;
}

TEST_F(WalCorruptionTest, OutOfOrderSequenceIsASequenceBreak) {
  WriteRaw(&env_, "d/wal-000001.log",
           SegmentHeader(1) + RawRecord(1, 1, "first") +
               RawRecord(3, 1, "skipped ahead"));
  WalSegmentContents read = Read();
  EXPECT_EQ(read.records.size(), 1u);
  EXPECT_NE(read.quarantine_reason.find("sequence break"), std::string::npos);
}

TEST_F(WalCorruptionTest, UnknownRecordTypeStopsReplay) {
  WriteRaw(&env_, "d/wal-000001.log",
           SegmentHeader(1) + RawRecord(1, 1, "first") +
               RawRecord(2, 99, "from the future"));
  WalSegmentContents read = Read();
  EXPECT_EQ(read.records.size(), 1u);
  EXPECT_FALSE(read.torn_tail);
  EXPECT_NE(read.quarantine_reason.find("unknown record type 99"),
            std::string::npos);
}

TEST_F(WalCorruptionTest, WrongFirstSequenceRejectsTheWholeSegment) {
  WriteRaw(&env_, "d/wal-000001.log", clean_);
  // Cross-segment continuity: the caller expected this segment to start
  // at 5 (the previous segment ended at 4); starting at 1 means the
  // chain is inconsistent.
  WalSegmentContents read = ReadWalSegment(&env_, "d/wal-000001.log", 5).value();
  EXPECT_EQ(read.records.size(), 0u);
  EXPECT_NE(read.quarantine_reason.find("sequence break: got 1, expected 5"),
            std::string::npos);
}

TEST_F(WalCorruptionTest, HeaderShorterThanMagicIsATornHeader) {
  WriteRaw(&env_, "d/wal-000001.log", "CPWAL0");
  WalSegmentContents read = Read();
  EXPECT_EQ(read.records.size(), 0u);
  EXPECT_EQ(read.valid_bytes, 0u);
  EXPECT_TRUE(read.torn_tail);
}

TEST_F(WalCorruptionTest, ForeignMagicIsLoud) {
  WriteRaw(&env_, "d/wal-000001.log",
           "NOTAWAL!" + std::string(8, '\0') + "junk");
  EXPECT_TRUE(
      ReadWalSegment(&env_, "d/wal-000001.log", 0).status().IsParseError());
}

}  // namespace
}  // namespace cacheportal::storage
