#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"
#include "server/load_balancer.h"
#include "server/web_server.h"

namespace cacheportal::core {
namespace {

/// Assembles the paper's Configuration III (Figure 4) with the real
/// library, all tiers present: dynamic web cache -> load balancer ->
/// web-server farm -> application servers -> one DBMS, with CachePortal's
/// sniffer attached to every application server.
class TopologyTest : public ::testing::Test {
 protected:
  static constexpr int kFarmSize = 4;

  void SetUp() override {
    db_ = std::make_unique<db::Database>(&clock_);
    ASSERT_TRUE(db_->CreateTable(db::TableSchema(
                                     "Stock", {{"sym", db::ColumnType::kString},
                                               {"qty", db::ColumnType::kInt}}))
                    .ok());
    db_->ExecuteSql("INSERT INTO Stock VALUES ('pen', 100)").value();
    db_->ExecuteSql("INSERT INTO Stock VALUES ('ink', 5)").value();

    portal_ = std::make_unique<CachePortal>(db_.get(), &clock_);

    auto raw = std::make_unique<server::MemoryDbDriver>();
    raw->BindDatabase("stock", db_.get());
    drivers_.RegisterDriver(portal_->WrapDriver(raw.get()));
    raw_driver_ = std::move(raw);
    pool_ = std::move(server::ConnectionPool::Create(
                          "pool",
                          "jdbc:cacheportal-log:jdbc:cacheportal:stock",
                          kFarmSize, &drivers_)
                          .value());

    // A farm of web servers, each fronting its own application server
    // (all sharing the one DBMS through the pool), as in Figure 4.
    for (int i = 0; i < kFarmSize; ++i) {
      auto app = std::make_unique<server::ApplicationServer>(pool_.get());
      ASSERT_TRUE(
          app->RegisterServlet(
                 "/stock",
                 std::make_unique<server::FunctionServlet>(
                     [this](const http::HttpRequest& req,
                            server::ServletContext* ctx) {
                       std::string sym = req.get_params.count("sym")
                                             ? req.get_params.at("sym")
                                             : "pen";
                       clock_.Advance(100);
                       auto rows = ctx->connection->ExecuteQuery(
                           "SELECT qty FROM Stock WHERE sym = '" + sym +
                           "'");
                       return http::HttpResponse::Ok(
                           rows.ok() ? rows->ToString()
                                     : rows.status().ToString());
                     }),
                 server::ServletConfig{})
              .ok());
      portal_->AttachTo(app.get());  // Sniffer wraps every app server.
      auto web = std::make_unique<server::WebServer>(app.get());
      web->AddStaticPage("/index.html", "<html>welcome</html>");
      balancer_.AddBackend(web.get());
      apps_.push_back(std::move(app));
      webs_.push_back(std::move(web));
    }

    server::ServletConfig config;
    config.name = "/stock";
    config.key_get_params = {"sym"};
    portal_->RegisterServlet(config);
    proxy_ = portal_->CreateProxy(&balancer_);
  }

  http::HttpResponse Get(const std::string& url) {
    clock_.Advance(50);
    return proxy_->Handle(*http::HttpRequest::Get(url));
  }

  ManualClock clock_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<CachePortal> portal_;
  server::DriverManager drivers_;
  std::unique_ptr<server::Driver> raw_driver_;
  std::unique_ptr<server::ConnectionPool> pool_;
  std::vector<std::unique_ptr<server::ApplicationServer>> apps_;
  std::vector<std::unique_ptr<server::WebServer>> webs_;
  server::LoadBalancer balancer_;
  CachingProxy* proxy_ = nullptr;
};

TEST_F(TopologyTest, MissesSpreadAcrossTheFarm) {
  // 8 distinct pages (distinct key parameter) = 8 misses, round-robined
  // over 4 web servers.
  for (int i = 0; i < 8; ++i) {
    Get("http://stock/stock?sym=s" + std::to_string(i));
  }
  for (int i = 0; i < kFarmSize; ++i) {
    EXPECT_EQ(balancer_.RequestsTo(static_cast<size_t>(i)), 2u);
    EXPECT_EQ(webs_[static_cast<size_t>(i)]->dynamic_forwarded(), 2u);
  }
}

TEST_F(TopologyTest, HitsNeverReachTheFarm) {
  Get("http://stock/stock?sym=pen");
  uint64_t farm_before = 0;
  for (int i = 0; i < kFarmSize; ++i) {
    farm_before += balancer_.RequestsTo(static_cast<size_t>(i));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Get("http://stock/stock?sym=pen").headers.Get("X-Cache"),
              "HIT");
  }
  uint64_t farm_after = 0;
  for (int i = 0; i < kFarmSize; ++i) {
    farm_after += balancer_.RequestsTo(static_cast<size_t>(i));
  }
  EXPECT_EQ(farm_after, farm_before);
}

TEST_F(TopologyTest, StaticPagesServedByWebServerNotAppServer) {
  http::HttpResponse resp = Get("http://stock/index.html");
  EXPECT_EQ(resp.body, "<html>welcome</html>");
  uint64_t app_total = 0;
  for (const auto& app : apps_) app_total += app->requests_served();
  EXPECT_EQ(app_total, 0u);
}

TEST_F(TopologyTest, InvalidationWorksThroughTheWholeStack) {
  // Pages generated by different app servers in the farm still land in
  // the one QI/URL map (every app server shares the sniffer).
  Get("http://stock/stock?sym=pen");
  Get("http://stock/stock?sym=ink");
  portal_->RunCycle().value();
  EXPECT_EQ(portal_->qiurl_map().NumPages(), 2u);

  db_->ExecuteSql("UPDATE Stock SET qty = 4 WHERE sym = 'ink'").value();
  auto report = portal_->RunCycle().value();
  EXPECT_EQ(report.pages_invalidated, 1u);

  http::HttpResponse ink = Get("http://stock/stock?sym=ink");
  EXPECT_EQ(ink.headers.Get("X-Cache"), "MISS");
  EXPECT_NE(ink.body.find("4"), std::string::npos);
  EXPECT_EQ(Get("http://stock/stock?sym=pen").headers.Get("X-Cache"),
            "HIT");
}

TEST_F(TopologyTest, QueriesFromAllAppServersAreLogged) {
  for (int i = 0; i < 6; ++i) {
    Get("http://stock/stock?sym=s" + std::to_string(i));
  }
  // 6 misses -> 6 servlet executions -> 6 logged queries, regardless of
  // which pooled connection / app server served them.
  EXPECT_EQ(portal_->query_log().size(), 6u);
  EXPECT_EQ(portal_->request_log().size(), 6u);
}

}  // namespace
}  // namespace cacheportal::core
