#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"

namespace cacheportal::core {
namespace {

/// The paper's Figure 5 shows updates arriving "through web or backend
/// processes". This suite exercises the WEB path: a POST servlet performs
/// DML through the same (query-logged) connection pool, the DML lands in
/// the database update log, and the next cycle invalidates exactly the
/// affected pages — no special casing anywhere.
class WebUpdatePathTest : public ::testing::Test {
 protected:
  WebUpdatePathTest() : db_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(db::TableSchema(
                                    "Cart", {{"user_id", db::ColumnType::kInt},
                                             {"item", db::ColumnType::kString}}))
                    .ok());
    portal_ = std::make_unique<CachePortal>(&db_, &clock_);
    auto raw = std::make_unique<server::MemoryDbDriver>();
    raw->BindDatabase("shop", &db_);
    drivers_.RegisterDriver(portal_->WrapDriver(raw.get()));
    raw_ = std::move(raw);
    pool_ = std::move(server::ConnectionPool::Create(
                          "p", "jdbc:cacheportal-log:jdbc:cacheportal:shop",
                          1, &drivers_)
                          .value());
    app_ = std::make_unique<server::ApplicationServer>(pool_.get());

    // Read servlet: a user's cart page.
    ASSERT_TRUE(app_->RegisterServlet(
                        "/cart",
                        std::make_unique<server::FunctionServlet>(
                            [this](const http::HttpRequest& req,
                                   server::ServletContext* ctx) {
                              clock_.Advance(100);
                              auto rows = ctx->connection->ExecuteQuery(
                                  "SELECT item FROM Cart WHERE user_id = " +
                                  req.get_params.at("uid"));
                              return http::HttpResponse::Ok(rows->ToString());
                            }),
                        server::ServletConfig{})
                    .ok());
    // Write servlet: add an item (the web update path).
    ASSERT_TRUE(app_->RegisterServlet(
                        "/add",
                        std::make_unique<server::FunctionServlet>(
                            [this](const http::HttpRequest& req,
                                   server::ServletContext* ctx) {
                              clock_.Advance(100);
                              auto n = ctx->connection->ExecuteUpdate(
                                  "INSERT INTO Cart VALUES (" +
                                  req.post_params.at("uid") + ", '" +
                                  req.post_params.at("item") + "')");
                              http::HttpResponse resp =
                                  http::HttpResponse::Ok(
                                      n.ok() ? "added" : "failed");
                              // Mutating pages must never be cached.
                              http::CacheControl cc;
                              cc.no_store = true;
                              resp.SetCacheControl(cc);
                              return resp;
                            }),
                        server::ServletConfig{})
                    .ok());
    portal_->AttachTo(app_.get());
    server::ServletConfig cart;
    cart.name = "/cart";
    cart.key_get_params = {"uid"};
    portal_->RegisterServlet(cart);
    proxy_ = portal_->CreateProxy(app_.get());
  }

  http::HttpResponse GetCart(int uid) {
    clock_.Advance(50);
    return proxy_->Handle(*http::HttpRequest::Get(
        "http://shop/cart?uid=" + std::to_string(uid)));
  }

  http::HttpResponse PostAdd(int uid, const std::string& item) {
    clock_.Advance(50);
    return proxy_->Handle(*http::HttpRequest::Post(
        "http://shop/add",
        {{"uid", std::to_string(uid)}, {"item", item}}));
  }

  ManualClock clock_;
  db::Database db_;
  std::unique_ptr<CachePortal> portal_;
  server::DriverManager drivers_;
  std::unique_ptr<server::Driver> raw_;
  std::unique_ptr<server::ConnectionPool> pool_;
  std::unique_ptr<server::ApplicationServer> app_;
  CachingProxy* proxy_ = nullptr;
};

TEST_F(WebUpdatePathTest, PostServletIsNeverCached) {
  EXPECT_EQ(PostAdd(1, "pen").body, "added");
  EXPECT_EQ(PostAdd(1, "ink").body, "added");
  // Both POSTs reached the servlet (identical parameters would have hit
  // the cache if the no-store marking were ignored).
  EXPECT_EQ(PostAdd(1, "pen").body, "added");
  EXPECT_EQ(app_->requests_served(), 3u);
}

TEST_F(WebUpdatePathTest, WebUpdateInvalidatesAffectedCartOnly) {
  PostAdd(1, "pen");
  PostAdd(2, "book");
  // Consume the POSTs' updates before caching: updates already in the
  // unconsumed log invalidate pages cached after them (the invalidator
  // cannot order page creation against log entries — over-invalidation,
  // never staleness).
  portal_->RunCycle().value();
  GetCart(1);  // Cached.
  GetCart(2);  // Cached.
  portal_->RunCycle().value();
  EXPECT_EQ(portal_->page_cache()->size(), 2u);

  // User 1 adds an item THROUGH THE WEB.
  PostAdd(1, "ink");
  auto report = portal_->RunCycle().value();
  EXPECT_EQ(report.pages_invalidated, 1u);

  http::HttpResponse cart1 = GetCart(1);
  EXPECT_EQ(cart1.headers.Get("X-Cache"), "MISS");
  EXPECT_NE(cart1.body.find("ink"), std::string::npos);
  EXPECT_EQ(GetCart(2).headers.Get("X-Cache"), "HIT");
}

TEST_F(WebUpdatePathTest, DmlIsLoggedAsNonSelect) {
  PostAdd(1, "pen");
  portal_->RunCycle().value();  // Consume the INSERT.
  GetCart(1);
  ASSERT_EQ(portal_->query_log().size(), 2u);
  EXPECT_FALSE(portal_->query_log().entries()[0].is_select);
  EXPECT_TRUE(portal_->query_log().entries()[1].is_select);
  // The mapper must not associate the INSERT with any page.
  portal_->RunCycle().value();
  EXPECT_EQ(portal_->qiurl_map().NumQueries(), 1u);
}

}  // namespace
}  // namespace cacheportal::core
