#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "workload/paper_site.h"

namespace cacheportal::workload {
namespace {

/// End-to-end stress over the REAL library (no simulation): the paper's
/// synthetic application served through the full CachePortal stack under
/// interleaved request and update traffic. The invariant checked after
/// every synchronization cycle is the system's core guarantee — every
/// page still in the cache renders exactly what the servlet would
/// generate right now.
class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, CachedPagesAreNeverStaleAfterACycle) {
  PaperSiteOptions options;
  options.small_rows = 60;   // Scaled down: validation re-renders pages.
  options.large_rows = 200;
  options.seed = GetParam();
  PaperSite site(options);
  Random rng(GetParam() * 977 + 13);

  uint64_t hits = 0, requests = 0;
  for (int round = 0; round < 12; ++round) {
    // A burst of requests over random pages.
    for (int r = 0; r < 25; ++r) {
      PageClass cls = static_cast<PageClass>(rng.Uniform(3));
      int grp = static_cast<int>(rng.Uniform(site.join_values()));
      http::HttpResponse resp = site.Request(cls, grp);
      ASSERT_EQ(resp.status_code, 200);
      ++requests;
      if (resp.headers.Get("X-Cache") == "HIT") ++hits;
    }
    // A burst of updates.
    site.RandomUpdates(2 + static_cast<int>(rng.Uniform(5)));
    // Synchronization point.
    auto report = site.RunCycle();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // THE INVARIANT: every page remaining in the cache matches a fresh
    // regeneration.
    for (int c = 0; c < 3; ++c) {
      PageClass cls = static_cast<PageClass>(c);
      for (int grp = 0; grp < site.join_values(); ++grp) {
        http::HttpResponse resp = site.Request(cls, grp);
        ASSERT_EQ(resp.status_code, 200);
        ++requests;
        bool was_hit = resp.headers.Get("X-Cache") == "HIT";
        if (was_hit) ++hits;
        if (was_hit) {
          auto fresh = site.FreshBody(cls, grp);
          ASSERT_TRUE(fresh.ok());
          ASSERT_EQ(resp.body, *fresh)
              << "STALE " << PageClassName(cls) << " page, group " << grp
              << ", round " << round;
        }
      }
    }
  }

  // The cache must actually be doing something: with 30 distinct pages
  // and hundreds of requests, a healthy run hits often.
  EXPECT_GT(hits, requests / 4)
      << "suspiciously low hit count - is everything being invalidated?";
  EXPECT_GT(site.portal()->page_cache()->stats().invalidations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(1, 7, 42, 1234));

TEST(WorkloadTest, PageClassesProduceDistinctPages) {
  PaperSiteOptions options;
  options.small_rows = 20;
  options.large_rows = 40;
  PaperSite site(options);
  http::HttpResponse light = site.Request(PageClass::kLight, 0);
  http::HttpResponse medium = site.Request(PageClass::kMedium, 0);
  http::HttpResponse heavy = site.Request(PageClass::kHeavy, 0);
  EXPECT_NE(light.body, medium.body);
  EXPECT_NE(medium.body, heavy.body);
  EXPECT_NE(light.body, site.Request(PageClass::kLight, 1).body);
  EXPECT_EQ(site.portal()->page_cache()->size(), 4u);
}

TEST(WorkloadTest, HeavyPageIsAJoinSummary) {
  PaperSiteOptions options;
  options.small_rows = 20;
  options.large_rows = 40;
  PaperSite site(options);
  http::HttpResponse heavy = site.Request(PageClass::kHeavy, 0);
  EXPECT_NE(heavy.body.find("pairs"), std::string::npos);
  EXPECT_NE(heavy.body.find("best"), std::string::npos);
}

TEST(WorkloadTest, UpdatesEventuallyInvalidate) {
  PaperSiteOptions options;
  options.small_rows = 30;
  options.large_rows = 60;
  PaperSite site(options);
  for (int grp = 0; grp < site.join_values(); ++grp) {
    site.Request(PageClass::kLight, grp);
  }
  site.RunCycle().value();  // Build the QI/URL map.
  size_t cached_before = site.portal()->page_cache()->size();
  EXPECT_EQ(cached_before, 10u);

  site.RandomUpdates(20);
  auto report = site.RunCycle().value();
  EXPECT_GT(report.pages_invalidated, 0u);
  EXPECT_LT(site.portal()->page_cache()->size(), cached_before);
}

TEST(WorkloadTest, SnifferSeesEveryGeneratedPage) {
  PaperSiteOptions options;
  options.small_rows = 10;
  options.large_rows = 20;
  PaperSite site(options);
  site.Request(PageClass::kLight, 0);
  site.Request(PageClass::kLight, 0);  // HIT: no new servlet run.
  site.Request(PageClass::kMedium, 3);
  site.RunCycle().value();
  EXPECT_EQ(site.portal()->request_log().size(), 2u);
  EXPECT_EQ(site.portal()->query_log().size(), 2u);
  EXPECT_EQ(site.portal()->qiurl_map().size(), 2u);
}

}  // namespace
}  // namespace cacheportal::workload
