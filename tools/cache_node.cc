// A cache process: runs a net::InvalidationServer in front of a
// cache::PageCache, applying eject messages delivered over the framed
// invalidation wire. This is the cache half of the multi-process
// topology (invalidator_node is the other half); the multiprocess test
// SIGKILLs and restarts it mid-storm to prove session resume.
//
// Flags:
//   --port=N          port to bind (0 = ephemeral). A restart must pass
//                     the previously bound port so the running
//                     invalidator can still reach it.
//   --port-file=PATH  written (atomically) with the bound port once the
//                     server is accepting — the startup barrier the
//                     launcher polls.
//   --state-file=PATH append-only session state: the epoch line each
//                     incarnation writes at startup and one line per
//                     applied (epoch, seq). A restart replays it to bump
//                     the epoch and rebuild the ResumeLedger.
//   --applied-log=PATH one line (the canonical cache key) per eject
//                     applied, in apply order. Never contains duplicates:
//                     the replayed key set dedups across incarnations,
//                     where the per-epoch ledger cannot.
//   --ack-drop=P --ack-reset=P --ack-partial=P --fault-seed=S
//                     server-side fault probabilities on outgoing frames
//                     (ACKs vanish, connections reset mid-ack, acks torn
//                     in half) — the fault surface that stresses the
//                     client's cumulative-ack replay under pipelining.
//
// Runs until SIGTERM/SIGINT; exits 0 after a clean stop, printing the
// server's health line to stderr.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "cache/page_cache.h"
#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "http/message.h"
#include "net/invalidation_server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

// Writes `contents` to `path` atomically (tmp + rename), so a polling
// reader never observes a torn file.
bool WriteFileAtomic(const std::string& path, const std::string& contents) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << contents;
    if (!out.flush()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cacheportal;

  signal(SIGTERM, HandleSignal);
  signal(SIGINT, HandleSignal);
  signal(SIGPIPE, SIG_IGN);

  uint16_t port = static_cast<uint16_t>(
      std::atoi(FlagValue(argc, argv, "port", "0").c_str()));
  std::string port_file = FlagValue(argc, argv, "port-file", "");
  std::string state_file = FlagValue(argc, argv, "state-file", "");
  std::string applied_log = FlagValue(argc, argv, "applied-log", "");
  FaultConfig fault_config;
  fault_config.drop_probability =
      std::atof(FlagValue(argc, argv, "ack-drop", "0").c_str());
  fault_config.reset_probability =
      std::atof(FlagValue(argc, argv, "ack-reset", "0").c_str());
  fault_config.partial_write_probability =
      std::atof(FlagValue(argc, argv, "ack-partial", "0").c_str());
  uint64_t fault_seed = std::strtoull(
      FlagValue(argc, argv, "fault-seed", "7").c_str(), nullptr, 10);
  FaultInjector faults(fault_seed, fault_config);

  // Recover session state from previous incarnations: the highest epoch
  // any of them used (we run at epoch+1 so their seqs can never collide
  // with ours) and the per-epoch apply high-water marks.
  uint64_t last_epoch = 0;
  net::ResumeLedger ledger;
  if (!state_file.empty()) {
    std::ifstream in(state_file);
    std::string line;
    while (std::getline(in, line)) {
      std::vector<std::string> fields = StrSplit(line, ' ');
      if (fields.size() == 2 && fields[0] == "epoch") {
        Result<uint64_t> epoch = ParseUint64(fields[1]);
        if (epoch.ok()) last_epoch = std::max(last_epoch, *epoch);
      } else if (fields.size() == 3 && fields[0] == "applied") {
        Result<uint64_t> epoch = ParseUint64(fields[1]);
        Result<uint64_t> seq = ParseUint64(fields[2]);
        // A torn tail (killed mid-line) loses at most the final apply
        // record; the redelivery it permits is caught by the applied-key
        // set below.
        if (epoch.ok() && seq.ok()) ledger.Admit(*epoch, *seq);
      }
    }
  }
  uint64_t session_epoch = last_epoch + 1;

  // Content-level dedup across incarnations: a new epoch renames every
  // seq, so the protocol ledger alone cannot tell a restart replay from
  // a fresh eject — the applied-log key set can.
  std::set<std::string> applied_keys;
  if (!applied_log.empty()) {
    std::ifstream in(applied_log);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) applied_keys.insert(line);
    }
  }

  std::FILE* state_out = nullptr;
  if (!state_file.empty()) {
    state_out = std::fopen(state_file.c_str(), "a");
    if (state_out == nullptr) {
      std::cerr << "cache_node: cannot open state file " << state_file
                << "\n";
      return 2;
    }
    std::fprintf(state_out, "epoch %llu\n",
                 static_cast<unsigned long long>(session_epoch));
    std::fflush(state_out);
  }
  std::FILE* applied_out = nullptr;
  if (!applied_log.empty()) {
    applied_out = std::fopen(applied_log.c_str(), "a");
    if (applied_out == nullptr) {
      std::cerr << "cache_node: cannot open applied log " << applied_log
                << "\n";
      return 2;
    }
  }

  SystemClock clock;
  cache::PageCache cache(/*capacity=*/1024, &clock);

  net::InvalidationServerOptions options;
  options.port = port;
  options.session_epoch = session_epoch;
  options.ledger = ledger;
  if (fault_config.drop_probability > 0 ||
      fault_config.reset_probability > 0 ||
      fault_config.partial_write_probability > 0) {
    options.faults = &faults;
  }
  auto apply = [&](std::string_view payload, uint64_t epoch,
                   uint64_t seq) -> Status {
    Result<http::HttpRequest> eject =
        http::HttpRequest::Parse(std::string(payload));
    if (!eject.ok()) return eject.status();
    std::string key = eject->ToPageId().CacheKey();
    cache.HandleInvalidationRequest(*eject);  // 404 for uncached is fine.
    if (applied_keys.insert(key).second && applied_out != nullptr) {
      std::fprintf(applied_out, "%s\n", key.c_str());
      std::fflush(applied_out);
    }
    if (state_out != nullptr) {
      std::fprintf(state_out, "applied %llu %llu\n",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(seq));
      std::fflush(state_out);
    }
    return Status::OK();
  };

  Result<std::unique_ptr<net::InvalidationServer>> server =
      net::InvalidationServer::Start(apply, std::move(options));
  if (!server.ok()) {
    std::cerr << "cache_node: " << server.status().ToString() << "\n";
    return 2;
  }

  if (!port_file.empty()) {
    std::ostringstream contents;
    contents << (*server)->port() << "\n";
    if (!WriteFileAtomic(port_file, contents.str())) {
      std::cerr << "cache_node: cannot write port file " << port_file
                << "\n";
      return 2;
    }
  }
  std::cerr << "cache_node: epoch " << session_epoch << " listening on port "
            << (*server)->port() << "\n";

  while (!g_stop.load()) usleep(20 * 1000);

  (*server)->Stop();
  std::cerr << "cache_node: " << (*server)->HealthReport() << "\n";
  if (state_out != nullptr) std::fclose(state_out);
  if (applied_out != nullptr) std::fclose(applied_out);
  return 0;
}
