#!/usr/bin/env bash
# Enforces the src/ layer DAG. Each directory below src/ is a layer; a
# file in layer L may #include "D/..." only when D is L itself or one of
# L's allowed dependencies. The allowlist is the layering contract from
# DESIGN.md — adding an edge here is an architecture decision, not a
# build fix, so think twice (and update DESIGN.md) before extending it.
#
# Usage: tools/check_layering.sh   (from anywhere; exits non-zero on any
# violation, printing one line per offending include).

set -u
cd "$(dirname "$0")/.."

# layer -> space-separated allowed dependency layers.
declare -A ALLOW=(
  [common]=""
  [storage]="common"
  [sql]="common"
  [http]="common"
  [net]="common"
  [sim]="common"
  [db]="common sql"
  [server]="common db http"
  [sniffer]="common http server"
  [cache]="common sql db http server"
  # invalidator -> sql also carries the columnar delta batches
  # (sql/column_batch.h): the batch layout lives with the value model it
  # classifies; the invalidator's bind indexes and cycle context consume
  # it through this existing edge. The strategy-tier seam rides the same
  # edges: template shape classification (ClassifyTemplateShape) lives
  # in sql/ because it is purely syntactic, while the exact tier's
  # row-image evaluation (invalidator/strategy.cc) consumes sql/eval.h
  # and db/ row images — no new layer dependencies (DESIGN.md §16).
  [invalidator]="common storage sql db http server sniffer cache"
  [core]="common storage db server sniffer cache invalidator"
  [workload]="common db server core"
)

status=0
for dir in src/*/; do
  layer=$(basename "$dir")
  if [ -z "${ALLOW[$layer]+x}" ]; then
    echo "check_layering: unknown layer '$layer' — register it in tools/check_layering.sh" >&2
    status=1
    continue
  fi
  allow="${ALLOW[$layer]}"
  while IFS= read -r line; do
    file=${line%%:*}
    dep=${line#*:}
    dep=${dep#\#include \"}
    dep=${dep%/}
    [ "$dep" = "$layer" ] && continue
    case " $allow " in
      *" $dep "*) ;;
      *)
        echo "check_layering: $file includes \"$dep/...\" — edge $layer -> $dep is not in the layer DAG" >&2
        status=1
        ;;
    esac
  done < <(grep -rHoE '#include "[A-Za-z0-9_]+/' "$dir" --include='*.h' --include='*.cc')
done

if [ "$status" -eq 0 ]; then
  echo "check_layering: OK ($(ls -d src/*/ | wc -l | tr -d ' ') layers clean)"
fi
exit "$status"
