// An invalidator process: generates a deterministic storm of eject
// messages (tools/storm.h) and delivers them to one or more cache_nodes
// over the framed invalidation wire, through the full reliability stack
// — a core::DeliveryRouter fanning out by consistent hash to per-peer
// core::WireCacheSinks behind one core::ReliableDeliveryQueue, each sink
// backed by its own net::WireInvalidationClient — with client-side
// socket faults injected on demand. The multiprocess tests run it
// against caches they kill and restart mid-storm.
//
// Flags:
//   --port-file=PATHS  comma-separated port files, one per cache_node,
//                      each polled until its node publishes a port. The
//                      i-th path becomes ring peer "peer-i".
//   --count=N          ejects to send (storm indices 0..N-1).
//   --seed=S           storm seed (must match the verifying oracle) and
//                      fault-injector RNG seed.
//   --batch=N          delivery/wire batch size (1 = stop-and-wait).
//   --window=N         client in-flight frame window.
//   --drop=P --reset=P --partial=P --partition=P
//                      client-side fault probabilities (shared injector).
//   --delay-us=N --delay-p=P  injected send delay.
//   --drain-seconds=N  give-up bound for the final drain (default 60).
//   --report-file=PATH final health report (also printed to stderr).
//
// Exits 0 iff every eject was delivered: nothing pending, nothing
// dead-lettered. Retry pacing is real time (SystemClock); backoffs are
// kept short so a storm through heavy faults still converges quickly.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "core/delivery_router.h"
#include "core/reliable_delivery.h"
#include "core/remote_cache.h"
#include "net/wire_client.h"
#include "storm.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

double FlagDouble(int argc, char** argv, const std::string& name,
                  double fallback) {
  std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? fallback : std::atof(value.c_str());
}

uint64_t FlagUint(int argc, char** argv, const std::string& name,
                  uint64_t fallback) {
  std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? fallback
                       : std::strtoull(value.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cacheportal;

  std::string port_files = FlagValue(argc, argv, "port-file", "");
  uint64_t count = FlagUint(argc, argv, "count", 100);
  uint64_t seed = FlagUint(argc, argv, "seed", 1);
  uint64_t batch = FlagUint(argc, argv, "batch", 64);
  uint64_t window = FlagUint(argc, argv, "window", 128);
  uint64_t drain_seconds = FlagUint(argc, argv, "drain-seconds", 60);
  std::string report_file = FlagValue(argc, argv, "report-file", "");

  std::vector<std::string> paths = StrSplit(port_files, ',');
  std::vector<uint16_t> ports;
  for (const std::string& path : paths) {
    if (path.empty()) continue;
    // Startup barrier: each cache_node writes its bound port atomically
    // once it is accepting.
    uint16_t port = 0;
    for (int attempt = 0; attempt < 500 && port == 0; ++attempt) {
      std::ifstream in(path);
      uint32_t value = 0;
      if (in >> value && value > 0) {
        port = static_cast<uint16_t>(value);
        break;
      }
      usleep(20 * 1000);
    }
    if (port == 0) {
      std::cerr << "invalidator_node: no port in " << path << "\n";
      return 2;
    }
    ports.push_back(port);
  }
  if (ports.empty()) {
    std::cerr << "invalidator_node: --port-file is required\n";
    return 2;
  }

  SystemClock clock;

  FaultConfig fault_config;
  fault_config.drop_probability = FlagDouble(argc, argv, "drop", 0.0);
  fault_config.reset_probability = FlagDouble(argc, argv, "reset", 0.0);
  fault_config.partial_write_probability =
      FlagDouble(argc, argv, "partial", 0.0);
  fault_config.partition_probability =
      FlagDouble(argc, argv, "partition", 0.0);
  fault_config.delay_probability = FlagDouble(argc, argv, "delay-p", 0.0);
  fault_config.delay = static_cast<Micros>(
      FlagUint(argc, argv, "delay-us", 0));
  FaultInjector faults(seed, fault_config);

  std::vector<std::unique_ptr<net::WireInvalidationClient>> clients;
  std::vector<std::unique_ptr<core::WireCacheSink>> sinks;
  for (size_t i = 0; i < ports.size(); ++i) {
    net::WireClientOptions client_options;
    client_options.port = ports[i];
    client_options.client_id = StrCat("invalidator-", seed, "-peer-", i);
    client_options.io_timeout = 500 * kMicrosPerMilli;
    client_options.reconnect_backoff = 20 * kMicrosPerMilli;
    client_options.max_backoff = 500 * kMicrosPerMilli;
    client_options.batch_max = batch == 0 ? 1 : batch;
    client_options.window_frames = window == 0 ? 1 : window;
    client_options.faults = &faults;
    clients.push_back(std::make_unique<net::WireInvalidationClient>(
        &clock, client_options));
    net::WireInvalidationClient* client = clients.back().get();
    sinks.push_back(std::make_unique<core::WireCacheSink>(
        [client](const std::string& bytes, const std::string& key) {
          return client->Deliver(key, bytes);
        },
        [client](const std::vector<std::pair<std::string, std::string>>&
                     entries) {
          std::vector<net::WireInvalidationClient::BatchEntry> wire_entries;
          wire_entries.reserve(entries.size());
          for (const auto& [key, bytes] : entries) {
            wire_entries.push_back({key, bytes});
          }
          net::WireBatchResult sent = client->DeliverBatch(wire_entries);
          return invalidator::BatchSendResult{sent.confirmed, sent.status};
        },
        [client] { return client->HealthReport(); }));
  }

  // Breakers stay off and the deadline is disabled: the storm must
  // survive arbitrary injected partitions and a full cache restart, so
  // the only give-up is the drain bound below (and a fatal status, which
  // dead-letters regardless of budget — that failure mode is the point).
  core::DeliveryOptions delivery_options;
  delivery_options.max_attempts = 1000000;
  delivery_options.delivery_deadline = 0;
  delivery_options.initial_backoff = 5 * kMicrosPerMilli;
  delivery_options.max_backoff = 100 * kMicrosPerMilli;
  delivery_options.breaker_failure_threshold = 0;
  delivery_options.batch_max = static_cast<int>(batch == 0 ? 1 : batch);
  core::ReliableDeliveryQueue queue(&clock, delivery_options);
  core::DeliveryRouter router(&queue);
  for (size_t i = 0; i < sinks.size(); ++i) {
    router.AddPeer(sinks[i].get(), StrCat("peer-", i));
  }

  // Enqueue in batch-sized chunks so consecutive ejects for the same
  // peer coalesce into EJECT_BATCH frames at each Pump.
  uint64_t pump_every = batch == 0 ? 1 : batch;
  for (uint64_t i = 0; i < count; ++i) {
    router.SendInvalidation(tools::StormEject(seed, i),
                            tools::StormKey(seed, i));
    if ((i + 1) % pump_every == 0) queue.Pump();
  }
  queue.Pump();

  Micros deadline = clock.NowMicros() +
                    static_cast<Micros>(drain_seconds) * kMicrosPerSecond;
  while (queue.pending() > 0 && clock.NowMicros() < deadline) {
    if (queue.Pump() == 0) usleep(5 * 1000);
  }

  const core::DeliveryStats& stats = queue.stats();
  std::ostringstream report;
  report << router.HealthReport() << "\n"
         << "faults: injected=" << faults.faults_injected() << "\n";
  bool complete = queue.pending() == 0 && stats.dead_lettered == 0 &&
                  stats.delivered == count;
  report << "storm: count=" << count << " delivered=" << stats.delivered
         << " pending=" << queue.pending()
         << " dead-lettered=" << stats.dead_lettered
         << " batch-flushes=" << stats.batch_flushes
         << " batched-messages=" << stats.batched_messages
         << " complete=" << (complete ? 1 : 0) << "\n";
  std::cerr << "invalidator_node:\n" << report.str();
  if (!report_file.empty()) {
    std::ofstream out(report_file, std::ios::trunc);
    out << report.str();
  }
  return complete ? 0 : 1;
}
