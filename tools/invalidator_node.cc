// An invalidator process: generates a deterministic storm of eject
// messages (tools/storm.h) and delivers them to a cache_node over the
// framed invalidation wire, through the full reliability stack — a
// core::ReliableDeliveryQueue in front of a core::WireCacheSink backed
// by a net::WireInvalidationClient — with client-side socket faults
// injected on demand. The multiprocess test runs it against a cache it
// kills and restarts mid-storm.
//
// Flags:
//   --port-file=PATH   polled until the cache_node publishes its port.
//   --count=N          ejects to send (storm indices 0..N-1).
//   --seed=S           storm seed (must match the verifying oracle) and
//                      fault-injector RNG seed.
//   --drop=P --reset=P --partial=P --partition=P
//                      client-side fault probabilities.
//   --delay-us=N --delay-p=P  injected send delay.
//   --drain-seconds=N  give-up bound for the final drain (default 60).
//   --report-file=PATH final health report (also printed to stderr).
//
// Exits 0 iff every eject was delivered: nothing pending, nothing
// dead-lettered. Retry pacing is real time (SystemClock); backoffs are
// kept short so a storm through heavy faults still converges quickly.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/strings.h"
#include "core/reliable_delivery.h"
#include "core/remote_cache.h"
#include "net/wire_client.h"
#include "storm.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

double FlagDouble(int argc, char** argv, const std::string& name,
                  double fallback) {
  std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? fallback : std::atof(value.c_str());
}

uint64_t FlagUint(int argc, char** argv, const std::string& name,
                  uint64_t fallback) {
  std::string value = FlagValue(argc, argv, name, "");
  return value.empty() ? fallback
                       : std::strtoull(value.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cacheportal;

  std::string port_file = FlagValue(argc, argv, "port-file", "");
  uint64_t count = FlagUint(argc, argv, "count", 100);
  uint64_t seed = FlagUint(argc, argv, "seed", 1);
  uint64_t drain_seconds = FlagUint(argc, argv, "drain-seconds", 60);
  std::string report_file = FlagValue(argc, argv, "report-file", "");

  // Startup barrier: the cache_node writes its bound port atomically
  // once it is accepting.
  uint16_t port = 0;
  for (int attempt = 0; attempt < 500 && port == 0; ++attempt) {
    std::ifstream in(port_file);
    uint32_t value = 0;
    if (in >> value && value > 0) {
      port = static_cast<uint16_t>(value);
      break;
    }
    usleep(20 * 1000);
  }
  if (port == 0) {
    std::cerr << "invalidator_node: no port in " << port_file << "\n";
    return 2;
  }

  SystemClock clock;

  FaultConfig fault_config;
  fault_config.drop_probability = FlagDouble(argc, argv, "drop", 0.0);
  fault_config.reset_probability = FlagDouble(argc, argv, "reset", 0.0);
  fault_config.partial_write_probability =
      FlagDouble(argc, argv, "partial", 0.0);
  fault_config.partition_probability =
      FlagDouble(argc, argv, "partition", 0.0);
  fault_config.delay_probability = FlagDouble(argc, argv, "delay-p", 0.0);
  fault_config.delay = static_cast<Micros>(
      FlagUint(argc, argv, "delay-us", 0));
  FaultInjector faults(seed, fault_config);

  net::WireClientOptions client_options;
  client_options.port = port;
  client_options.client_id = StrCat("invalidator-", seed);
  client_options.io_timeout = 500 * kMicrosPerMilli;
  client_options.reconnect_backoff = 20 * kMicrosPerMilli;
  client_options.max_backoff = 500 * kMicrosPerMilli;
  client_options.faults = &faults;
  net::WireInvalidationClient client(&clock, client_options);

  core::WireCacheSink sink(
      [&client](const std::string& bytes, const std::string& key) {
        return client.Deliver(key, bytes);
      },
      [&client] { return client.HealthReport(); });

  // Breakers stay off and the deadline is disabled: the storm must
  // survive arbitrary injected partitions and a full cache restart, so
  // the only give-up is the drain bound below (and a fatal status, which
  // dead-letters regardless of budget — that failure mode is the point).
  core::DeliveryOptions delivery_options;
  delivery_options.max_attempts = 1000000;
  delivery_options.delivery_deadline = 0;
  delivery_options.initial_backoff = 5 * kMicrosPerMilli;
  delivery_options.max_backoff = 100 * kMicrosPerMilli;
  delivery_options.breaker_failure_threshold = 0;
  core::ReliableDeliveryQueue queue(&clock, delivery_options);
  queue.AddSink(&sink, "wire-cache");

  for (uint64_t i = 0; i < count; ++i) {
    queue.SendInvalidation(tools::StormEject(seed, i),
                           tools::StormKey(seed, i));
    queue.Pump();
  }

  Micros deadline = clock.NowMicros() +
                    static_cast<Micros>(drain_seconds) * kMicrosPerSecond;
  while (queue.pending() > 0 && clock.NowMicros() < deadline) {
    if (queue.Pump() == 0) usleep(5 * 1000);
  }

  const core::DeliveryStats& stats = queue.stats();
  std::ostringstream report;
  report << queue.HealthReport() << "\n"
         << "faults: injected=" << faults.faults_injected() << "\n";
  bool complete = queue.pending() == 0 && stats.dead_lettered == 0 &&
                  stats.delivered == count;
  report << "storm: count=" << count << " delivered=" << stats.delivered
         << " pending=" << queue.pending()
         << " dead-lettered=" << stats.dead_lettered
         << " complete=" << (complete ? 1 : 0) << "\n";
  std::cerr << "invalidator_node:\n" << report.str();
  if (!report_file.empty()) {
    std::ofstream out(report_file, std::ios::trunc);
    out << report.str();
  }
  return complete ? 0 : 1;
}
