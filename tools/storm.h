#ifndef CACHEPORTAL_TOOLS_STORM_H_
#define CACHEPORTAL_TOOLS_STORM_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/strings.h"
#include "http/message.h"

namespace cacheportal::tools {

/// A deterministic invalidation storm: the invalidator_node sends eject
/// i of seed s, the cache_node records what it applied, and the test
/// compares against StormOracle — same (seed, count) on both sides means
/// the applied set is reproducible regardless of which faults fired in
/// between. Keys are unique per (seed, i), so any duplicate line in the
/// cache's applied log is a dedup failure, not storm noise.

inline std::string StormUrl(uint64_t seed, uint64_t index) {
  return StrCat("http://edge/page?id=", seed, "-", index);
}

inline http::HttpRequest StormEject(uint64_t seed, uint64_t index) {
  http::HttpRequest message =
      *http::HttpRequest::Get(StormUrl(seed, index));
  message.headers.Set("Cache-Control", "eject");
  return message;
}

/// The canonical cache key the eject addresses — the line the cache_node
/// writes to its applied log.
inline std::string StormKey(uint64_t seed, uint64_t index) {
  return StormEject(seed, index).ToPageId().CacheKey();
}

/// Sorted keys a cache must have applied after a storm of `count` ejects.
inline std::vector<std::string> StormOracle(uint64_t seed, uint64_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (uint64_t i = 0; i < count; ++i) keys.push_back(StormKey(seed, i));
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace cacheportal::tools

#endif  // CACHEPORTAL_TOOLS_STORM_H_
